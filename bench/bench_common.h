#ifndef UINDEX_BENCH_BENCH_COMMON_H_
#define UINDEX_BENCH_BENCH_COMMON_H_

#include <chrono>
#include <cstdarg>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include "storage/buffer_manager.h"
#include "workload/experiment.h"

namespace uindex {
namespace bench {

/// True when the benches run in quick mode (smaller databases, fewer
/// repetitions) — set UINDEX_BENCH_QUICK=1. Full mode reproduces the
/// paper's parameters exactly.
inline bool QuickMode() {
  const char* env = std::getenv("UINDEX_BENCH_QUICK");
  return env != nullptr && env[0] == '1';
}

inline uint32_t ExperimentObjects() {
  return QuickMode() ? 30000u : 150000u;  // Paper: 150,000 objects.
}

inline int ExperimentReps() {
  return QuickMode() ? 25 : 100;  // Paper: averages over 100 repetitions.
}

/// The x-axis of the paper's figures: sets queried out of `total`.
inline std::vector<size_t> SetsQueriedAxis(uint32_t total) {
  if (total >= 40) return {1, 10, 20, 30, 40};
  return {1, 2, 4, 6, 8};
}

/// Measures one bracket of work: wall time plus the IoStats delta (page
/// reads, node parses, decoded-node cache hits) of a buffer manager.
class StatsTimer {
 public:
  explicit StatsTimer(const BufferManager* buffers)
      : buffers_(buffers),
        base_(buffers->stats()),
        start_(std::chrono::steady_clock::now()) {}

  double ElapsedNs() const {
    return std::chrono::duration<double, std::nano>(
               std::chrono::steady_clock::now() - start_)
        .count();
  }
  IoStats Delta() const { return buffers_->stats() - base_; }

 private:
  const BufferManager* buffers_;
  IoStats base_;
  std::chrono::steady_clock::time_point start_;
};

/// Every directory a JSON artifact lands in: $UINDEX_BENCH_OUT_DIR when
/// set, plus always the local `bench_results/` mirror — so CI's upload
/// step and a developer's working tree see one uniform layout no matter
/// which binary wrote the file (EXPERIMENTS.md, "Benchmark artifacts").
inline std::vector<std::filesystem::path> ArtifactDirs() {
  std::vector<std::filesystem::path> dirs;
  const char* env = std::getenv("UINDEX_BENCH_OUT_DIR");
  if (env != nullptr && env[0] != '\0') dirs.emplace_back(env);
  const std::filesystem::path local = "bench_results";
  if (dirs.empty() || dirs[0] != local) dirs.push_back(local);
  return dirs;
}

/// Writes `<dir>/<name>.json` holding `content` into every ArtifactDirs()
/// entry. Returns true if at least one copy landed; an unwritable
/// directory warns and is skipped (a read-only working directory must
/// never fail a bench run). All benches — JsonReport users and the
/// hand-rolled writers alike — go through this, so the artifact layout
/// cannot drift per binary.
inline bool WriteArtifact(const std::string& name,
                          const std::string& content) {
  bool any = false;
  for (const std::filesystem::path& dir : ArtifactDirs()) {
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    const std::filesystem::path path = dir / (name + ".json");
    std::FILE* f = std::fopen(path.string().c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "warning: cannot write %s\n",
                   path.string().c_str());
      continue;
    }
    std::fwrite(content.data(), 1, content.size(), f);
    std::fclose(f);
    std::printf("wrote %s\n", path.string().c_str());
    any = true;
  }
  return any;
}

/// printf-append onto a std::string (JSON assembly helper).
inline void AppendF(std::string* out, const char* fmt, ...) {
  char buf[1024];
  va_list ap;
  va_start(ap, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, ap);
  va_end(ap);
  *out += buf;
}

/// An HDR-style log-linear latency histogram: 64 linear sub-buckets per
/// power-of-two magnitude, giving ≤1.6% relative error from nanoseconds up
/// to hours in 20 KiB of counters — so recording is one array increment
/// and percentiles never require storing (or sorting) per-sample vectors.
/// Replaces the sorted-vector `Percentile` helpers that were duplicated
/// across bench_net, bench_mvcc, and bench_shard.
///
/// Not thread-safe: record into one per-thread instance and `Merge`.
class LatencyRecorder {
 public:
  LatencyRecorder() : counts_(kMagnitudes * kSubBuckets, 0) {}

  /// Records one latency in microseconds (negative clamps to zero).
  void Record(double us) {
    const uint64_t ns =
        us <= 0 ? 0 : static_cast<uint64_t>(us * 1000.0 + 0.5);
    ++counts_[IndexOf(ns)];
    ++count_;
    sum_us_ += us;
    if (us > max_us_) max_us_ = us;
  }

  /// Folds another recorder's samples into this one.
  void Merge(const LatencyRecorder& other) {
    for (size_t i = 0; i < counts_.size(); ++i) {
      counts_[i] += other.counts_[i];
    }
    count_ += other.count_;
    sum_us_ += other.sum_us_;
    if (other.max_us_ > max_us_) max_us_ = other.max_us_;
  }

  uint64_t Count() const { return count_; }
  double MaxUs() const { return max_us_; }
  double MeanUs() const {
    return count_ == 0 ? 0.0 : sum_us_ / static_cast<double>(count_);
  }

  /// The latency (µs) at percentile `p` in [0, 100]; 0 when empty. The
  /// answer is a bucket midpoint, within the histogram's 1.6% resolution.
  double PercentileUs(double p) const {
    if (count_ == 0) return 0.0;
    uint64_t target =
        static_cast<uint64_t>(p / 100.0 * static_cast<double>(count_) + 0.5);
    if (target < 1) target = 1;
    if (target > count_) target = count_;
    uint64_t cumulative = 0;
    for (size_t i = 0; i < counts_.size(); ++i) {
      cumulative += counts_[i];
      if (cumulative >= target) return MidpointUs(i);
    }
    return max_us_;
  }

  /// Appends `{"count":…,"mean_us":…,"p50_us":…,"p99_us":…,"p999_us":…,
  /// "max_us":…}` — the shape every latency block in a BENCH_*.json
  /// artifact shares.
  void AppendJson(std::string* out) const {
    AppendF(out,
            "{\"count\": %llu, \"mean_us\": %.2f, \"p50_us\": %.2f, "
            "\"p99_us\": %.2f, \"p999_us\": %.2f, \"max_us\": %.2f}",
            static_cast<unsigned long long>(count_), MeanUs(),
            PercentileUs(50), PercentileUs(99), PercentileUs(99.9),
            max_us_);
  }

 private:
  // 64 sub-buckets per magnitude: values < 64 ns index linearly
  // (magnitude 0); every further power of two shifts right until the
  // value lands back in [32, 64).
  static constexpr int kSubBuckets = 64;
  static constexpr int kMagnitudes = 40;  // up to 2^45 ns ≈ 9.7 hours.

  static size_t IndexOf(uint64_t ns) {
    if (ns < kSubBuckets) return static_cast<size_t>(ns);
    int magnitude = 64 - __builtin_clzll(ns) - 6;
    if (magnitude >= kMagnitudes) {
      magnitude = kMagnitudes - 1;
      return static_cast<size_t>(magnitude) * kSubBuckets + kSubBuckets - 1;
    }
    const uint64_t sub = ns >> magnitude;  // in [32, 64)
    return static_cast<size_t>(magnitude) * kSubBuckets +
           static_cast<size_t>(sub);
  }

  static double MidpointUs(size_t index) {
    const int magnitude = static_cast<int>(index / kSubBuckets);
    const uint64_t sub = index % kSubBuckets;
    const uint64_t lo = sub << magnitude;
    const uint64_t width = 1ull << magnitude;
    return (static_cast<double>(lo) + static_cast<double>(width) / 2.0) /
           1000.0;
  }

  std::vector<uint64_t> counts_;
  uint64_t count_ = 0;
  double sum_us_ = 0;
  double max_us_ = 0;
};

/// Machine-readable companion to each bench's stdout table: one JSON file
/// per binary, written through WriteArtifact (so it lands both under
/// $UINDEX_BENCH_OUT_DIR and in "bench_results/"), carrying per-row wall
/// time and the I/O + node-parse counters so CI can diff runs without
/// scraping text.
class JsonReport {
 public:
  explicit JsonReport(std::string bench_name)
      : name_(std::move(bench_name)) {}

  /// Adds one measured row. `delta` is the counter delta of the bracket
  /// (StatsTimer::Delta()); `wall_ns` < 0 means "not timed".
  void Add(const std::string& row_name, double wall_ns,
           const IoStats& delta) {
    Row r;
    r.name = row_name;
    r.wall_ns = wall_ns;
    r.pages_read = delta.pages_read.load(std::memory_order_relaxed);
    r.nodes_parsed = delta.nodes_parsed.load(std::memory_order_relaxed);
    r.node_cache_hits =
        delta.node_cache_hits.load(std::memory_order_relaxed);
    r.bytes_decoded = delta.bytes_decoded.load(std::memory_order_relaxed);
    r.prefetch_issued =
        delta.prefetch_issued.load(std::memory_order_relaxed);
    r.prefetch_hits = delta.prefetch_hits.load(std::memory_order_relaxed);
    r.prefetch_wasted =
        delta.prefetch_wasted.load(std::memory_order_relaxed);
    rows_.push_back(std::move(r));
  }

  /// Adds a row with an explicit page count and no counter bracket (the
  /// figure benches report averages computed inside the harness).
  void AddPages(const std::string& row_name, double pages) {
    Row r;
    r.name = row_name;
    r.wall_ns = -1;
    r.avg_pages = pages;
    rows_.push_back(std::move(r));
  }

  /// Adds a row carrying one named scalar (e.g. a buffer-pool hit rate).
  void AddScalar(const std::string& row_name, const std::string& key,
                 double value) {
    Row r;
    r.name = row_name;
    r.wall_ns = -1;
    r.scalar_key = key;
    r.scalar_value = value;
    rows_.push_back(std::move(r));
  }

  /// Writes `<bench_name>.json` into every artifact directory. Returns
  /// false (with a warning on stderr) if no copy could be written; benches
  /// treat that as non-fatal so a read-only working directory never fails
  /// a run.
  bool Write() const {
    std::string out;
    AppendF(&out, "{\n  \"bench\": \"%s\",\n  \"quick_mode\": %s,\n",
            name_.c_str(), QuickMode() ? "true" : "false");
    AppendF(&out, "  \"rows\": [\n");
    for (size_t i = 0; i < rows_.size(); ++i) {
      const Row& r = rows_[i];
      AppendF(&out, "    {\"name\": \"%s\"", r.name.c_str());
      if (r.wall_ns >= 0) AppendF(&out, ", \"wall_ns\": %.0f", r.wall_ns);
      if (!r.scalar_key.empty()) {
        AppendF(&out, ", \"%s\": %.6f", r.scalar_key.c_str(),
                r.scalar_value);
      } else if (r.avg_pages >= 0) {
        AppendF(&out, ", \"avg_pages_read\": %.3f", r.avg_pages);
      } else {
        AppendF(
            &out,
            ", \"pages_read\": %llu, \"nodes_parsed\": %llu"
            ", \"node_cache_hits\": %llu, \"bytes_decoded\": %llu"
            ", \"prefetch_issued\": %llu, \"prefetch_hits\": %llu"
            ", \"prefetch_wasted\": %llu",
            static_cast<unsigned long long>(r.pages_read),
            static_cast<unsigned long long>(r.nodes_parsed),
            static_cast<unsigned long long>(r.node_cache_hits),
            static_cast<unsigned long long>(r.bytes_decoded),
            static_cast<unsigned long long>(r.prefetch_issued),
            static_cast<unsigned long long>(r.prefetch_hits),
            static_cast<unsigned long long>(r.prefetch_wasted));
      }
      AppendF(&out, "}%s\n", i + 1 < rows_.size() ? "," : "");
    }
    AppendF(&out, "  ]\n}\n");
    return WriteArtifact(name_, out);
  }

 private:
  struct Row {
    std::string name;
    double wall_ns = -1;
    double avg_pages = -1;
    std::string scalar_key;
    double scalar_value = 0;
    uint64_t pages_read = 0;
    uint64_t nodes_parsed = 0;
    uint64_t node_cache_hits = 0;
    uint64_t bytes_decoded = 0;
    uint64_t prefetch_issued = 0;
    uint64_t prefetch_hits = 0;
    uint64_t prefetch_wasted = 0;
  };
  std::string name_;
  std::vector<Row> rows_;
};

inline const char* KeysLabel(const SetWorkloadConfig& cfg) {
  if (cfg.unique_keys()) return "unique keys";
  static thread_local char buf[64];
  std::snprintf(buf, sizeof(buf), "%llu different keys",
                static_cast<unsigned long long>(cfg.num_distinct_keys));
  return buf;
}

/// Runs one figure panel: measures U-index (near and non-near sets) and
/// CG-tree page reads across the sets-queried axis and prints a table row
/// per x value. `fraction < 0` means exact match. When `report` is non-null
/// every measurement lands in it as `<panel_label>/m=<m>/<series>`.
inline Status RunPanel(SetExperiment& exp, double fraction, uint64_t seed,
                       JsonReport* report = nullptr,
                       const std::string& panel_label = "") {
  const SetWorkloadConfig& cfg = exp.config();
  std::printf("    %-6s  %14s  %18s  %10s\n", "sets", "U-index(near)",
              "U-index(non-near)", "CG-tree");
  auto structures = exp.structures();
  const SetExperiment::Structure& uindex = structures[0];
  const SetExperiment::Structure& cgtree = structures[1];
  const int reps = ExperimentReps();
  bool prefetch_checked = false;
  for (const size_t m : SetsQueriedAxis(cfg.num_sets)) {
    Result<double> u_near = exp.Measure(uindex, m, true, fraction, reps,
                                        seed);
    if (!u_near.ok()) return u_near.status();
    if (!prefetch_checked) {
      // Page-read identity gate: the paper metric must not move when the
      // prefetch pipeline is detached (a no-op when it was never built).
      prefetch_checked = true;
      exp.SetPrefetchEnabled(false);
      Result<double> u_off = exp.Measure(uindex, m, true, fraction, reps,
                                         seed);
      exp.SetPrefetchEnabled(true);
      if (!u_off.ok()) return u_off.status();
      if (u_off.value() != u_near.value()) {
        return Status::Corruption(
            "prefetch changed avg pages_read: on=" +
            std::to_string(u_near.value()) +
            " off=" + std::to_string(u_off.value()));
      }
    }
    Result<double> u_far = exp.Measure(uindex, m, false, fraction, reps,
                                       seed + 1);
    if (!u_far.ok()) return u_far.status();
    // The CG-tree is insensitive to set adjacency (paper §5.1): measure on
    // the same randomly chosen sets as the near series.
    Result<double> cg = exp.Measure(cgtree, m, true, fraction, reps, seed);
    if (!cg.ok()) return cg.status();
    std::printf("    %-6zu  %14.1f  %18.1f  %10.1f\n", m, u_near.value(),
                u_far.value(), cg.value());
    if (report != nullptr) {
      const std::string base = panel_label + "/m=" + std::to_string(m);
      report->AddPages(base + "/uindex_near", u_near.value());
      report->AddPages(base + "/uindex_nonnear", u_far.value());
      report->AddPages(base + "/cgtree", cg.value());
    }
  }
  return Status::OK();
}

/// Builds the experiment for one (num_sets, num_keys) panel. Prefetch is
/// attached (subject to UINDEX_PREFETCH) so RunPanel's identity gate
/// exercises the real pipeline; it cannot affect the reported page counts.
inline Result<std::unique_ptr<SetExperiment>> MakePanel(
    uint32_t num_sets, uint64_t num_distinct_keys) {
  SetExperiment::Options opts;
  opts.workload.num_objects = ExperimentObjects();
  opts.workload.num_sets = num_sets;
  opts.workload.num_distinct_keys =
      num_distinct_keys == 0 ? opts.workload.num_objects
                             : num_distinct_keys;
  opts.prefetch_threads = 2;
  return SetExperiment::Create(opts);
}

/// Runs a whole figure: panels over {40, 8} sets x key counts, one
/// fraction. `key_counts` uses 0 for "unique". `slug` names the JSON
/// artifact (bench_results/<slug>.json).
inline int RunFigure(const char* title, const char* slug, double fraction,
                     const std::vector<uint64_t>& key_counts) {
  std::printf("%s\n", title);
  std::printf("objects=%u, page=1024B, reps=%d%s\n\n", ExperimentObjects(),
              ExperimentReps(),
              QuickMode() ? " [QUICK MODE - set UINDEX_BENCH_QUICK=0 for "
                            "paper-scale]"
                          : "");
  JsonReport report(slug);
  for (const uint32_t num_sets : {40u, 8u}) {
    for (const uint64_t keys : key_counts) {
      Result<std::unique_ptr<SetExperiment>> exp = MakePanel(num_sets, keys);
      if (!exp.ok()) {
        std::fprintf(stderr, "panel setup failed: %s\n",
                     exp.status().ToString().c_str());
        return 1;
      }
      std::printf("  -- %u sets, %s --\n", num_sets,
                  KeysLabel(exp.value()->config()));
      const std::string panel = "sets=" + std::to_string(num_sets) +
                                "/keys=" + std::to_string(keys);
      Status s = RunPanel(*exp.value(), fraction,
                          /*seed=*/num_sets * 1000 + keys, &report, panel);
      if (!s.ok()) {
        std::fprintf(stderr, "panel failed: %s\n", s.ToString().c_str());
        return 1;
      }
      std::printf("\n");
    }
  }
  report.Write();
  return 0;
}

}  // namespace bench
}  // namespace uindex

#endif  // UINDEX_BENCH_BENCH_COMMON_H_
