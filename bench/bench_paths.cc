// Deep-path workload: skewed reference chains 6–12 hops long (head → …
// → tail, each level its own class hierarchy), far past the paper's
// 3-hop Vehicle example. One U-index over the full path answers every
// query shape — head retrieval, mid-path object binding, structure
// (subclass) predicates, and full instantiations — where each baseline
// (nested index, path index, NIX) covers only a subset.
//
// Gates (all exit non-zero on violation):
//  * rows byte-identical to brute-force chain enumeration for every
//    query shape, before AND after mid-path re-reference churn
//    maintained incrementally through IndexedDatabase;
//  * one U-index answers the whole shape mix in fewer pages than the
//    per-query best capable baseline combined (deterministic page
//    counts, always armed);
//  * a churn step that would close a reference cycle surfaces a typed
//    CycleDetected error and leaves the index byte-identical;
//  * façade phase (honors UINDEX_BACKEND=file): concurrent readers
//    never see an error or a malformed chain during churn + subclass
//    DDL, and the quiesced index matches brute force. Reader p99 is
//    gated unless UINDEX_BENCH_NO_TIMING_GATES waives timing.

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "baselines/nix/nix_index.h"
#include "baselines/pathindex/nested_index.h"
#include "baselines/pathindex/path_index.h"
#include "bench/bench_common.h"
#include "core/uindex.h"
#include "core/update.h"
#include "db/database.h"
#include "util/random.h"
#include "workload/path_generator.h"

namespace uindex {
namespace bench {
namespace {

DeepPathConfig CoreConfig() {
  if (QuickMode()) return DeepPathConfig::Quick();
  DeepPathConfig cfg;  // Full scale: 8 hops, 9000 heads.
  cfg.hops = 10;
  return cfg;
}

// Full instantiations as sorted tail→head rows (the Parscan layout).
std::vector<std::vector<Oid>> BruteChains(const ObjectStore& store,
                                          const PathSpec& spec, int64_t lo,
                                          int64_t hi) {
  std::vector<std::vector<Oid>> out;
  const Status s = ForEachInstantiation(
      store, spec, [&](const PathInstantiation& inst) {
        if (inst.attr.AsInt() >= lo && inst.attr.AsInt() <= hi) {
          out.emplace_back(inst.oids.rbegin(), inst.oids.rend());
        }
        return Status::OK();
      });
  if (!s.ok()) {
    std::fprintf(stderr, "brute force: %s\n", s.ToString().c_str());
    std::abort();
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<Oid> SortedUnique(std::vector<Oid> v) {
  std::sort(v.begin(), v.end());
  v.erase(std::unique(v.begin(), v.end()), v.end());
  return v;
}

// Heads (row column hops-1) of sorted tail→head chains.
std::vector<Oid> HeadsOf(const std::vector<std::vector<Oid>>& chains) {
  std::vector<Oid> heads;
  heads.reserve(chains.size());
  for (const auto& c : chains) heads.push_back(c.back());
  return SortedUnique(heads);
}

struct CoreStructures {
  CoreStructures(const DeepPathWorkload& w, BTreeOptions options)
      : up(1024), pp(1024), np(1024), xp(1024), ub(&up), pb(&pp), nb(&np),
        xb(&xp), uindex(&ub, &w.schema, w.coder.get(), w.spec(), options),
        path(&pb, w.spec(), options), nested(&nb, w.spec(), options),
        nix(&xb, &w.schema, w.spec(), options) {}

  Pager up, pp, np, xp;
  BufferManager ub, pb, nb, xb;
  UIndex uindex;
  PathIndex path;
  NestedIndex nested;
  NixIndex nix;

  Status BuildAll(const ObjectStore& store) {
    if (Status s = uindex.BuildFrom(store); !s.ok()) return s;
    if (Status s = path.BuildFrom(store); !s.ok()) return s;
    if (Status s = nested.BuildFrom(store); !s.ok()) return s;
    return nix.BuildFrom(store);
  }
};

// The structures one measurement round runs against. After churn the
// U-index is the *maintained* original while every baseline is rebuilt
// from the churned store, so the two can come from different owners.
struct StructView {
  UIndex* uindex;
  BufferManager* ub;
  PathIndex* path;
  BufferManager* pb;
  NestedIndex* nested;
  BufferManager* nb;
  NixIndex* nix;
  BufferManager* xb;

  static StructView Of(CoreStructures& s) {
    return {&s.uindex, &s.ub, &s.path, &s.pb,
            &s.nested, &s.nb, &s.nix,  &s.xb};
  }
};

// Running totals for the uniformity page gate: U answers every shape;
// each shape is also answered by the cheapest baseline CAPABLE of it.
// Queries are only half the cost of owning an index family, so the gate
// also charges each side its maintenance: the U-index pays the pages its
// incremental updates touch during churn, the baseline portfolio pays
// the pages of rebuilding path+nested+NIX from the churned store (none
// of them can apply a mid-path re-reference in place).
struct PageTotals {
  uint64_t u = 0;
  uint64_t best_capable = 0;
  uint64_t u_maintain = 0;
  uint64_t baseline_rebuild = 0;
};

int CheckIdentity(const char* what, const std::vector<std::vector<Oid>>& got,
                  const std::vector<std::vector<Oid>>& expected) {
  if (got != expected) {
    std::fprintf(stderr,
                 "GATE FAILED: %s rows differ from brute force (%zu vs "
                 "%zu chains)\n",
                 what, got.size(), expected.size());
    return 1;
  }
  return 0;
}

// Runs the four query shapes against every capable structure, enforcing
// byte-identity and accumulating the page gate. `tag` prefixes report
// rows ("fresh" before churn, "churned" after).
int RunQueryShapes(const DeepPathWorkload& w, const DeepPathConfig& cfg,
                   const StructView& s, JsonReport* report, const char* tag,
                   PageTotals* totals) {
  const PathSpec spec = w.spec();
  const std::vector<std::vector<Oid>> all_chains =
      BruteChains(*w.store, spec, 0, cfg.num_distinct_values);
  if (all_chains.empty()) {
    std::fprintf(stderr, "no complete chains generated\n");
    return 1;
  }
  const int64_t lo = 10, hi = 10 + cfg.num_distinct_values / 5;
  const std::vector<std::vector<Oid>> range_chains =
      BruteChains(*w.store, spec, lo, hi);
  auto row = [&](const char* q, const char* structure) {
    return std::string(tag) + "/" + q + "/" + structure;
  };

  // ---- Q1: head retrieval over a value range. ----
  {
    Query q = Query::Range(Value::Int(lo), Value::Int(hi));
    for (size_t pos = 0; pos < cfg.hops; ++pos) {
      q.With(ClassSelector::Subtree(w.roots[cfg.hops - 1 - pos]),
             pos + 1 == cfg.hops ? ValueSlot::Wanted() : ValueSlot::Any());
    }
    QueryCost uc(s.ub);
    Result<QueryResult> ur = s.uindex->Parscan(q);
    const uint64_t u_pages = uc.PagesRead();
    QueryCost nc(s.nb);
    Result<std::vector<Oid>> nr =
        s.nested->Lookup(Value::Int(lo), Value::Int(hi));
    const uint64_t nested_pages = nc.PagesRead();
    QueryCost xc(s.xb);
    Result<std::vector<Oid>> xr =
        s.nix->Lookup(Value::Int(lo), Value::Int(hi), w.roots[0], true);
    const uint64_t nix_pages = xc.PagesRead();
    if (!ur.ok() || !nr.ok() || !xr.ok()) {
      std::fprintf(stderr, "Q1 lookup failed\n");
      return 1;
    }
    const std::vector<Oid> expected = HeadsOf(range_chains);
    for (const auto& [name, got] :
         std::vector<std::pair<const char*, std::vector<Oid>>>{
             {"uindex", ur.value().Distinct(cfg.hops - 1)},
             {"nested", SortedUnique(nr.value())},
             {"nix", SortedUnique(xr.value())}}) {
      if (got != expected) {
        std::fprintf(stderr,
                     "GATE FAILED: Q1 %s heads differ from brute force "
                     "(%zu vs %zu)\n",
                     name, got.size(), expected.size());
        return 1;
      }
    }
    std::printf("  %s/Q1 heads        %5zu rows  U=%-5llu nested=%-5llu "
                "NIX=%llu\n",
                tag, expected.size(),
                static_cast<unsigned long long>(u_pages),
                static_cast<unsigned long long>(nested_pages),
                static_cast<unsigned long long>(nix_pages));
    report->AddPages(row("q1_heads", "uindex"),
                     static_cast<double>(u_pages));
    report->AddPages(row("q1_heads", "nested"),
                     static_cast<double>(nested_pages));
    report->AddPages(row("q1_heads", "nix"),
                     static_cast<double>(nix_pages));
    totals->u += u_pages;
    totals->best_capable += std::min(nested_pages, nix_pages);
  }

  // ---- Q2: mid-path object binding (chains through one level-3
  // object), full value range. ----
  {
    const size_t bound_level = 3;
    const Oid bound = all_chains[0][cfg.hops - 1 - bound_level];
    Query q = Query::Range(Value::Int(0),
                           Value::Int(cfg.num_distinct_values));
    for (size_t pos = 0; pos < cfg.hops; ++pos) {
      const size_t level = cfg.hops - 1 - pos;
      q.With(ClassSelector::Subtree(w.roots[level]),
             level == bound_level ? ValueSlot::Bound({bound})
                                  : ValueSlot::Wanted());
    }
    QueryCost uc(s.ub);
    Result<QueryResult> ur = s.uindex->Parscan(q);
    const uint64_t u_pages = uc.PagesRead();
    QueryCost pc(s.pb);
    Result<std::vector<std::vector<Oid>>> pr = s.path->Lookup(
        Value::Int(0), Value::Int(cfg.num_distinct_values),
        {PathIndex::PositionFilter{bound_level, {bound}}});
    const uint64_t path_pages = pc.PagesRead();
    QueryCost xc(s.xb);
    Result<std::vector<Oid>> xr = s.nix->LookupRestricted(
        Value::Int(0), Value::Int(cfg.num_distinct_values), w.roots[0],
        true, bound_level, {bound});
    const uint64_t nix_pages = xc.PagesRead();
    if (!ur.ok() || !pr.ok() || !xr.ok()) {
      std::fprintf(stderr, "Q2 lookup failed\n");
      return 1;
    }
    std::vector<std::vector<Oid>> expected;
    for (const auto& chain : all_chains) {
      if (chain[cfg.hops - 1 - bound_level] == bound) {
        expected.push_back(chain);
      }
    }
    if (expected.empty()) {
      std::fprintf(stderr, "Q2 probe object has no chains\n");
      return 1;
    }
    std::vector<std::vector<Oid>> u_rows = std::move(ur).value().rows;
    std::sort(u_rows.begin(), u_rows.end());
    if (int rc = CheckIdentity("Q2 uindex", u_rows, expected); rc != 0) {
      return rc;
    }
    std::vector<std::vector<Oid>> path_rows;
    for (const auto& t : pr.value()) {
      path_rows.emplace_back(t.rbegin(), t.rend());
    }
    std::sort(path_rows.begin(), path_rows.end());
    if (int rc = CheckIdentity("Q2 pathindex", path_rows, expected);
        rc != 0) {
      return rc;
    }
    if (SortedUnique(xr.value()) != HeadsOf(expected)) {
      std::fprintf(stderr, "GATE FAILED: Q2 nix heads differ\n");
      return 1;
    }
    std::printf("  %s/Q2 mid-bound    %5zu rows  U=%-5llu path=%-5llu "
                "NIX=%llu\n",
                tag, expected.size(),
                static_cast<unsigned long long>(u_pages),
                static_cast<unsigned long long>(path_pages),
                static_cast<unsigned long long>(nix_pages));
    report->AddPages(row("q2_bound", "uindex"),
                     static_cast<double>(u_pages));
    report->AddPages(row("q2_bound", "pathindex"),
                     static_cast<double>(path_pages));
    report->AddPages(row("q2_bound", "nix"),
                     static_cast<double>(nix_pages));
    totals->u += u_pages;
    totals->best_capable += std::min(path_pages, nix_pages);
  }

  // ---- Q3: structure predicate — only chains whose level-2 object is
  // an instance of the level's FIRST SUBCLASS. No baseline expresses an
  // in-path class restriction; U-index vs brute force. ----
  {
    const size_t pred_level = 2;
    const ClassId sub = w.classes[pred_level][1];
    Query q =
        Query::Range(Value::Int(lo), Value::Int(hi));
    for (size_t pos = 0; pos < cfg.hops; ++pos) {
      const size_t level = cfg.hops - 1 - pos;
      q.With(level == pred_level ? ClassSelector::Subtree(sub)
                                 : ClassSelector::Subtree(w.roots[level]),
             ValueSlot::Wanted());
    }
    QueryCost uc(s.ub);
    Result<QueryResult> ur = s.uindex->Parscan(q);
    const uint64_t u_pages = uc.PagesRead();
    if (!ur.ok()) {
      std::fprintf(stderr, "Q3: %s\n", ur.status().ToString().c_str());
      return 1;
    }
    std::vector<std::vector<Oid>> expected;
    for (const auto& chain : range_chains) {
      const Oid at = chain[cfg.hops - 1 - pred_level];
      if (w.schema.IsSubclassOf(w.store->Get(at).value()->cls, sub)) {
        expected.push_back(chain);
      }
    }
    std::vector<std::vector<Oid>> u_rows = std::move(ur).value().rows;
    std::sort(u_rows.begin(), u_rows.end());
    if (int rc = CheckIdentity("Q3 uindex", u_rows, expected); rc != 0) {
      return rc;
    }
    std::printf("  %s/Q3 structure    %5zu rows  U=%llu (no capable "
                "baseline)\n",
                tag, expected.size(),
                static_cast<unsigned long long>(u_pages));
    report->AddPages(row("q3_structure", "uindex"),
                     static_cast<double>(u_pages));
  }

  // ---- Q4: full instantiations at an exact value (derived from a real
  // chain: fixed constants can be absent from the small tail set). ----
  {
    const int64_t v0 = w.store->Get(all_chains[0][0])
                           .value()
                           ->FindAttr(kPathValueAttr)
                           ->AsInt();
    Query q = Query::ExactValue(Value::Int(v0));
    for (size_t pos = 0; pos < cfg.hops; ++pos) {
      q.With(ClassSelector::Subtree(w.roots[cfg.hops - 1 - pos]),
             ValueSlot::Wanted());
    }
    QueryCost uc(s.ub);
    Result<QueryResult> ur = s.uindex->Parscan(q);
    const uint64_t u_pages = uc.PagesRead();
    QueryCost pc(s.pb);
    Result<std::vector<std::vector<Oid>>> pr =
        s.path->Lookup(Value::Int(v0), Value::Int(v0));
    const uint64_t path_pages = pc.PagesRead();
    if (!ur.ok() || !pr.ok()) {
      std::fprintf(stderr, "Q4 lookup failed\n");
      return 1;
    }
    const std::vector<std::vector<Oid>> expected =
        BruteChains(*w.store, spec, v0, v0);
    std::vector<std::vector<Oid>> u_rows = std::move(ur).value().rows;
    std::sort(u_rows.begin(), u_rows.end());
    if (int rc = CheckIdentity("Q4 uindex", u_rows, expected); rc != 0) {
      return rc;
    }
    std::vector<std::vector<Oid>> path_rows;
    for (const auto& t : pr.value()) {
      path_rows.emplace_back(t.rbegin(), t.rend());
    }
    std::sort(path_rows.begin(), path_rows.end());
    if (int rc = CheckIdentity("Q4 pathindex", path_rows, expected);
        rc != 0) {
      return rc;
    }
    std::printf("  %s/Q4 instantiate  %5zu rows  U=%-5llu path=%llu\n",
                tag, expected.size(),
                static_cast<unsigned long long>(u_pages),
                static_cast<unsigned long long>(path_pages));
    report->AddPages(row("q4_chains", "uindex"),
                     static_cast<double>(u_pages));
    report->AddPages(row("q4_chains", "pathindex"),
                     static_cast<double>(path_pages));
    totals->u += u_pages;
    totals->best_capable += path_pages;
  }
  return 0;
}

// A churn step that closes a reference cycle must fail typed and leave
// the maintained index byte-identical (the ISSUE's update edge case).
int RunCycleProbe() {
  Schema schema;
  const ClassId node = schema.AddClass("Node").value();
  if (!schema.AddReference(node, node, "next").ok()) return 1;
  Result<ClassCoder> coder =
      ClassCoder::Assign(schema, schema.FindCycleBreakingEdges());
  if (!coder.ok()) return 1;
  ObjectStore store(&schema);
  Pager pager(1024);
  BufferManager buffers(&pager);
  PathSpec spec;
  spec.classes = {node, node, node};
  spec.ref_attrs = {"next", "next"};
  spec.indexed_attr = "Value";
  spec.value_kind = Value::Kind::kInt;
  UIndex index(&buffers, &schema, &coder.value(), spec);
  if (!index.BuildFrom(store).ok()) return 1;
  IndexedDatabase idb(&schema, &store);
  idb.RegisterIndex(&index);

  const Oid n1 = idb.CreateObject(node).value();
  const Oid n2 = idb.CreateObject(node).value();
  if (!idb.SetAttr(n1, "Value", Value::Int(1)).ok()) return 1;
  if (!idb.SetAttr(n2, "Value", Value::Int(2)).ok()) return 1;
  if (!idb.SetAttr(n1, "next", Value::Ref(n2)).ok()) return 1;
  const uint64_t entries_before = index.entry_count();
  const Status s = idb.SetAttr(n2, "next", Value::Ref(n1));
  if (!s.IsCycleDetected()) {
    std::fprintf(stderr,
                 "GATE FAILED: cycle-closing churn returned \"%s\", want "
                 "CycleDetected\n",
                 s.ToString().c_str());
    return 1;
  }
  if (index.entry_count() != entries_before ||
      !index.btree().Validate().ok() ||
      !store.ReferrersOf(n1, "next").empty()) {
    std::fprintf(stderr, "GATE FAILED: cycle rollback left residue\n");
    return 1;
  }
  std::printf("cycle probe: typed CycleDetected, index byte-identical\n");
  return 0;
}

// Façade phase: deep paths through `Database` (memory or file backend)
// under concurrent readers with re-reference churn + subclass DDL.
int RunFacadePhase(JsonReport* report) {
  DeepPathConfig cfg = DeepPathConfig::Quick();
  cfg.heads = QuickMode() ? 800 : 4000;
  Database db;
  DeepPathDbInfo info;
  if (Status s = LoadDeepPathsIntoDatabase(cfg, &db, &info); !s.ok()) {
    std::fprintf(stderr, "facade load: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("facade phase: backend=%s, %u heads x %u hops\n",
              db.data_path().empty() ? "memory" : "file", cfg.heads,
              cfg.hops);

  auto chain_query = [&](int64_t lo, int64_t hi) {
    Query q = Query::Range(Value::Int(lo), Value::Int(hi));
    for (size_t pos = 0; pos < cfg.hops; ++pos) {
      q.With(ClassSelector::Subtree(info.roots[cfg.hops - 1 - pos]),
             ValueSlot::Wanted());
    }
    return q;
  };

  std::atomic<bool> stop{false};
  std::atomic<int> violations{0};
  std::vector<LatencyRecorder> recorders(2);
  std::vector<std::thread> readers;
  for (size_t t = 0; t < recorders.size(); ++t) {
    readers.emplace_back([&, t] {
      Random rng(0x5EED + t);
      while (!stop.load(std::memory_order_relaxed)) {
        // Throttled so DDL's exclusive latch acquisition can get in.
        std::this_thread::sleep_for(std::chrono::microseconds(200));
        const int64_t lo = static_cast<int64_t>(
            rng.Uniform(static_cast<uint64_t>(cfg.num_distinct_values)));
        const auto start = std::chrono::steady_clock::now();
        Result<QueryResult> r =
            db.Execute(info.index_pos, chain_query(lo, lo + 20));
        recorders[t].Record(
            std::chrono::duration<double, std::micro>(
                std::chrono::steady_clock::now() - start)
                .count());
        if (!r.ok()) {
          violations.fetch_add(1);
          continue;
        }
        // Every row must be a well-formed chain: full length, head an
        // instance of the head hierarchy (torn index states would break
        // this long before byte-level checks).
        for (const auto& chain : r.value().rows) {
          if (chain.size() != cfg.hops) {
            violations.fetch_add(1);
            break;
          }
          Result<const Object*> head = db.store().Get(chain.back());
          if (!head.ok() ||
              !db.schema().IsSubclassOf(head.value()->cls,
                                        info.roots[0])) {
            violations.fetch_add(1);
            break;
          }
        }
      }
    });
  }

  // Mid-path re-reference churn through the façade (levels are distinct
  // hierarchies, so no cycle is possible) + one subclass insertion per
  // quarter, immediately wired into live chains.
  Random rng(0xD1CE);
  const int churn = QuickMode() ? 300 : 1500;
  int rc = 0;
  for (int i = 0; i < churn && rc == 0; ++i) {
    const size_t level =
        1 + rng.Uniform(static_cast<uint64_t>(cfg.hops - 2));
    const auto& sources = info.oids[level];
    const auto& targets = info.oids[level + 1];
    if (Status s = db.SetAttr(
            sources[rng.Uniform(sources.size())], info.ref_attrs[level],
            Value::Ref(targets[rng.Uniform(targets.size())]));
        !s.ok()) {
      std::fprintf(stderr, "churn: %s\n", s.ToString().c_str());
      rc = 1;
    }
    if (i % (churn / 4) == churn / 8) {
      const size_t ddl_level = 2;
      Result<ClassId> fresh = db.CreateSubclass(
          "Hop2Evolved" + std::to_string(i), info.roots[ddl_level]);
      if (!fresh.ok()) {
        std::fprintf(stderr, "ddl: %s\n",
                     fresh.status().ToString().c_str());
        rc = 1;
        break;
      }
      // A new-subclass object spliced into a live chain: its upstream
      // neighbour re-points at it, it points on downstream.
      Result<Oid> oid = db.CreateObject(fresh.value());
      if (!oid.ok() ||
          !db.SetAttr(oid.value(), info.ref_attrs[ddl_level],
                      Value::Ref(info.oids[ddl_level + 1][0]))
               .ok() ||
          !db.SetAttr(info.oids[ddl_level - 1][i % 50],
                      info.ref_attrs[ddl_level - 1],
                      Value::Ref(oid.value()))
               .ok()) {
        rc = 1;
        break;
      }
    }
  }
  stop.store(true, std::memory_order_relaxed);
  LatencyRecorder all;
  for (size_t t = 0; t < readers.size(); ++t) {
    readers[t].join();
    all.Merge(recorders[t]);
  }
  if (rc != 0) return rc;
  if (violations.load() != 0) {
    std::fprintf(stderr,
                 "GATE FAILED: %d reader errors / malformed chains during "
                 "churn+DDL\n",
                 violations.load());
    return 1;
  }

  // Quiesced identity: the maintained façade index equals brute force
  // over the evolved store, new subclass objects included.
  PathSpec spec;
  spec.classes = info.roots;
  spec.ref_attrs = info.ref_attrs;
  spec.indexed_attr = kPathValueAttr;
  spec.value_kind = Value::Kind::kInt;
  Result<QueryResult> final_r = db.Execute(
      info.index_pos, chain_query(0, cfg.num_distinct_values));
  if (!final_r.ok()) return 1;
  std::vector<std::vector<Oid>> rows = std::move(final_r).value().rows;
  std::sort(rows.begin(), rows.end());
  if (rows != BruteChains(db.store(), spec, 0, cfg.num_distinct_values)) {
    std::fprintf(stderr, "GATE FAILED: façade rows diverge from brute "
                         "force after churn + evolution\n");
    return 1;
  }

  std::printf("facade readers: %llu queries, mean %.0fus p50 %.0fus "
              "p99 %.0fus\n",
              static_cast<unsigned long long>(all.Count()), all.MeanUs(),
              all.PercentileUs(50), all.PercentileUs(99));
  report->AddScalar("facade/reader", "count",
                    static_cast<double>(all.Count()));
  report->AddScalar("facade/reader", "mean_us", all.MeanUs());
  report->AddScalar("facade/reader", "p50_us", all.PercentileUs(50));
  report->AddScalar("facade/reader", "p99_us", all.PercentileUs(99));
  const bool no_timing =
      std::getenv("UINDEX_BENCH_NO_TIMING_GATES") != nullptr;
  if (!no_timing && all.PercentileUs(99) > 100000.0) {
    std::fprintf(stderr, "GATE FAILED: reader p99 %.0fus > 100ms\n",
                 all.PercentileUs(99));
    return 1;
  }
  return 0;
}

int Run() {
  const DeepPathConfig cfg = CoreConfig();
  std::printf("Deep-path workload: %u hops, %u heads, skew %.1f%s\n\n",
              cfg.hops, cfg.heads, cfg.skew,
              QuickMode() ? " [QUICK MODE]" : "");
  DeepPathWorkload w;
  if (Status s = GenerateDeepPaths(cfg, &w); !s.ok()) {
    std::fprintf(stderr, "generate: %s\n", s.ToString().c_str());
    return 1;
  }
  JsonReport report("paths");
  CoreStructures structures(w, BTreeOptions());
  if (Status s = structures.BuildAll(*w.store); !s.ok()) {
    std::fprintf(stderr, "build: %s\n", s.ToString().c_str());
    return 1;
  }
  PageTotals totals;
  if (int rc = RunQueryShapes(w, cfg, StructView::Of(structures), &report,
                              "fresh", &totals);
      rc != 0) {
    return rc;
  }

  // Mid-path re-reference churn, maintained incrementally; every query
  // shape must still be byte-identical to brute force afterwards
  // (baselines are rebuilt from the churned store — only the U-index is
  // maintained in place).
  IndexedDatabase idb(&w.schema, w.store.get());
  idb.RegisterIndex(&structures.uindex);
  const size_t churn = QuickMode() ? 400 : 2500;
  QueryCost maintain_cost(&structures.ub);
  Result<size_t> applied = ChurnRereference(&w, &idb, churn, 0xCAFE);
  totals.u_maintain =
      maintain_cost.PagesRead() + maintain_cost.PagesWritten();
  if (!applied.ok() || applied.value() != churn) {
    std::fprintf(stderr, "churn failed: %s\n",
                 applied.ok() ? "short count"
                              : applied.status().ToString().c_str());
    return 1;
  }
  std::printf("\n  applied %zu mid-path re-references (U maintained "
              "in place, baselines rebuilt)\n",
              applied.value());
  if (!structures.uindex.btree().Validate().ok()) {
    std::fprintf(stderr, "GATE FAILED: maintained U-index fails "
                         "validation after churn\n");
    return 1;
  }
  CoreStructures churned(w, BTreeOptions());
  {
    QueryCost pc(&churned.pb);
    QueryCost nc(&churned.nb);
    QueryCost xc(&churned.xb);
    if (Status s = churned.BuildAll(*w.store); !s.ok()) return 1;
    // Only the three baselines count — the rebuilt U-index below exists
    // solely to cross-check the maintained one's entry count.
    totals.baseline_rebuild = pc.PagesRead() + pc.PagesWritten() +
                              nc.PagesRead() + nc.PagesWritten() +
                              xc.PagesRead() + xc.PagesWritten();
  }
  if (churned.uindex.entry_count() != structures.uindex.entry_count()) {
    std::fprintf(stderr,
                 "GATE FAILED: maintained entry count %llu != rebuilt "
                 "%llu\n",
                 static_cast<unsigned long long>(
                     structures.uindex.entry_count()),
                 static_cast<unsigned long long>(
                     churned.uindex.entry_count()));
    return 1;
  }
  // The maintained index answers the post-churn round (keeping its own
  // page totals honest in the gate); the rebuilt baselines answer theirs.
  StructView churned_view = StructView::Of(churned);
  churned_view.uindex = &structures.uindex;
  churned_view.ub = &structures.ub;
  if (int rc = RunQueryShapes(w, cfg, churned_view, &report, "churned",
                              &totals);
      rc != 0) {
    return rc;
  }

  const uint64_t u_total = totals.u + totals.u_maintain;
  const uint64_t portfolio_total =
      totals.best_capable + totals.baseline_rebuild;
  report.AddPages("gate/u_queries", totals.u);
  report.AddPages("gate/u_maintain", totals.u_maintain);
  report.AddPages("gate/portfolio_queries", totals.best_capable);
  report.AddPages("gate/portfolio_rebuild", totals.baseline_rebuild);
  std::printf("\n  pages  U: queries=%llu maintain=%llu | portfolio: "
              "queries=%llu rebuild=%llu\n",
              static_cast<unsigned long long>(totals.u),
              static_cast<unsigned long long>(totals.u_maintain),
              static_cast<unsigned long long>(totals.best_capable),
              static_cast<unsigned long long>(totals.baseline_rebuild));
  if (u_total >= portfolio_total) {
    std::fprintf(stderr,
                 "GATE FAILED: uniform index total pages %llu >= baseline "
                 "portfolio total %llu\n",
                 static_cast<unsigned long long>(u_total),
                 static_cast<unsigned long long>(portfolio_total));
    return 1;
  }
  std::printf("uniformity gate: U total=%llu pages (queries+maintenance) "
              "< baseline portfolio=%llu (per-query cheapest capable + "
              "rebuild after churn)\n\n",
              static_cast<unsigned long long>(u_total),
              static_cast<unsigned long long>(portfolio_total));

  if (int rc = RunCycleProbe(); rc != 0) return rc;
  if (int rc = RunFacadePhase(&report); rc != 0) return rc;
  report.Write();
  std::printf("\nall deep-path gates passed\n");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace uindex

int main() { return uindex::bench::Run(); }
