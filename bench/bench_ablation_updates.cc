// Ablation: update cost (paper §4.2 "Update Cost" / §4.4). The canonical
// scenario — "a company replaces its president" — forces every path entry
// under the old (president, company) cluster to move. We measure the pages
// read and written maintaining a U-index, a Kim/Bertino path index, and a
// NIX for the same batch of president switches.
//
// Expected: the U-index's clustering makes the delete+reinsert land on few
// leaves (the §3.5 "batch" argument); the flat path index rewrites its
// per-value tuple lists; NIX pays twice (primary directories + auxiliary
// parent trees), matching §4.4's prediction of worse update performance.

#include <cstdio>

#include "baselines/nix/nix_index.h"
#include "baselines/pathindex/path_index.h"
#include "bench/bench_common.h"
#include "core/update.h"
#include "workload/database_generator.h"

namespace uindex {
namespace bench {
namespace {

struct Touched {
  uint64_t reads = 0;
  uint64_t writes = 0;
};

int Run() {
  PaperDatabaseConfig cfg;
  cfg.num_vehicles = QuickMode() ? 4000 : 12000;
  PaperDatabase db;
  if (Status s = GeneratePaperDatabase(cfg, &db); !s.ok()) {
    std::fprintf(stderr, "generate: %s\n", s.ToString().c_str());
    return 1;
  }
  const PaperSchema& ids = db.ids;

  PathSpec spec;
  spec.classes = {ids.vehicle, ids.company, ids.employee};
  spec.ref_attrs = {"manufactured-by", "president"};
  spec.indexed_attr = "Age";
  spec.value_kind = Value::Kind::kInt;

  Pager up(1024), pp(1024), xp(1024);
  BufferManager ub(&up), pb(&pp), xb(&xp);
  UIndex uidx(&ub, &ids.schema, db.coder.get(), spec);
  PathIndex path(&pb, spec);
  NixIndex nix(&xb, &ids.schema, spec);
  if (!uidx.BuildFrom(*db.store).ok() || !path.BuildFrom(*db.store).ok() ||
      !nix.BuildFrom(*db.store).ok()) {
    std::fprintf(stderr, "build failed\n");
    return 1;
  }
  IndexedDatabase idb(&ids.schema, db.store.get());
  idb.RegisterIndex(&uidx);

  const int switches = QuickMode() ? 10 : 30;
  std::printf("Update-cost ablation: %u vehicles, %d president switches\n\n",
              cfg.num_vehicles, switches);

  Touched u_cost, p_cost, x_cost;
  const std::vector<Oid> employees = db.store->ExtentOf(ids.employee);
  Random rng(31337);
  int performed = 0;
  for (int s = 0; s < switches; ++s) {
    const std::vector<Oid> companies = db.store->DeepExtentOf(ids.company);
    const Oid company = companies[rng.Uniform(companies.size())];
    const Oid old_president =
        std::move(db.store->Deref(company, "president")).value();
    const Oid new_president = employees[rng.Uniform(employees.size())];
    if (new_president == old_president) continue;

    // Affected instantiations: every vehicle of `company`, keyed by the
    // old and new presidents' ages.
    const Value* old_age =
        db.store->Get(old_president).value()->FindAttr("Age");
    const Value* new_age =
        db.store->Get(new_president).value()->FindAttr("Age");
    std::vector<std::vector<Oid>> tuples;
    for (const Oid v : db.store->ReferrersOf(company, "manufactured-by")) {
      tuples.push_back({v, company, old_president});
    }

    // U-index: maintenance is the library's own diff machinery.
    {
      const IoStats before = ub.stats();
      ub.BeginQuery();
      if (!idb.SetAttr(company, "president", Value::Ref(new_president))
               .ok()) {
        std::fprintf(stderr, "uindex update failed\n");
        return 1;
      }
      const IoStats d = ub.stats() - before;
      u_cost.reads += d.pages_read;
      u_cost.writes += d.pages_written;
    }

    // Path index and NIX: apply the same logical change tuple by tuple.
    {
      const IoStats before = pb.stats();
      pb.BeginQuery();
      for (const auto& t : tuples) {
        (void)path.Remove(*old_age, t);
        (void)path.Insert(*new_age, {t[0], t[1], new_president});
      }
      const IoStats d = pb.stats() - before;
      p_cost.reads += d.pages_read;
      p_cost.writes += d.pages_written;
    }
    {
      const IoStats before = xb.stats();
      xb.BeginQuery();
      for (const auto& t : tuples) {
        const ClassId vcls = db.store->Get(t[0]).value()->cls;
        const ClassId ccls = db.store->Get(t[1]).value()->cls;
        (void)nix.Remove(*old_age, {{vcls, t[0]},
                                    {ccls, t[1]},
                                    {ids.employee, old_president}});
        (void)nix.Insert(*new_age, {{vcls, t[0]},
                                    {ccls, t[1]},
                                    {ids.employee, new_president}});
      }
      const IoStats d = xb.stats() - before;
      x_cost.reads += d.pages_read;
      x_cost.writes += d.pages_written;
    }
    ++performed;
  }

  const double n = performed > 0 ? performed : 1;
  std::printf("%-12s %14s %14s\n", "structure", "reads/switch",
              "writes/switch");
  std::printf("%-12s %14.1f %14.1f\n", "U-index", u_cost.reads / n,
              u_cost.writes / n);
  std::printf("%-12s %14.1f %14.1f\n", "path index", p_cost.reads / n,
              p_cost.writes / n);
  std::printf("%-12s %14.1f %14.1f\n", "NIX", x_cost.reads / n,
              x_cost.writes / n);
  JsonReport report("ablation_updates");
  report.AddPages("uindex/reads_per_switch", u_cost.reads / n);
  report.AddPages("uindex/writes_per_switch", u_cost.writes / n);
  report.AddPages("pathindex/reads_per_switch", p_cost.reads / n);
  report.AddPages("pathindex/writes_per_switch", p_cost.writes / n);
  report.AddPages("nix/reads_per_switch", x_cost.reads / n);
  report.AddPages("nix/writes_per_switch", x_cost.writes / n);
  report.Write();
  std::printf(
      "\nExpected (§3.5/§4.2/§4.4): the U-index's clustered single-value\n"
      "entries keep the delete+reinsert on few leaves; the path index\n"
      "rewrites whole per-value tuple lists; NIX maintains both its\n"
      "primary directories and auxiliary parent trees.\n");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace uindex

int main() { return uindex::bench::Run(); }
