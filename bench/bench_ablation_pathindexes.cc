// Ablation: U-index vs the path-flavoured structures — Kim/Bertino nested
// index and path index, and the Bertino/Foscoli Nested-Inherited Index
// (NIX) — across the qualitative comparisons of paper §4.4 and the future
// work named in §6. Page reads per query, same buffer accounting for all.

#include <algorithm>
#include <cstdio>
#include <memory>

#include "baselines/nix/nix_index.h"
#include "baselines/pathindex/nested_index.h"
#include "baselines/pathindex/path_index.h"
#include "bench/bench_common.h"
#include "core/uindex.h"
#include "workload/database_generator.h"

namespace uindex {
namespace bench {
namespace {

int Run() {
  PaperDatabaseConfig cfg;
  cfg.num_vehicles = QuickMode() ? 4000 : 12000;
  PaperDatabase db;
  if (Status s = GeneratePaperDatabase(cfg, &db); !s.ok()) {
    std::fprintf(stderr, "generate: %s\n", s.ToString().c_str());
    return 1;
  }
  const PaperSchema& ids = db.ids;

  PathSpec spec;
  spec.classes = {ids.vehicle, ids.company, ids.employee};
  spec.ref_attrs = {"manufactured-by", "president"};
  spec.indexed_attr = "Age";
  spec.value_kind = Value::Kind::kInt;

  // Each structure on its own pager; nodes bounded by page size so the
  // U-index's front compression is in effect (its design point, §4.2).
  BTreeOptions options;

  Pager up(1024), np(1024), pp(1024), xp(1024);
  BufferManager ub(&up), nb(&np), pb(&pp), xb(&xp);
  UIndex uidx(&ub, &ids.schema, db.coder.get(), spec, options);
  NestedIndex nested(&nb, spec, options);
  PathIndex path(&pb, spec, options);
  NixIndex nix(&xb, &ids.schema, spec, options);
  if (Status s = uidx.BuildFrom(*db.store); !s.ok()) return 1;
  if (Status s = nested.BuildFrom(*db.store); !s.ok()) return 1;
  if (Status s = path.BuildFrom(*db.store); !s.ok()) return 1;
  if (Status s = nix.BuildFrom(*db.store); !s.ok()) return 1;

  std::printf("Path-index ablation: %u vehicles, 1 KiB nodes, "
              "Vehicle/Company/Employee.Age\n\n",
              cfg.num_vehicles);
  std::printf("storage pages: U-index=%llu nested=%llu path=%llu NIX=%llu\n\n",
              static_cast<unsigned long long>(up.live_page_count()),
              static_cast<unsigned long long>(np.live_page_count()),
              static_cast<unsigned long long>(pp.live_page_count()),
              static_cast<unsigned long long>(xp.live_page_count()));

  std::printf("%-44s %8s %8s %8s %8s\n", "query (pages read)", "U-index",
              "nested", "path", "NIX");

  JsonReport report("ablation_pathindexes");
  auto print_row = [&report](const char* slug, const char* label, uint64_t u,
                             uint64_t n, uint64_t p, uint64_t x,
                             size_t rows) {
    char l2[96];
    std::snprintf(l2, sizeof(l2), "%s [%zu rows]", label, rows);
    auto cell = [](uint64_t v, char* buf, size_t cap) {
      if (v == UINT64_MAX) {
        std::snprintf(buf, cap, "n/a");
      } else {
        std::snprintf(buf, cap, "%llu", static_cast<unsigned long long>(v));
      }
    };
    char cu[24], cn[24], cp[24], cx[24];
    cell(u, cu, 24);
    cell(n, cn, 24);
    cell(p, cp, 24);
    cell(x, cx, 24);
    std::printf("%-44s %8s %8s %8s %8s\n", l2, cu, cn, cp, cx);
    auto add = [&](const char* structure, uint64_t v) {
      if (v != UINT64_MAX) {
        report.AddPages(std::string(slug) + "/" + structure,
                        static_cast<double>(v));
      }
    };
    add("uindex", u);
    add("nested", n);
    add("path", p);
    add("nix", x);
  };

  // --- A: head-class query (vehicles, president age 50). ---
  {
    Query q = Query::ExactValue(Value::Int(50));
    q.With(ClassSelector::Exactly(ids.employee))
        .With(ClassSelector::Subtree(ids.company))
        .With(ClassSelector::Subtree(ids.vehicle), ValueSlot::Wanted());
    QueryCost cu(&ub);
    const size_t rows = std::move(uidx.Parscan(q)).value().rows.size();
    const uint64_t u = cu.PagesRead();
    QueryCost cn(&nb);
    (void)nested.Lookup(Value::Int(50), Value::Int(50));
    const uint64_t n = cn.PagesRead();
    QueryCost cp(&pb);
    (void)path.Lookup(Value::Int(50), Value::Int(50));
    const uint64_t p = cp.PagesRead();
    QueryCost cx(&xb);
    (void)nix.Lookup(Value::Int(50), Value::Int(50), ids.vehicle, true);
    const uint64_t x = cx.PagesRead();
    print_row("A", "A: vehicles, president age = 50", u, n, p, x, rows);
  }

  // --- B: same with an in-path restriction to one company. ---
  {
    const std::vector<Oid> companies = db.store->ExtentOf(ids.auto_company);
    const Oid company = companies.empty() ? 1 : companies[0];
    Query q = Query::Range(Value::Int(20), Value::Int(70));
    q.With(ClassSelector::Exactly(ids.employee))
        .With(ClassSelector::Subtree(ids.company), ValueSlot::Bound({company}))
        .With(ClassSelector::Subtree(ids.vehicle), ValueSlot::Wanted());
    QueryCost cu(&ub);
    const size_t rows = std::move(uidx.Parscan(q)).value().rows.size();
    const uint64_t u = cu.PagesRead();
    // The nested index cannot express in-path predicates at all (§2).
    QueryCost cp(&pb);
    (void)path.Lookup(Value::Int(20), Value::Int(70),
                      {PathIndex::PositionFilter{1, {company}}});
    const uint64_t p = cp.PagesRead();
    QueryCost cx(&xb);
    (void)nix.LookupRestricted(Value::Int(20), Value::Int(70), ids.vehicle,
                               true, 1, {company});
    const uint64_t x = cx.PagesRead();
    print_row("B", "B: vehicles of ONE company, any age", u, UINT64_MAX,
              p, x, rows);
  }

  // --- C: combined class-hierarchy/path query (trucks by truck
  // companies). ---
  {
    Query q = Query::Range(Value::Int(20), Value::Int(70));
    q.With(ClassSelector::Exactly(ids.employee))
        .With(ClassSelector::Subtree(ids.truck_company))
        .With(ClassSelector::Subtree(ids.truck), ValueSlot::Wanted());
    QueryCost cu(&ub);
    const size_t rows = std::move(uidx.Parscan(q)).value().rows.size();
    const uint64_t u = cu.PagesRead();
    // nested/path indexes need store-side class filtering (uncounted
    // object fetches on top of full scans); NIX answers natively.
    QueryCost cp(&pb);
    (void)path.Lookup(Value::Int(20), Value::Int(70));
    const uint64_t p = cp.PagesRead();
    QueryCost cx(&xb);
    (void)nix.Lookup(Value::Int(20), Value::Int(70), ids.truck, true);
    const uint64_t x = cx.PagesRead();
    print_row("C", "C: trucks by truck companies (combined)", u,
              UINT64_MAX, p, x, rows);
  }

  // --- D: partial path (companies only). ---
  {
    Query q = Query::ExactValue(Value::Int(50));
    q.With(ClassSelector::Exactly(ids.employee))
        .With(ClassSelector::Subtree(ids.company), ValueSlot::Wanted());
    QueryCost cu(&ub);
    const size_t rows = std::move(uidx.Parscan(q)).value().rows.size();
    const uint64_t u = cu.PagesRead();
    QueryCost cx(&xb);
    (void)nix.Lookup(Value::Int(50), Value::Int(50), ids.company, true);
    const uint64_t x = cx.PagesRead();
    print_row("D", "D: companies, president age = 50", u, UINT64_MAX,
              UINT64_MAX, x, rows);
  }

  report.Write();
  std::printf(
      "\nExpected (paper §4.4): single-class queries comparable between\n"
      "U-index and NIX; in-path oid restrictions favour the U-index (it\n"
      "stores the whole compressed path; NIX chases auxiliary trees);\n"
      "nested index cannot answer B-D; the flat path index pays full\n"
      "tuple-list scans.\n");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace uindex

int main() { return uindex::bench::Run(); }
