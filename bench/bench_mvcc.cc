// MVCC + group-commit benchmark: what taking down the global write latch
// bought, with the claims enforced as gates.
//
//   * no-stall gate: reader p99 latency with a writer committing DML the
//     whole time must stay within 1.5x of the read-only p99. Both phases
//     run the reader against exactly one competing thread — a plain CPU
//     burner in the baseline, the DML writer in the measured phase — so
//     the ratio isolates blocking on the database from scheduler
//     contention on small machines;
//   * snapshot identity gate: every scan under concurrent DML must return
//     rows byte-identical to the quiesced serial baseline, with an
//     identical fresh-epoch pages_read aggregate (the writer mutates a
//     different class, so every pinned epoch sees the same tree — any
//     divergence is a chain-resolution bug, not a workload effect);
//   * group-commit gate: write QPS with 8 concurrent committers over a
//     batched-sync journal must reach >= 3x the same workload acked with
//     one fdatasync per record.
//
// Reports to stdout and $UINDEX_BENCH_OUT_DIR/mvcc.json (default
// bench_results/mvcc.json).

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "db/database.h"
#include "util/random.h"

namespace uindex {
namespace {

constexpr int64_t kQueryKeys = 1000;    // Reader class key space.
constexpr int64_t kWriterBase = 1 << 20;  // Writer keys: disjoint range.

struct LoadedDb {
  std::unique_ptr<Database> db;
  ClassId read_cls = kInvalidClassId;
  ClassId write_cls = kInvalidClassId;
  std::vector<Oid> write_oids;
};

Result<LoadedDb> BuildReaderDb(const std::string& journal_path,
                               uint32_t num_objects) {
  LoadedDb out;
  out.db = std::make_unique<Database>();
  Database& db = *out.db;
  UINDEX_RETURN_IF_ERROR(db.EnableJournal(journal_path));

  Result<ClassId> read_cls = db.CreateClass("Scanned");
  if (!read_cls.ok()) return read_cls.status();
  out.read_cls = read_cls.value();
  Result<ClassId> write_cls = db.CreateClass("Mutated");
  if (!write_cls.ok()) return write_cls.status();
  out.write_cls = write_cls.value();
  UINDEX_RETURN_IF_ERROR(
      db.CreateIndex(
            PathSpec::ClassHierarchy(out.read_cls, "Key", Value::Kind::kInt))
          .status());
  UINDEX_RETURN_IF_ERROR(
      db.CreateIndex(PathSpec::ClassHierarchy(out.write_cls, "Key",
                                              Value::Kind::kInt))
          .status());

  Random rng(0x3FCC);
  for (uint32_t i = 0; i < num_objects; ++i) {
    Result<Oid> oid = db.CreateObject(out.read_cls);
    if (!oid.ok()) return oid.status();
    UINDEX_RETURN_IF_ERROR(db.SetAttr(
        oid.value(), "Key",
        Value::Int(static_cast<int64_t>(rng.Uniform(kQueryKeys)))));
  }
  for (uint32_t i = 0; i < num_objects / 4; ++i) {
    Result<Oid> oid = db.CreateObject(out.write_cls);
    if (!oid.ok()) return oid.status();
    UINDEX_RETURN_IF_ERROR(
        db.SetAttr(oid.value(), "Key", Value::Int(kWriterBase + i)));
    out.write_oids.push_back(oid.value());
  }
  return out;
}

std::vector<Database::Selection> MakeQueries(ClassId cls, int n) {
  std::vector<Database::Selection> queries;
  queries.reserve(n);
  Random rng(0xBEEF);
  for (int q = 0; q < n; ++q) {
    Database::Selection sel;
    sel.cls = cls;
    sel.attr = "Key";
    const int64_t lo = static_cast<int64_t>(rng.Uniform(kQueryKeys - 10));
    sel.lo = Value::Int(lo);
    sel.hi = Value::Int(lo + 10);
    queries.push_back(sel);
  }
  return queries;
}

/// Runs the query list `rounds` times, collecting per-query latencies and
/// (on the first round) rows + the fresh-epoch pages_read aggregate.
Status ReaderPass(Database& db, const std::vector<Database::Selection>& qs,
                  int rounds, bench::LatencyRecorder* latencies,
                  std::vector<std::vector<Oid>>* rows, uint64_t* pages) {
  for (int round = 0; round < rounds; ++round) {
    const bool record = round == 0 && rows != nullptr;
    if (record) {
      db.buffers().BeginQuery();  // Fresh epoch: count each page once.
      rows->clear();
    }
    const IoStats base = db.buffers().stats();
    for (const Database::Selection& sel : qs) {
      const auto start = std::chrono::steady_clock::now();
      Result<Database::SelectResult> r = db.Select(sel);
      const double us = std::chrono::duration<double, std::micro>(
                            std::chrono::steady_clock::now() - start)
                            .count();
      if (!r.ok()) return r.status();
      if (!r.value().used_index) {
        return Status::Corruption("query fell back to an extent scan");
      }
      latencies->Record(us);
      if (record) rows->push_back(std::move(r.value().oids));
    }
    if (record && pages != nullptr) {
      *pages = (db.buffers().stats() - base)
                   .pages_read.load(std::memory_order_relaxed);
    }
  }
  return Status::OK();
}

/// 8-writer commit storm against a fresh journaled database; returns QPS.
Result<double> WriteStorm(const std::string& journal_path, bool group_commit,
                          int writers, int commits_per_writer) {
  DatabaseOptions options;
  options.group_commit = group_commit;
  Database db(options);
  UINDEX_RETURN_IF_ERROR(db.EnableJournal(journal_path));
  Result<ClassId> cls = db.CreateClass("Item");
  if (!cls.ok()) return cls.status();
  std::vector<Oid> oids;
  for (int i = 0; i < writers; ++i) {
    Result<Oid> oid = db.CreateObject(cls.value());
    if (!oid.ok()) return oid.status();
    oids.push_back(oid.value());
  }

  std::atomic<int> failures{0};
  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  threads.reserve(writers);
  for (int t = 0; t < writers; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < commits_per_writer; ++i) {
        if (!db.SetAttr(oids[t], "Key", Value::Int(i)).ok()) {
          failures.fetch_add(1);
          return;
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  const double secs = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - start)
                          .count();
  if (failures.load() != 0) {
    return Status::Corruption("write storm: a commit failed");
  }
  return writers * commits_per_writer / secs;
}

int Run() {
  const uint32_t num_objects = bench::QuickMode() ? 6000u : 30000u;
  const int num_queries = bench::QuickMode() ? 200 : 500;
  const int reader_rounds = bench::QuickMode() ? 4 : 10;
  const int commits_per_writer = bench::QuickMode() ? 40 : 150;
  constexpr int kWriters = 8;

  std::error_code ec;
  const std::filesystem::path work =
      std::filesystem::temp_directory_path() / "uindex_bench_mvcc";
  std::filesystem::remove_all(work, ec);
  std::filesystem::create_directories(work, ec);

  Result<LoadedDb> loaded =
      BuildReaderDb((work / "reader.journal").string(), num_objects);
  if (!loaded.ok()) {
    std::fprintf(stderr, "setup: %s\n", loaded.status().ToString().c_str());
    return 1;
  }
  Database& db = *loaded.value().db;
  const std::vector<Database::Selection> queries =
      MakeQueries(loaded.value().read_cls, num_queries);

  // --- Phase 1: read-only baseline (reader + CPU burner). ----------------
  std::vector<std::vector<Oid>> baseline_rows;
  uint64_t baseline_pages = 0;
  bench::LatencyRecorder baseline_lat;
  {
    std::atomic<bool> stop{false};
    // The competitor mirrors the concurrent phase's writer duty cycle —
    // a short CPU burst then a write+fdatasync on a scratch file — so the
    // only thing phase 2 changes is that the competitor's commits go
    // through the database. A pure spin loop here would understate the
    // baseline p99: a thread that sleeps in fdatasync wakes with
    // scheduler credit and preempts the reader mid-query, and that cost
    // must land in both phases for the ratio to isolate DB blocking.
    const std::string scratch = (work / "burner.dat").string();
    std::thread burner([&stop, &scratch] {
      const int fd = ::open(scratch.c_str(), O_CREAT | O_WRONLY, 0644);
      char buf[64] = {0};
      uint64_t x = 1;
      std::atomic<uint64_t> sink{0};
      while (!stop.load(std::memory_order_acquire)) {
        for (int i = 0; i < 4000; ++i) x = x * 31 + 7;
        sink.store(x, std::memory_order_relaxed);
        if (fd >= 0) {
          (void)::pwrite(fd, buf, sizeof buf, 0);
          (void)::fdatasync(fd);
        }
      }
      if (fd >= 0) ::close(fd);
    });
    Status st = ReaderPass(db, queries, reader_rounds, &baseline_lat,
                           &baseline_rows, &baseline_pages);
    stop.store(true, std::memory_order_release);
    burner.join();
    if (!st.ok()) {
      std::fprintf(stderr, "read-only phase: %s\n", st.ToString().c_str());
      return 1;
    }
  }
  const double p99_read_only = baseline_lat.PercentileUs(99);

  // --- Phase 2: same scans with a writer committing the whole time. ------
  std::vector<std::vector<Oid>> concurrent_rows;
  uint64_t concurrent_pages = 0;
  bench::LatencyRecorder concurrent_lat;
  uint64_t writer_commits = 0;
  {
    std::atomic<bool> stop{false};
    std::atomic<uint64_t> commits{0};
    std::atomic<bool> writer_failed{false};
    const std::vector<Oid>& targets = loaded.value().write_oids;
    std::thread writer([&] {
      Random wrng(0x5EED);
      uint64_t n = 0;
      while (!stop.load(std::memory_order_acquire)) {
        const Oid oid = targets[wrng.Uniform(targets.size())];
        if (!db.SetAttr(oid, "Key",
                        Value::Int(kWriterBase +
                                   static_cast<int64_t>(wrng.Uniform(1 << 16))))
                 .ok()) {
          writer_failed.store(true, std::memory_order_release);
          return;
        }
        commits.fetch_add(1, std::memory_order_relaxed);
        ++n;
      }
    });
    // Rows are recorded per query (snapshot identity under live commits);
    // the pages_read aggregate is NOT measured here — it is a database-
    // wide counter, so the writer's own page traffic would leak into the
    // delta. It is measured right below, quiesced, with the writer's
    // version chains still in place.
    Status st = ReaderPass(db, queries, reader_rounds, &concurrent_lat,
                           &concurrent_rows, /*pages=*/nullptr);
    stop.store(true, std::memory_order_release);
    writer.join();
    writer_commits = commits.load();
    if (!st.ok() || writer_failed.load()) {
      std::fprintf(stderr, "concurrent phase: %s\n",
                   st.ok() ? "writer DML failed" : st.ToString().c_str());
      return 1;
    }
  }
  {
    // Quiesced re-scan over the CoW version chains the writer left
    // behind: resolution through the chains must charge the same logical
    // pages as the chain-free baseline.
    std::vector<std::vector<Oid>> post_rows;
    bench::LatencyRecorder post_lat;
    Status st = ReaderPass(db, queries, /*rounds=*/1, &post_lat, &post_rows,
                           &concurrent_pages);
    if (!st.ok()) {
      std::fprintf(stderr, "post-quiesce scan: %s\n", st.ToString().c_str());
      return 1;
    }
    if (post_rows != baseline_rows) {
      std::fprintf(stderr, "FAIL: post-quiesce rows diverged\n");
      concurrent_pages = ~0ull;  // Force the identity gate to fail.
    }
  }
  const double p99_concurrent = concurrent_lat.PercentileUs(99);
  const double p99_ratio =
      p99_read_only > 0 ? p99_concurrent / p99_read_only : 0;

  // --- Identity gate: pinned-epoch scans match the serial baseline. ------
  bool identical = baseline_rows == concurrent_rows;
  if (!identical) {
    std::fprintf(stderr,
                 "FAIL: scans under concurrent DML diverged from the "
                 "quiesced baseline\n");
  }
  if (baseline_pages != concurrent_pages) {
    identical = false;
    std::fprintf(stderr,
                 "FAIL: pages_read moved under concurrent DML: quiesced "
                 "%llu, concurrent %llu\n",
                 static_cast<unsigned long long>(baseline_pages),
                 static_cast<unsigned long long>(concurrent_pages));
  }

  const IoStats& stats = db.buffers().stats();
  const uint64_t batches = stats.commit_batches.load();
  const uint64_t batched_records = stats.commit_records.load();
  const double batch_avg =
      batches > 0 ? static_cast<double>(batched_records) / batches : 0;

  // --- Phase 3: 8-writer commit storm, sync-each vs group commit. --------
  Result<double> qps_sync_each =
      WriteStorm((work / "storm_sync.journal").string(),
                 /*group_commit=*/false, kWriters, commits_per_writer);
  if (!qps_sync_each.ok()) {
    std::fprintf(stderr, "sync-each storm: %s\n",
                 qps_sync_each.status().ToString().c_str());
    return 1;
  }
  Result<double> qps_group =
      WriteStorm((work / "storm_group.journal").string(),
                 /*group_commit=*/true, kWriters, commits_per_writer);
  if (!qps_group.ok()) {
    std::fprintf(stderr, "group-commit storm: %s\n",
                 qps_group.status().ToString().c_str());
    return 1;
  }
  const double qps_ratio = qps_group.value() / qps_sync_each.value();

  std::printf("bench_mvcc: %u objects, %d queries x %d rounds, %llu "
              "concurrent commits%s\n",
              num_objects, num_queries, reader_rounds,
              static_cast<unsigned long long>(writer_commits),
              bench::QuickMode() ? " (quick mode)" : "");
  std::printf("  %-40s %12.1f us\n", "reader p99 (read-only + burner)",
              p99_read_only);
  std::printf("  %-40s %12.1f us  (%.2fx, gate <= 1.5x)\n",
              "reader p99 (writer committing)", p99_concurrent, p99_ratio);
  std::printf("  %-40s %12s\n", "snapshot identity (rows, pages_read)",
              identical ? "identical" : "DIFFER");
  std::printf("  %-40s %12.2f\n", "commit batch size avg (reader phase)",
              batch_avg);
  std::printf("  %-40s %12.0f/s\n", "write QPS, 8 writers, sync each",
              qps_sync_each.value());
  std::printf("  %-40s %12.0f/s  (%.2fx, gate >= 3x)\n",
              "write QPS, 8 writers, group commit", qps_group.value(),
              qps_ratio);

  std::string json_text;
  {
    bench::AppendF(
        &json_text,
        "{\n  \"bench\": \"mvcc\",\n  \"quick_mode\": %s,\n"
        "  \"reader_p99_us\": {\"read_only\": %.1f, \"concurrent\": %.1f, "
        "\"ratio\": %.3f},\n  \"reader_latency\": {\"read_only\": ",
        bench::QuickMode() ? "true" : "false", p99_read_only, p99_concurrent,
        p99_ratio);
    baseline_lat.AppendJson(&json_text);
    bench::AppendF(&json_text, ", \"concurrent\": ");
    concurrent_lat.AppendJson(&json_text);
    bench::AppendF(
        &json_text,
        "},\n"
        "  \"snapshot_identity\": %s,\n"
        "  \"pages_read\": {\"quiesced\": %llu, \"concurrent\": %llu},\n"
        "  \"concurrent_writer_commits\": %llu,\n"
        "  \"commit_batch_size_avg\": %.2f,\n"
        "  \"write_qps\": {\"writers\": %d, \"sync_each\": %.0f, "
        "\"group_commit\": %.0f, \"ratio\": %.3f}\n}\n",
        identical ? "true" : "false",
        static_cast<unsigned long long>(baseline_pages),
        static_cast<unsigned long long>(concurrent_pages),
        static_cast<unsigned long long>(writer_commits), batch_avg, kWriters,
        qps_sync_each.value(), qps_group.value(), qps_ratio);
    bench::WriteArtifact("mvcc", json_text);
  }

  std::filesystem::remove_all(work, ec);

  int rc = 0;
  if (!identical) rc = 1;
  // UINDEX_BENCH_NO_TIMING_GATES keeps the correctness gate (snapshot
  // identity) while waiving the latency/throughput ones — for sanitizer
  // legs, where instrumentation distorts every timing ratio.
  const char* no_timing = std::getenv("UINDEX_BENCH_NO_TIMING_GATES");
  const bool timing_gates = no_timing == nullptr || no_timing[0] == '\0' ||
                            std::string_view(no_timing) == "0";
  if (p99_ratio > 1.5) {
    std::fprintf(stderr, "%s: reader p99 ratio %.2f exceeds 1.5x\n",
                 timing_gates ? "FAIL" : "note (gate waived)", p99_ratio);
    if (timing_gates) rc = 1;
  }
  if (qps_ratio < 3.0) {
    std::fprintf(stderr, "%s: group-commit QPS ratio %.2f below 3x\n",
                 timing_gates ? "FAIL" : "note (gate waived)", qps_ratio);
    if (timing_gates) rc = 1;
  }
  return rc;
}

}  // namespace
}  // namespace uindex

int main() { return uindex::Run(); }
