// Reproduces Figure 6 of the paper: range queries spanning 10% of the
// keyspace, U-index vs CG-tree, over 40-set and 8-set hierarchies with
// unique / 100 / 1000 distinct keys.

#include "bench/bench_common.h"

int main() {
  return uindex::bench::RunFigure(
      "Figure 6: Range Queries (10% of keyspace)", "fig6_range10",
      /*fraction=*/0.10, /*key_counts=*/{0, 100, 1000});
}
