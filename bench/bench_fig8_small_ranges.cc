// Reproduces Figure 8 of the paper: with 1000 distinct keys, (a) 0.5% and
// (b) 0.2% range queries over 40-set and 8-set hierarchies, plus (c) the
// near vs non-near queried-set comparison for the U-index at the 10% range
// (the figure's bottom panel).

#include "bench/bench_common.h"

namespace uindex {
namespace bench {
namespace {

int Run() {
  std::printf("Figure 8: Small ranges (1000 different keys)\n");
  std::printf("objects=%u, page=1024B, reps=%d%s\n\n", ExperimentObjects(),
              ExperimentReps(),
              QuickMode() ? " [QUICK MODE]" : "");
  JsonReport report("fig8_small_ranges");
  for (const uint32_t num_sets : {40u, 8u}) {
    Result<std::unique_ptr<SetExperiment>> exp = MakePanel(num_sets, 1000);
    if (!exp.ok()) {
      std::fprintf(stderr, "setup: %s\n", exp.status().ToString().c_str());
      return 1;
    }
    for (const double fraction : {0.005, 0.002}) {
      std::printf("  -- range %.1f%% of keyspace, %u sets, 1000 different "
                  "keys --\n",
                  fraction * 100, num_sets);
      char panel[64];
      std::snprintf(panel, sizeof(panel), "sets=%u/range=%.1f%%", num_sets,
                    fraction * 100);
      Status s = RunPanel(*exp.value(), fraction, num_sets * 77, &report,
                          panel);
      if (!s.ok()) {
        std::fprintf(stderr, "panel: %s\n", s.ToString().c_str());
        return 1;
      }
      std::printf("\n");
    }
    // Bottom panel: the near/non-near delta at the 10% range.
    std::printf("  -- near vs non-near sets, range 10%%, %u sets --\n",
                num_sets);
    Status s = RunPanel(*exp.value(), 0.10, num_sets * 78, &report,
                        "sets=" + std::to_string(num_sets) + "/range=10%");
    if (!s.ok()) {
      std::fprintf(stderr, "panel: %s\n", s.ToString().c_str());
      return 1;
    }
    std::printf("\n");
  }
  report.Write();
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace uindex

int main() { return uindex::bench::Run(); }
