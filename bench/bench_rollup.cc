// Roll-up workload: day⊑month⊑year and city⊑state⊑country ontologies as
// class hierarchies (thousands of classes, sibling counts past the Z*
// token boundary), facts on the leaves. A roll-up at any level is ONE
// Parscan code-range scan for the U-index, while the per-class baselines
// (CG-tree, H-tree) must enumerate every leaf class under the ancestor
// and NIX walks its per-value class directories.
//
// Gates (all exit non-zero on violation):
//  * rows byte-identical between the U-index, every baseline, and the
//    brute-force store scan, at every roll-up level;
//  * the U-index reads fewer pages than the best baseline on multi-level
//    roll-ups (year/country and root levels) — page counts are
//    deterministic, so this gate is always armed;
//  * façade phase (honors UINDEX_BACKEND=file): concurrent readers see
//    byte-identical rows for classes untouched by mid-run SetAttr churn
//    and subclass-insertion DDL; reader p99 stays under the bound unless
//    UINDEX_BENCH_NO_TIMING_GATES waives timing.

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "baselines/cgtree/cgtree.h"
#include "baselines/htree/htree.h"
#include "baselines/nix/nix_index.h"
#include "bench/bench_common.h"
#include "core/uindex.h"
#include "db/database.h"
#include "util/random.h"
#include "workload/rollup_generator.h"

namespace uindex {
namespace bench {
namespace {

RollupConfig CoreConfig() {
  if (QuickMode()) return RollupConfig::Quick();
  RollupConfig cfg;  // Full scale: 13k+ day classes, 120k facts.
  return cfg;
}

std::vector<Oid> ParscanOids(const UIndex& index, ClassId cls, int64_t lo,
                             int64_t hi, Status* status) {
  Query q = Query::Range(Value::Int(lo), Value::Int(hi));
  q.With(ClassSelector::Subtree(cls), ValueSlot::Wanted());
  Result<QueryResult> r = index.Parscan(q);
  if (!r.ok()) {
    *status = r.status();
    return {};
  }
  std::vector<Oid> oids = r.value().Distinct(0);
  return oids;
}

// One roll-up probe: a class at some ontology level plus a value range.
struct Probe {
  std::string label;
  ClassId cls = kInvalidClassId;
  int64_t lo = 0;
  int64_t hi = 0;
  bool multi_level = false;  ///< Rolls up over >= 2 hierarchy levels.
};

// Measures every structure on `probe`, appends report rows, enforces the
// rows-identical gate, and accumulates the multi-level page totals.
struct PanelState {
  UIndex* uindex;
  CgTree* cgtree;
  HTree* htree;
  NixIndex* nix;
  BufferManager* ub;
  BufferManager* cb;
  BufferManager* hb;
  BufferManager* xb;
  const Schema* schema;
  const ObjectStore* store;
  JsonReport* report;
  uint64_t u_multi_pages = 0;
  uint64_t best_baseline_multi_pages = 0;
};

int RunProbe(PanelState& p, const Probe& probe) {
  const std::vector<Oid> expected =
      RollupScan(*p.store, probe.cls, probe.lo, probe.hi);
  const std::vector<ClassId> leaves = LeafClassesUnder(*p.schema, probe.cls);

  Status status = Status::OK();
  QueryCost uc(p.ub);
  const std::vector<Oid> u_rows =
      ParscanOids(*p.uindex, probe.cls, probe.lo, probe.hi, &status);
  const uint64_t u_pages = uc.PagesRead();
  if (!status.ok()) {
    std::fprintf(stderr, "U-index %s: %s\n", probe.label.c_str(),
                 status.ToString().c_str());
    return 1;
  }

  QueryCost cc(p.cb);
  Result<std::vector<Oid>> cg_rows =
      p.cgtree->Search(Value::Int(probe.lo), Value::Int(probe.hi), leaves);
  const uint64_t cg_pages = cc.PagesRead();

  QueryCost hc(p.hb);
  Result<std::vector<Oid>> h_rows =
      p.htree->Search(Value::Int(probe.lo), Value::Int(probe.hi), leaves);
  const uint64_t h_pages = hc.PagesRead();

  QueryCost xc(p.xb);
  Result<std::vector<Oid>> nix_rows = p.nix->Lookup(
      Value::Int(probe.lo), Value::Int(probe.hi), probe.cls, true);
  const uint64_t nix_pages = xc.PagesRead();

  for (const auto& [name, rows] :
       std::vector<std::pair<const char*, const Result<std::vector<Oid>>*>>{
           {"cgtree", &cg_rows}, {"htree", &h_rows}, {"nix", &nix_rows}}) {
    if (!rows->ok()) {
      std::fprintf(stderr, "%s %s: %s\n", name, probe.label.c_str(),
                   rows->status().ToString().c_str());
      return 1;
    }
  }

  auto sorted = [](std::vector<Oid> v) {
    std::sort(v.begin(), v.end());
    v.erase(std::unique(v.begin(), v.end()), v.end());
    return v;
  };
  for (const auto& [name, rows] :
       std::vector<std::pair<const char*, std::vector<Oid>>>{
           {"uindex", u_rows},
           {"cgtree", sorted(cg_rows.value())},
           {"htree", sorted(h_rows.value())},
           {"nix", sorted(nix_rows.value())}}) {
    if (rows != expected) {
      std::fprintf(stderr,
                   "GATE FAILED: %s rows differ from brute force on %s "
                   "(%zu vs %zu oids)\n",
                   name, probe.label.c_str(), rows.size(), expected.size());
      return 1;
    }
  }

  std::printf("  %-28s %6zu rows  %5zu leaf classes  U=%-5llu CG=%-5llu "
              "H=%-5llu NIX=%llu\n",
              probe.label.c_str(), expected.size(), leaves.size(),
              static_cast<unsigned long long>(u_pages),
              static_cast<unsigned long long>(cg_pages),
              static_cast<unsigned long long>(h_pages),
              static_cast<unsigned long long>(nix_pages));
  p.report->AddPages(probe.label + "/uindex", static_cast<double>(u_pages));
  p.report->AddPages(probe.label + "/cgtree", static_cast<double>(cg_pages));
  p.report->AddPages(probe.label + "/htree", static_cast<double>(h_pages));
  p.report->AddPages(probe.label + "/nix", static_cast<double>(nix_pages));
  if (probe.multi_level) {
    p.u_multi_pages += u_pages;
    p.best_baseline_multi_pages +=
        std::min(std::min(cg_pages, h_pages), nix_pages);
  }
  return 0;
}

int RunCorePanel(const RollupWorkload& w, const RollupOntology& ont,
                 const char* panel, const std::vector<Oid>& facts,
                 JsonReport* report) {
  BTreeOptions options;
  Pager up(1024), cp(1024), hp(1024), xp(1024);
  BufferManager ub(&up), cb(&cp), hb(&hp), xb(&xp);
  const PathSpec spec =
      PathSpec::ClassHierarchy(ont.root, kRollupValueAttr);
  UIndex uindex(&ub, &w.schema, w.coder.get(), spec, options);
  CgTree cgtree(&cb, Value::Kind::kInt, options);
  HTree htree(&hb, Value::Kind::kInt, options);
  NixIndex nix(&xb, &w.schema, spec, options);
  if (Status s = uindex.BuildFrom(*w.store); !s.ok()) {
    std::fprintf(stderr, "uindex build: %s\n", s.ToString().c_str());
    return 1;
  }
  if (Status s = nix.BuildFrom(*w.store); !s.ok()) {
    std::fprintf(stderr, "nix build: %s\n", s.ToString().c_str());
    return 1;
  }
  for (Oid oid : facts) {
    const Object* obj = w.store->Get(oid).value();
    const Value* v = obj->FindAttr(kRollupValueAttr);
    if (Status s = cgtree.Insert(*v, obj->cls, oid); !s.ok()) return 1;
    if (Status s = htree.Insert(*v, obj->cls, oid); !s.ok()) return 1;
  }

  PanelState state{&uindex, &cgtree, &htree, &nix, &ub,    &cb,
                   &hb,     &xb,     &w.schema, w.store.get(), report};

  // Roll-up levels bottom-up; the sampled mid/leaf classes deliberately
  // include Z*-token siblings (index >= 34). Ranges cover exact-match and
  // a ~20% value band.
  const int64_t values = CoreConfig().num_distinct_values;
  const int64_t band = values / 5;
  std::vector<Probe> probes;
  const size_t l1 = ont.level1.size() - 1;  // A Z*-token sibling.
  probes.push_back({std::string(panel) + "/leaf/exact",
                    ont.leaves[l1][0][0], 17 % values, 17 % values, false});
  probes.push_back({std::string(panel) + "/mid/range", ont.level2[l1][0],
                    10, 10 + band, false});
  probes.push_back({std::string(panel) + "/level1/range", ont.level1[l1],
                    10, 10 + band, true});
  probes.push_back({std::string(panel) + "/root/range", ont.root, 10,
                    10 + band, true});
  probes.push_back({std::string(panel) + "/root/exact", ont.root,
                    23 % values, 23 % values, true});
  for (const Probe& probe : probes) {
    if (int rc = RunProbe(state, probe); rc != 0) return rc;
  }

  if (state.u_multi_pages >= state.best_baseline_multi_pages) {
    std::fprintf(stderr,
                 "GATE FAILED: %s multi-level roll-up pages U=%llu >= best "
                 "baseline=%llu\n",
                 panel,
                 static_cast<unsigned long long>(state.u_multi_pages),
                 static_cast<unsigned long long>(
                     state.best_baseline_multi_pages));
    return 1;
  }
  std::printf("  %s multi-level gate: U=%llu pages < best baseline=%llu\n\n",
              panel, static_cast<unsigned long long>(state.u_multi_pages),
              static_cast<unsigned long long>(
                  state.best_baseline_multi_pages));
  return 0;
}

// Façade phase: the same workload through `Database` (memory or file
// backend per UINDEX_BACKEND) under concurrent readers, with SetAttr
// churn and Fig. 4 subclass insertion mid-run.
int RunFacadePhase(JsonReport* report) {
  RollupConfig cfg = RollupConfig::Quick();
  cfg.num_events = QuickMode() ? 8000 : 30000;
  cfg.num_readings = QuickMode() ? 8000 : 30000;
  Database db;
  RollupDbInfo info;
  if (Status s = LoadRollupIntoDatabase(cfg, &db, &info); !s.ok()) {
    std::fprintf(stderr, "facade load: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("facade phase: backend=%s, %u+%u facts\n",
              db.data_path().empty() ? "memory" : "file", cfg.num_events,
              cfg.num_readings);

  auto select_rollup = [&](ClassId cls, int64_t lo,
                           int64_t hi) -> Result<std::vector<Oid>> {
    Database::Selection sel;
    sel.cls = cls;
    sel.with_subclasses = true;
    sel.attr = kRollupValueAttr;
    sel.lo = Value::Int(lo);
    sel.hi = Value::Int(hi);
    Result<Database::SelectResult> r = db.Select(sel);
    if (!r.ok()) return r.status();
    if (!r.value().used_index) {
      return Status::NotSupported("roll-up fell off the index: " +
                                  r.value().index_description);
    }
    return std::move(r).value().oids;
  };

  // Untouched observers: a year and a state no churn or DDL goes near.
  const ClassId quiet_year = info.time.level1[12];
  const ClassId quiet_state = info.geo.level2[0][3];
  Result<std::vector<Oid>> y0 = select_rollup(quiet_year, 0, 1 << 30);
  Result<std::vector<Oid>> s0 = select_rollup(quiet_state, 0, 1 << 30);
  if (!y0.ok() || !s0.ok()) {
    std::fprintf(stderr, "facade baseline failed\n");
    return 1;
  }

  std::atomic<bool> stop{false};
  std::atomic<int> mismatches{0};
  std::atomic<int> reader_errors{0};
  std::vector<LatencyRecorder> recorders(2);
  std::vector<std::thread> readers;
  for (size_t t = 0; t < recorders.size(); ++t) {
    readers.emplace_back([&, t] {
      Random rng(0xBEEF + t);
      while (!stop.load(std::memory_order_relaxed)) {
        // Throttled so the DDL's exclusive latch can get in.
        std::this_thread::sleep_for(std::chrono::microseconds(200));
        const ClassId cls = (t + rng.Next()) % 2 == 0 ? quiet_year
                                                      : quiet_state;
        const auto start = std::chrono::steady_clock::now();
        Result<std::vector<Oid>> rows = select_rollup(cls, 0, 1 << 30);
        recorders[t].Record(
            std::chrono::duration<double, std::micro>(
                std::chrono::steady_clock::now() - start)
                .count());
        if (!rows.ok()) {
          reader_errors.fetch_add(1);
        } else if (rows.value() !=
                   (cls == quiet_year ? y0.value() : s0.value())) {
          mismatches.fetch_add(1);
        }
      }
    });
  }

  // Churn: re-tag fact values (index maintenance through the facade) and
  // insert subclasses under a Z*-token year, populating each.
  Random rng(0x40404);
  const int churn = QuickMode() ? 400 : 2000;
  const ClassId evolved_month = info.time.level2[35][0];
  int rc = 0;
  for (int i = 0; i < churn && rc == 0; ++i) {
    const Oid fact =
        info.readings[rng.Uniform(info.readings.size())];
    if (Status s = db.SetAttr(
            fact, kRollupValueAttr,
            Value::Int(static_cast<int64_t>(
                rng.Uniform(static_cast<uint64_t>(
                    cfg.num_distinct_values)))));
        !s.ok()) {
      std::fprintf(stderr, "churn: %s\n", s.ToString().c_str());
      rc = 1;
    }
    if (i % (churn / 4) == churn / 8) {
      Result<ClassId> fresh = db.CreateSubclass(
          "EvolvedDay" + std::to_string(i), evolved_month);
      if (!fresh.ok()) {
        std::fprintf(stderr, "ddl: %s\n", fresh.status().ToString().c_str());
        rc = 1;
        break;
      }
      for (int k = 0; k < 20; ++k) {
        Result<Oid> oid = db.CreateObject(fresh.value());
        if (!oid.ok() ||
            !db.SetAttr(oid.value(), kRollupValueAttr, Value::Int(k)).ok()) {
          rc = 1;
          break;
        }
      }
    }
  }
  stop.store(true, std::memory_order_relaxed);
  LatencyRecorder all;
  for (size_t t = 0; t < readers.size(); ++t) {
    readers[t].join();
    all.Merge(recorders[t]);
  }
  if (rc != 0) return rc;

  if (mismatches.load() != 0 || reader_errors.load() != 0) {
    std::fprintf(stderr,
                 "GATE FAILED: %d row mismatches, %d reader errors on "
                 "untouched classes during churn+DDL\n",
                 mismatches.load(), reader_errors.load());
    return 1;
  }
  // Quiesced identity: the index agrees with a store brute force after
  // all churn and evolution.
  const std::vector<Oid> final_rows =
      select_rollup(info.time.level1[35], 0, 1 << 30).value();
  if (final_rows != RollupScan(db.store(), info.time.level1[35], 0,
                               1 << 30)) {
    std::fprintf(stderr, "GATE FAILED: evolved-year rows diverge from "
                         "brute force after churn\n");
    return 1;
  }

  std::printf("facade readers: %llu queries, mean %.0fus p50 %.0fus "
              "p99 %.0fus\n",
              static_cast<unsigned long long>(all.Count()), all.MeanUs(),
              all.PercentileUs(50), all.PercentileUs(99));
  report->AddScalar("facade/reader", "count",
                    static_cast<double>(all.Count()));
  report->AddScalar("facade/reader", "mean_us", all.MeanUs());
  report->AddScalar("facade/reader", "p50_us", all.PercentileUs(50));
  report->AddScalar("facade/reader", "p99_us", all.PercentileUs(99));

  const bool no_timing =
      std::getenv("UINDEX_BENCH_NO_TIMING_GATES") != nullptr;
  if (!no_timing && all.PercentileUs(99) > 100000.0) {
    std::fprintf(stderr, "GATE FAILED: reader p99 %.0fus > 100ms\n",
                 all.PercentileUs(99));
    return 1;
  }
  return 0;
}

int Run() {
  const RollupConfig cfg = CoreConfig();
  std::printf("Roll-up workload: %ux%ux%u time, %ux%ux%u geo, %u+%u "
              "facts%s\n\n",
              cfg.years, cfg.months_per_year, cfg.days_per_month,
              cfg.countries, cfg.states_per_country, cfg.cities_per_state,
              cfg.num_events, cfg.num_readings,
              QuickMode() ? " [QUICK MODE]" : "");
  RollupWorkload w;
  if (Status s = GenerateRollup(cfg, &w); !s.ok()) {
    std::fprintf(stderr, "generate: %s\n", s.ToString().c_str());
    return 1;
  }
  JsonReport report("rollup");
  if (int rc = RunCorePanel(w, w.time, "time", w.events, &report); rc != 0) {
    return rc;
  }
  if (int rc = RunCorePanel(w, w.geo, "geo", w.readings, &report); rc != 0) {
    return rc;
  }
  if (int rc = RunFacadePhase(&report); rc != 0) return rc;
  report.Write();
  std::printf("\nall roll-up gates passed\n");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace uindex

int main() { return uindex::bench::Run(); }
