// bench_pager: the disk-backed pager proof-of-equivalence panel.
//
// Builds the §5.1 set experiment three times — in-memory reference, file
// backend with LRU eviction, file backend with CLOCK eviction — on caches
// sized well below the database (live pages >= 10x cache frames, enforced),
// then runs the fig5–8 query series on all three. Two hard gates:
//
//   1. Identity: for every (figure, sets-queried, structure) point the
//      average pages_read AND an FNV-1a hash of every result row must be
//      byte-identical across all three configurations. The paper metric is
//      a property of the index structure, not of the storage backend.
//   2. Pressure: the file configurations must actually evict (a pool that
//      never sheds a frame proves nothing about larger-than-RAM behavior).
//
// Reports per-structure pool hit rates, evictions, and write-backs for
// LRU vs CLOCK, and writes bench_results/BENCH_pager.json.

#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.h"
#include "storage/buffer_pool.h"

namespace uindex {
namespace bench {
namespace {

struct PagerConfig {
  std::string name;
  std::unique_ptr<SetExperiment> exp;
};

int RunBenchPager() {
  std::printf("bench_pager: storage-backend equivalence (fig5-8 series)\n");
  std::printf("objects=%u, page=1024B, reps=%d%s\n\n", ExperimentObjects(),
              ExperimentReps(),
              QuickMode() ? " [QUICK MODE - set UINDEX_BENCH_QUICK=0 for "
                            "paper-scale]"
                          : "");

  SetExperiment::Options base;
  base.workload.num_objects = ExperimentObjects();
  base.workload.num_sets = 40;
  base.workload.num_distinct_keys = base.workload.num_objects;

  // The in-memory reference; its footprint sizes the file caches.
  Result<std::unique_ptr<SetExperiment>> mem = SetExperiment::Create(base);
  if (!mem.ok()) {
    std::fprintf(stderr, "memory experiment setup failed: %s\n",
                 mem.status().ToString().c_str());
    return 1;
  }
  size_t min_live = static_cast<size_t>(-1);
  for (const SetExperiment::Structure& s : mem.value()->structures()) {
    const size_t live = s.buffers->pager()->live_page_count();
    std::printf("  %-10s %zu live pages\n", s.name.c_str(), live);
    if (live < min_live) min_live = live;
  }
  const size_t cache_pages = std::max<size_t>(8, min_live / 16);
  std::printf("  cache: %zu frames (smallest structure is %.1fx larger)\n\n",
              cache_pages,
              static_cast<double>(min_live) / cache_pages);
  if (min_live < 10 * cache_pages) {
    std::fprintf(stderr,
                 "GATE FAIL: smallest structure has %zu live pages, need "
                 ">= 10x the %zu-frame cache\n",
                 min_live, cache_pages);
    return 1;
  }

  std::vector<PagerConfig> configs;
  configs.push_back({"memory", std::move(mem).value()});
  for (const BufferPool::Eviction eviction :
       {BufferPool::Eviction::kLru, BufferPool::Eviction::kClock}) {
    SetExperiment::Options opts = base;
    opts.file_backend = true;
    opts.cache_pages = cache_pages;
    opts.eviction = eviction;
    Result<std::unique_ptr<SetExperiment>> exp = SetExperiment::Create(opts);
    if (!exp.ok()) {
      std::fprintf(stderr, "file experiment setup failed: %s\n",
                   exp.status().ToString().c_str());
      return 1;
    }
    configs.push_back(
        {eviction == BufferPool::Eviction::kLru ? "file-lru" : "file-clock",
         std::move(exp).value()});
  }

  JsonReport report("pager");
  struct Series {
    const char* label;
    double fraction;
  };
  const std::vector<Series> series = {
      {"fig5_exact", -1.0},
      {"fig6_range10", 0.10},
      {"fig7_range2", 0.02},
      {"fig8_small", 0.005},
  };
  const int reps = ExperimentReps();
  int mismatches = 0;

  for (size_t fi = 0; fi < series.size(); ++fi) {
    std::printf("  -- %s --\n", series[fi].label);
    std::printf("    %-6s  %14s  %10s\n", "sets", "U-index", "CG-tree");
    for (const size_t m : SetsQueriedAxis(base.workload.num_sets)) {
      const uint64_t seed = 0xBE9C0000ull + fi * 1000 + m;
      double row_pages[2] = {0, 0};
      for (size_t si = 0; si < 2; ++si) {
        double pages0 = 0;
        uint64_t hash0 = 0;
        for (size_t ci = 0; ci < configs.size(); ++ci) {
          std::vector<SetExperiment::Structure> structures =
              configs[ci].exp->structures();
          uint64_t hash = 0;
          Result<double> pages = configs[ci].exp->Measure(
              structures[si], m, /*near=*/true, series[fi].fraction, reps,
              seed, &hash);
          if (!pages.ok()) {
            std::fprintf(stderr, "measure failed (%s, %s): %s\n",
                         configs[ci].name.c_str(),
                         structures[si].name.c_str(),
                         pages.status().ToString().c_str());
            return 1;
          }
          if (ci == 0) {
            pages0 = pages.value();
            hash0 = hash;
            row_pages[si] = pages0;
            report.AddPages(std::string(series[fi].label) + "/m=" +
                                std::to_string(m) + "/" + structures[si].name,
                            pages0);
          } else if (pages.value() != pages0 || hash != hash0) {
            std::fprintf(stderr,
                         "IDENTITY FAIL %s m=%zu %s on %s: pages %.3f vs "
                         "%.3f, hash %016llx vs %016llx\n",
                         series[fi].label, m, structures[si].name.c_str(),
                         configs[ci].name.c_str(), pages.value(), pages0,
                         static_cast<unsigned long long>(hash),
                         static_cast<unsigned long long>(hash0));
            ++mismatches;
          }
        }
      }
      std::printf("    %-6zu  %14.1f  %10.1f\n", m, row_pages[0],
                  row_pages[1]);
    }
    std::printf("\n");
  }

  // Pool behavior: LRU vs CLOCK over the identical query stream. Hit rates
  // differ (that is the point); the page counts above did not.
  std::printf("  -- buffer pool (cumulative over all series) --\n");
  std::printf("    %-12s %-10s %10s %12s %12s %12s\n", "config",
              "structure", "hit_rate", "misses", "evictions", "writebacks");
  bool evicted = false;
  for (size_t ci = 1; ci < configs.size(); ++ci) {
    for (const SetExperiment::Structure& s :
         configs[ci].exp->structures()) {
      const IoStats& st = s.buffers->stats();
      const uint64_t hits = st.pool_hits.load(std::memory_order_relaxed);
      const uint64_t misses = st.pool_misses.load(std::memory_order_relaxed);
      const uint64_t evictions = st.evictions.load(std::memory_order_relaxed);
      const uint64_t writebacks =
          st.writebacks.load(std::memory_order_relaxed);
      const double rate =
          hits + misses > 0
              ? static_cast<double>(hits) / static_cast<double>(hits + misses)
              : 0.0;
      if (evictions > 0) evicted = true;
      std::printf("    %-12s %-10s %10.4f %12llu %12llu %12llu\n",
                  configs[ci].name.c_str(), s.name.c_str(), rate,
                  static_cast<unsigned long long>(misses),
                  static_cast<unsigned long long>(evictions),
                  static_cast<unsigned long long>(writebacks));
      const std::string row = "pool/" + configs[ci].name + "/" + s.name;
      report.AddScalar(row + "/hit_rate", "pool_hit_rate", rate);
      report.AddScalar(row + "/evictions", "evictions",
                       static_cast<double>(evictions));
      report.AddScalar(row + "/writebacks", "writebacks",
                       static_cast<double>(writebacks));
    }
  }
  std::printf("\n");
  if (!evicted) {
    std::fprintf(stderr,
                 "GATE FAIL: no evictions — the pool never came under "
                 "pressure, equivalence proves nothing\n");
    return 1;
  }
  if (mismatches > 0) {
    std::fprintf(stderr, "bench_pager: %d identity mismatches\n", mismatches);
    return 1;
  }
  std::printf("identity gate: pages_read and row hashes byte-identical "
              "across memory/file-lru/file-clock\n");
  report.Write();
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace uindex

int main() { return uindex::bench::RunBenchPager(); }
