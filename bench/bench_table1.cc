// Reproduces Table 1 of the paper (§5, first experiment): 12,000 records
// over the enhanced Fig. 1 schema, small B-tree nodes (m = 10 records), and
// the query set 1-6b. Reports the number of visited nodes (page reads) per
// query for the parallel retrieval algorithm (Algorithm 1) and, where the
// paper compares, for pure forward scanning.

#include <cstdio>
#include <memory>

#include "bench/bench_common.h"
#include "core/uindex.h"
#include "workload/database_generator.h"

namespace uindex {
namespace {

struct Row {
  const char* id;
  Query query;
  const UIndex* index;
  int paper_parallel;  // Published "number of visited nodes" (-1: n/a).
  int paper_forward;   // Published forward-scanning column (-1: n/a).
};

Query ColorQuery(const std::vector<Value>& colors, ClassSelector selector) {
  Query q = colors.empty()
                ? Query::AnyOf({Value::Str("Black"), Value::Str("Blue"),
                                Value::Str("Green"), Value::Str("Red"),
                                Value::Str("White"), Value::Str("Yellow")})
                : Query::AnyOf(colors);
  q.With(std::move(selector), ValueSlot::Wanted());
  return q;
}

int Run() {
  PaperDatabaseConfig cfg;
  PaperDatabase db;
  if (Status gen = GeneratePaperDatabase(cfg, &db); !gen.ok()) {
    std::fprintf(stderr, "generate: %s\n", gen.ToString().c_str());
    return 1;
  }
  const PaperSchema& ids = db.ids;

  Pager pager(1024);
  BufferManager buffers(&pager);
  BTreeOptions options;
  options.max_entries_per_node = 10;  // The paper's "small node size m=10".

  // Class-hierarchy index on Color over the Vehicle hierarchy.
  UIndex color(&buffers, &ids.schema, db.coder.get(),
               PathSpec::ClassHierarchy(ids.vehicle, "Color",
                                        Value::Kind::kString),
               options);
  Status s = color.BuildFrom(*db.store);
  if (!s.ok()) {
    std::fprintf(stderr, "build color index: %s\n", s.ToString().c_str());
    return 1;
  }

  // Combined class-hierarchy/path index on Age over
  // Vehicle/Company/Employee.
  PathSpec age_spec;
  age_spec.classes = {ids.vehicle, ids.company, ids.employee};
  age_spec.ref_attrs = {"manufactured-by", "president"};
  age_spec.indexed_attr = "Age";
  age_spec.value_kind = Value::Kind::kInt;
  UIndex age(&buffers, &ids.schema, db.coder.get(), age_spec, options);
  s = age.BuildFrom(*db.store);
  if (!s.ok()) {
    std::fprintf(stderr, "build age index: %s\n", s.ToString().c_str());
    return 1;
  }

  const BTree::TreeStats color_stats =
      std::move(color.btree().ComputeStats()).value();
  std::printf(
      "Table 1 reproduction: %u vehicles, m=10 records/node\n"
      "color index: %llu internal nodes, %llu leaves (paper: ~312 internal, "
      "~1250 leaves)\n\n",
      cfg.num_vehicles,
      static_cast<unsigned long long>(color_stats.internal_nodes),
      static_cast<unsigned long long>(color_stats.leaf_nodes));

  const Value red = Value::Str("Red");
  const Value blue = Value::Str("Blue");
  const Value green = Value::Str("Green");

  ClassSelector buses = ClassSelector::Subtree(ids.bus);
  ClassSelector passenger = ClassSelector::Subtree(ids.passenger_bus);
  ClassSelector autos = ClassSelector::Subtree(ids.automobile);
  ClassSelector compact_or_service;
  compact_or_service.include.push_back({ids.compact_automobile, true});
  compact_or_service.include.push_back({ids.service_auto, true});

  // Path queries (5a/5b): companies whose president's age is 50 / > 50.
  Query q5a = Query::ExactValue(Value::Int(50));
  q5a.With(ClassSelector::Exactly(ids.employee))
      .With(ClassSelector::Subtree(ids.company), ValueSlot::Wanted());
  Query q5b = Query::Range(Value::Int(51), Value::Int(70));
  q5b.With(ClassSelector::Exactly(ids.employee))
      .With(ClassSelector::Subtree(ids.company), ValueSlot::Wanted());

  // Combined queries (6a/6b): automobiles / trucks manufactured by
  // AutoCompanies whose president's age is above 50.
  Query q6a = Query::Range(Value::Int(51), Value::Int(70));
  q6a.With(ClassSelector::Exactly(ids.employee))
      .With(ClassSelector::Subtree(ids.auto_company))
      .With(ClassSelector::Subtree(ids.automobile), ValueSlot::Wanted());
  Query q6b = Query::Range(Value::Int(51), Value::Int(70));
  q6b.With(ClassSelector::Exactly(ids.employee))
      .With(ClassSelector::Subtree(ids.auto_company))
      .With(ClassSelector::Subtree(ids.truck), ValueSlot::Wanted());

  const std::vector<Row> rows = {
      {"1", ColorQuery({}, buses), &color, 35, -1},
      {"1a", ColorQuery({red}, buses), &color, 19, -1},
      {"1b", ColorQuery({red, blue}, buses), &color, 24, -1},
      {"1c", ColorQuery({red, blue, green}, buses), &color, 28, -1},
      {"2", ColorQuery({}, passenger), &color, 28, -1},
      {"2a", ColorQuery({red}, passenger), &color, 15, -1},
      {"2b", ColorQuery({red, blue}, passenger), &color, 20, -1},
      {"2c", ColorQuery({red, blue, green}, passenger), &color, 24, -1},
      {"3", ColorQuery({}, autos), &color, 33, 51},
      {"3a", ColorQuery({red}, autos), &color, 22, 41},
      {"3b", ColorQuery({red, blue}, autos), &color, 25, 44},
      {"3c", ColorQuery({red, blue, green}, autos), &color, 30, 47},
      {"4", ColorQuery({}, compact_or_service), &color, 29, 41},
      {"4a", ColorQuery({red}, compact_or_service), &color, 16, 32},
      {"4b", ColorQuery({red, blue}, compact_or_service), &color, 19, 34},
      {"4c", ColorQuery({red, blue, green}, compact_or_service), &color, 24,
       37},
      {"5a", q5a, &age, 10, -1},
      {"5b", q5b, &age, 20, -1},
      {"6a", q6a, &age, 22, -1},
      {"6b", q6b, &age, 21, -1},
  };

  bench::JsonReport report("table1");
  std::printf("%-6s %10s %10s %14s %14s %8s\n", "query", "parallel",
              "forward", "paper-parallel", "paper-forward", "rows");
  for (const Row& row : rows) {
    QueryCost parallel_cost(&buffers);
    bench::StatsTimer parallel_timer(&buffers);
    Result<QueryResult> parallel = row.index->Parscan(row.query);
    if (!parallel.ok()) {
      std::fprintf(stderr, "query %s: %s\n", row.id,
                   parallel.status().ToString().c_str());
      return 1;
    }
    report.Add(std::string("q") + row.id + "/parallel",
               parallel_timer.ElapsedNs(), parallel_timer.Delta());
    const uint64_t parallel_pages = parallel_cost.PagesRead();

    QueryCost forward_cost(&buffers);
    bench::StatsTimer forward_timer(&buffers);
    Result<QueryResult> forward = row.index->ForwardScan(row.query);
    if (!forward.ok()) {
      std::fprintf(stderr, "query %s fwd: %s\n", row.id,
                   forward.status().ToString().c_str());
      return 1;
    }
    report.Add(std::string("q") + row.id + "/forward",
               forward_timer.ElapsedNs(), forward_timer.Delta());
    const uint64_t forward_pages = forward_cost.PagesRead();
    if (forward.value().rows.size() != parallel.value().rows.size()) {
      std::fprintf(stderr, "query %s: algorithms disagree!\n", row.id);
      return 1;
    }

    char paper_parallel[16] = "-";
    if (row.paper_parallel >= 0) {
      std::snprintf(paper_parallel, sizeof(paper_parallel), "%d",
                    row.paper_parallel);
    }
    char paper_forward[16] = "-";
    if (row.paper_forward >= 0) {
      std::snprintf(paper_forward, sizeof(paper_forward), "%d",
                    row.paper_forward);
    }
    std::printf("%-6s %10llu %10llu %14s %14s %8zu\n", row.id,
                static_cast<unsigned long long>(parallel_pages),
                static_cast<unsigned long long>(forward_pages),
                paper_parallel, paper_forward,
                parallel.value().rows.size());
  }
  report.Write();
  std::printf(
      "\nExpected shapes (paper §5): sub-tree queries (2*) cheaper than\n"
      "full-tree (1*); range values add few nodes; parallel ~2x better\n"
      "than forward scanning on 3*/4*; partial-path (5*) cheaper than\n"
      "combined (6*).\n");
  return 0;
}

}  // namespace
}  // namespace uindex

int main() { return uindex::Run(); }
