// Reproduces Figure 5 of the paper: exact-match queries, U-index vs
// CG-tree, over 40-set and 8-set hierarchies with unique / 100 / 1000
// distinct keys. Series: U-index with near (hierarchy-adjacent) and
// non-near queried sets, and the CG-tree. y = pages read, x = sets queried.

#include "bench/bench_common.h"

int main() {
  return uindex::bench::RunFigure(
      "Figure 5: Exact Match Queries (U-index vs CG-tree)", "fig5_exact",
      /*fraction=*/-1.0, /*key_counts=*/{0, 100, 1000});
}
