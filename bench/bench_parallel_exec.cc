// Wall-clock benchmark of the concurrent execution engine (src/exec/):
// serial Parscan vs. ParallelParscan at 1/2/4/8 workers on multi-set,
// multi-prefix queries (the Table-1 query 3/4 shape: a value range crossed
// with many class codes) over a 150 k-object hierarchy.
//
// Two device models are timed:
//   * in-memory pages — the repo's default; parallel speedup here needs
//     real cores, so this column is hardware-dependent;
//   * simulated page-read latency (BufferManager::SetSimulatedReadLatency)
//     — every counted read sleeps 100 us, the paper's "pages read == query
//     time" model made literal. Parallel shards overlap their sleeps the
//     way real descents overlap device reads, so the speedup shows even on
//     a single core.
//
// Every parallel run is checked against the serial scan: byte-identical
// rows and identical page-read totals, or the bench exits non-zero.

#include <chrono>
#include <cstdio>
#include <memory>
#include <vector>

#include "bench/bench_common.h"
#include "core/uindex.h"
#include "exec/parallel_parscan.h"
#include "exec/thread_pool.h"
#include "workload/database_generator.h"

namespace uindex {
namespace {

double MillisSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

struct RunResult {
  double millis = 0;
  uint64_t pages = 0;
  bool matches_serial = true;
  IoStats delta;  // Counter delta over all reps.
};

int Run() {
  const uint32_t num_objects = bench::ExperimentObjects();
  const uint32_t num_sets = 40;
  const uint64_t num_keys = 1000;
  const int reps = bench::QuickMode() ? 3 : 5;
  const uint32_t sim_latency_us = 100;

  SetHierarchy hier = std::move(BuildSetHierarchy(num_sets)).value();
  Pager pager(1024);
  BufferManager buffers(&pager);
  PathSpec spec =
      PathSpec::ClassHierarchy(hier.root, "key", Value::Kind::kInt);
  UIndex index(&buffers, &hier.schema, hier.coder.get(), spec);

  SetWorkloadConfig cfg;
  cfg.num_objects = num_objects;
  cfg.num_sets = num_sets;
  cfg.num_distinct_keys = num_keys;
  for (const Posting& p : GeneratePostings(cfg)) {
    UIndex::Entry entry;
    entry.path = {{hier.sets[p.set_index], p.oid}};
    entry.key =
        index.key_encoder().EncodeEntry(Value::Int(p.key), entry.path);
    if (Status s = index.InsertEntry(entry); !s.ok()) {
      std::fprintf(stderr, "build: %s\n", s.ToString().c_str());
      return 1;
    }
  }

  // Query 3/4 shape: a 5% key range x every other set (20 class codes) —
  // the compiled plan fans out into one partial-key interval per
  // (value, class) pair, the unit the shards divide.
  Query query = Query::Range(Value::Int(0), Value::Int(49));
  ClassSelector sel;
  for (size_t i = 0; i < num_sets; i += 2) {
    sel.include.push_back({hier.sets[i], false});
  }
  query.With(sel, ValueSlot::Wanted());

  const CompiledQuery plan = std::move(index.CompileParscan(query)).value();

  QueryCost serial_cost(&buffers);
  Result<QueryResult> serial = index.Parscan(query);
  if (!serial.ok()) {
    std::fprintf(stderr, "serial: %s\n", serial.status().ToString().c_str());
    return 1;
  }
  const uint64_t serial_pages = serial_cost.PagesRead();

  std::printf(
      "parallel-exec bench: %u objects, %u sets, %llu distinct keys%s\n"
      "query: keys [0,50) x %zu sets -> %zu partial-key intervals, "
      "%zu rows, %llu pages (serial)\n\n",
      num_objects, num_sets, static_cast<unsigned long long>(num_keys),
      bench::QuickMode() ? " [QUICK MODE]" : "",
      sel.include.size(), plan.intervals().size(),
      serial.value().rows.size(),
      static_cast<unsigned long long>(serial_pages));

  const std::vector<size_t> thread_counts = {1, 2, 4, 8};
  bool all_ok = true;
  bench::JsonReport report("parallel_exec");

  auto measure = [&](size_t threads) {
    RunResult out;
    exec::ThreadPool pool(threads);
    bench::StatsTimer timer(&buffers);
    const auto start = std::chrono::steady_clock::now();
    for (int r = 0; r < reps; ++r) {
      QueryCost cost(&buffers);
      Result<QueryResult> res = exec::ParallelParscan(index, query, &pool);
      if (!res.ok() || res.value().rows != serial.value().rows) {
        out.matches_serial = false;
      }
      out.pages = cost.PagesRead();
      if (out.pages != serial_pages) out.matches_serial = false;
    }
    out.millis = MillisSince(start) / reps;
    out.delta = timer.Delta();
    return out;
  };

  for (const bool simulated : {false, true}) {
    buffers.SetSimulatedReadLatency(simulated ? sim_latency_us : 0);
    std::printf(simulated
                    ? "model B: simulated %u us page-read latency "
                      "(I/O-bound, core-count independent)\n"
                    : "model A: in-memory pages (CPU-bound, needs cores)\n",
                sim_latency_us);
    std::printf("  %-8s %10s %9s %7s %6s\n", "threads", "wall(ms)",
                "speedup", "pages", "exact");
    double base_ms = 0;
    for (const size_t threads : thread_counts) {
      const RunResult r = measure(threads);
      if (threads == 1) base_ms = r.millis;
      all_ok = all_ok && r.matches_serial;
      std::printf("  %-8zu %10.2f %8.2fx %7llu %6s\n", threads, r.millis,
                  base_ms > 0 ? base_ms / r.millis : 0.0,
                  static_cast<unsigned long long>(r.pages),
                  r.matches_serial ? "yes" : "NO");
      report.Add(std::string("model") + (simulated ? "B" : "A") +
                     "/threads=" + std::to_string(threads),
                 r.millis * 1e6, r.delta);
    }
    std::printf("\n");
  }
  buffers.SetSimulatedReadLatency(0);

  // Decoded-node cache ablation: the same 4-worker query with the cache on
  // vs off. Rows and page reads must be identical — the cache only skips
  // re-decoding, never re-reading — and Node::Parse calls must drop >= 3x.
  NodeCache* const cache = index.btree().node_cache();
  if (cache != nullptr) {
    exec::ThreadPool pool(4);
    auto run_counted = [&](bool enabled, double* ns, IoStats* delta) {
      cache->set_enabled(enabled);
      bench::StatsTimer timer(&buffers);
      for (int r = 0; r < reps; ++r) {
        buffers.BeginQuery();  // Fresh read epoch: count this rep's pages.
        Result<QueryResult> res = exec::ParallelParscan(index, query, &pool);
        if (!res.ok() || res.value().rows != serial.value().rows) {
          return false;
        }
      }
      *ns = timer.ElapsedNs();
      *delta = timer.Delta();
      return true;
    };
    double on_ns = 0, off_ns = 0;
    IoStats on, off;
    const bool rows_ok = run_counted(true, &on_ns, &on) &&
                         run_counted(false, &off_ns, &off);
    cache->set_enabled(true);
    if (!rows_ok) {
      std::fprintf(stderr,
                   "FAIL: cache-ablation run diverged from the serial scan\n");
      return 1;
    }
    report.Add("cache=on/threads=4", on_ns, on);
    report.Add("cache=off/threads=4", off_ns, off);
    const uint64_t parses_on =
        on.nodes_parsed.load(std::memory_order_relaxed);
    const uint64_t parses_off =
        off.nodes_parsed.load(std::memory_order_relaxed);
    const uint64_t pages_on = on.pages_read.load(std::memory_order_relaxed);
    const uint64_t pages_off = off.pages_read.load(std::memory_order_relaxed);
    std::printf(
        "decoded-node cache, 4 workers x %d reps: parses on=%llu off=%llu "
        "(%.1fx fewer), pages on=%llu off=%llu\n\n",
        reps, static_cast<unsigned long long>(parses_on),
        static_cast<unsigned long long>(parses_off),
        static_cast<double>(parses_off) /
            static_cast<double>(parses_on > 0 ? parses_on : 1),
        static_cast<unsigned long long>(pages_on),
        static_cast<unsigned long long>(pages_off));
    if (pages_on != pages_off) {
      std::fprintf(stderr,
                   "FAIL: page reads differ with the node cache on/off\n");
      return 1;
    }
    if (parses_off < 3 * (parses_on > 0 ? parses_on : 1)) {
      std::fprintf(stderr, "FAIL: node cache saved < 3x Node::Parse calls\n");
      return 1;
    }
  }

  report.Write();

  if (!all_ok) {
    std::fprintf(stderr,
                 "FAIL: a parallel run diverged from the serial scan\n");
    return 1;
  }
  std::printf(
      "Expected shape: model B >= 2x at 8 threads on any hardware (sleeping\n"
      "shards overlap); model A approaches the machine's core count.\n");
  return 0;
}

}  // namespace
}  // namespace uindex

int main() { return uindex::Run(); }
