// Multi-client load benchmark of the wire-protocol server (src/net/):
// the fig5 exact-match workload (class-hierarchy index on an int key,
// point queries over the full hierarchy) executed two ways —
//
//   * in-process — one serial db::Session, the repo's baseline path;
//   * remote — a net::Server in this process, 8 blocking net::Client
//     threads driving the same query list over loopback TCP through
//     framing, admission control, and the shared exec::ThreadPool.
//
// Correctness is asserted, not sampled: every remote query must return a
// byte-identical oid vector to its in-process twin, and each phase runs
// in a fresh buffer-manager epoch so the phase-aggregate pages_read
// (first touch per distinct page) must match exactly — the paper's cost
// metric survives the socket. The bench exits non-zero on any mismatch
// or if the remote phase sustains < 10k QPS.
//
// Reports QPS and p50/p99 per-query latency to stdout and to
// $UINDEX_BENCH_OUT_DIR/net.json (default bench_results/net.json).

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "db/database.h"
#include "db/session.h"
#include "net/client.h"
#include "net/server.h"
#include "util/random.h"

namespace uindex {
namespace {

constexpr int kClients = 8;
constexpr uint32_t kSubclasses = 8;
constexpr int64_t kKeys = 1000;

double MillisSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

struct PhaseResult {
  std::vector<std::vector<Oid>> oids;  // Per query, in query-list order.
  uint64_t pages_read = 0;             // Phase-aggregate (fresh epoch).
  double wall_ms = 0;
};

int Run() {
  const uint32_t num_objects = bench::QuickMode() ? 20000u : 100000u;
  const int num_queries = bench::QuickMode() ? 4000 : 16000;

  // Fig5-shaped database behind the façade: one root, kSubclasses leaves,
  // a class-hierarchy index on an int key, uniform key assignment.
  // Prefetch threads are off so background readahead cannot perturb the
  // per-epoch page counts the two phases are compared on.
  DatabaseOptions options;
  options.prefetch_threads = 0;
  Database db(options);
  const ClassId root = db.CreateClass("Item").value();
  std::vector<ClassId> subs;
  for (uint32_t i = 0; i < kSubclasses; ++i) {
    subs.push_back(
        db.CreateSubclass("Item" + std::to_string(i), root).value());
  }
  if (Result<size_t> idx = db.CreateIndex(
          PathSpec::ClassHierarchy(root, "Key", Value::Kind::kInt));
      !idx.ok()) {
    std::fprintf(stderr, "index: %s\n", idx.status().ToString().c_str());
    return 1;
  }
  Random rng(0xF165);
  for (uint32_t i = 0; i < num_objects; ++i) {
    Result<Oid> oid = db.CreateObject(subs[i % subs.size()]);
    if (!oid.ok() ||
        !db.SetAttr(oid.value(), "Key",
                    Value::Int(static_cast<int64_t>(rng.Uniform(kKeys))))
             .ok()) {
      std::fprintf(stderr, "load failed at object %u\n", i);
      return 1;
    }
  }

  // One shared query list; both phases execute it in full.
  std::vector<std::string> queries;
  queries.reserve(num_queries);
  Random qrng(0xBEEF);
  for (int q = 0; q < num_queries; ++q) {
    queries.push_back("SELECT i FROM Item* i WHERE i.Key = " +
                      std::to_string(qrng.Uniform(kKeys)));
  }

  // Phase 1: in-process serial baseline.
  PhaseResult local;
  local.oids.resize(queries.size());
  {
    db.buffers().BeginQuery();  // Fresh epoch: count each page once.
    const IoStats base = db.buffers().stats();
    Session session(&db);
    const auto start = std::chrono::steady_clock::now();
    for (size_t q = 0; q < queries.size(); ++q) {
      Result<Database::OqlResult> r = session.ExecuteOql(queries[q]);
      if (!r.ok()) {
        std::fprintf(stderr, "in-process query %zu: %s\n", q,
                     r.status().ToString().c_str());
        return 1;
      }
      local.oids[q] = std::move(r.value().oids);
    }
    local.wall_ms = MillisSince(start);
    local.pages_read = (db.buffers().stats() - base)
                           .pages_read.load(std::memory_order_relaxed);
  }

  // Phase 2: the same list through the server, kClients blocking clients
  // on contiguous slices. max_queued covers all clients so nothing sheds
  // Busy (a shed would break the identical-results contract).
  net::ServerOptions server_options;
  server_options.worker_threads = kClients;
  server_options.max_queued_queries = kClients * 2;
  Result<std::unique_ptr<net::Server>> started =
      net::Server::Start(&db, server_options);
  if (!started.ok()) {
    std::fprintf(stderr, "server: %s\n", started.status().ToString().c_str());
    return 1;
  }
  std::unique_ptr<net::Server> server = std::move(started).value();

  PhaseResult remote;
  remote.oids.resize(queries.size());
  std::vector<bench::LatencyRecorder> latencies(kClients);
  std::vector<std::thread> clients;
  std::atomic<int> failures{0};
  db.buffers().BeginQuery();
  const IoStats remote_base = db.buffers().stats();
  const auto remote_start = std::chrono::steady_clock::now();
  for (int t = 0; t < kClients; ++t) {
    clients.emplace_back([&, t] {
      Result<std::unique_ptr<net::Client>> client =
          net::Client::Connect("127.0.0.1", server->port());
      if (!client.ok()) {
        std::fprintf(stderr, "client %d: %s\n", t,
                     client.status().ToString().c_str());
        failures.fetch_add(1);
        return;
      }
      const size_t per = (queries.size() + kClients - 1) / kClients;
      const size_t lo = t * per;
      const size_t hi = std::min(queries.size(), lo + per);
      for (size_t q = lo; q < hi; ++q) {
        const auto sent = std::chrono::steady_clock::now();
        Result<net::Client::QueryResult> r =
            client.value()->Query(queries[q]);
        if (!r.ok()) {
          std::fprintf(stderr, "remote query %zu: %s\n", q,
                       r.status().ToString().c_str());
          failures.fetch_add(1);
          return;
        }
        latencies[t].Record(MillisSince(sent) * 1000.0);
        remote.oids[q] = std::move(r.value().oids);
      }
    });
  }
  for (std::thread& t : clients) t.join();
  remote.wall_ms = MillisSince(remote_start);
  remote.pages_read = (db.buffers().stats() - remote_base)
                          .pages_read.load(std::memory_order_relaxed);
  server->Shutdown();
  if (failures.load() != 0) return 1;

  // Byte-identical rows, query by query.
  for (size_t q = 0; q < queries.size(); ++q) {
    if (remote.oids[q] != local.oids[q]) {
      std::fprintf(stderr, "FAIL: query %zu rows differ (%zu vs %zu oids)\n",
                   q, remote.oids[q].size(), local.oids[q].size());
      return 1;
    }
  }
  // Identical phase-aggregate page reads: each phase started a fresh
  // epoch and ran the same queries, so the distinct-page first-touch
  // count must agree no matter how the remote phase interleaved.
  if (remote.pages_read != local.pages_read) {
    std::fprintf(stderr,
                 "FAIL: aggregate pages_read differ: in-process %llu, "
                 "remote %llu\n",
                 static_cast<unsigned long long>(local.pages_read),
                 static_cast<unsigned long long>(remote.pages_read));
    return 1;
  }

  bench::LatencyRecorder merged;
  for (const bench::LatencyRecorder& l : latencies) merged.Merge(l);
  const double qps = queries.size() / (remote.wall_ms / 1000.0);
  const double p50 = merged.PercentileUs(50);
  const double p99 = merged.PercentileUs(99);
  const double local_qps = queries.size() / (local.wall_ms / 1000.0);

  std::printf("bench_net: fig5 exact-match, %u objects, %d queries, %d "
              "clients%s\n",
              num_objects, num_queries, kClients,
              bench::QuickMode() ? " (quick mode)" : "");
  std::printf("  %-22s %10s %12s %10s %10s\n", "phase", "wall ms", "QPS",
              "p50 us", "p99 us");
  std::printf("  %-22s %10.1f %12.0f %10s %10s\n", "in-process serial",
              local.wall_ms, local_qps, "-", "-");
  std::printf("  %-22s %10.1f %12.0f %10.1f %10.1f\n", "remote 8 clients",
              remote.wall_ms, qps, p50, p99);
  std::printf("  rows byte-identical: yes; aggregate pages_read: %llu == "
              "%llu\n",
              static_cast<unsigned long long>(local.pages_read),
              static_cast<unsigned long long>(remote.pages_read));

  std::string json;
  bench::AppendF(&json,
                 "{\n  \"bench\": \"net\",\n  \"quick_mode\": %s,\n"
                 "  \"objects\": %u,\n  \"queries\": %d,\n"
                 "  \"clients\": %d,\n"
                 "  \"in_process\": {\"wall_ms\": %.1f, \"qps\": %.0f, "
                 "\"pages_read\": %llu},\n"
                 "  \"remote\": {\"wall_ms\": %.1f, \"qps\": %.0f, "
                 "\"pages_read\": %llu, \"latency\": ",
                 bench::QuickMode() ? "true" : "false", num_objects,
                 num_queries, kClients, local.wall_ms, local_qps,
                 static_cast<unsigned long long>(local.pages_read),
                 remote.wall_ms, qps,
                 static_cast<unsigned long long>(remote.pages_read));
  merged.AppendJson(&json);
  bench::AppendF(&json, "},\n  \"rows_identical\": true\n}\n");
  bench::WriteArtifact("net", json);

  if (qps < 10000.0) {
    std::fprintf(stderr, "FAIL: remote QPS %.0f below the 10k floor\n", qps);
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace uindex

int main() { return uindex::Run(); }
