// Open-loop SLO benchmark of the HTTP/JSON gateway (src/http/): a mixed
// 90/10 read/write workload offered at a fixed schedule — senders fire at
// their op's scheduled instant regardless of how previous ops are doing,
// and every latency is measured from the *scheduled* arrival, not the
// send. A closed-loop driver (send, wait, send) silently absorbs server
// stalls into the inter-arrival gap and under-reports tail latency by
// exactly the amount that matters; the open-loop schedule keeps that
// coordinated-omission error out of the percentiles (see EXPERIMENTS.md).
//
// Correctness is asserted before load: every distinct read query in the
// schedule is executed once over HTTP and once through an in-process
// db::Session, and the oid rows must be byte-identical — the JSON hop
// must not change the answer.
//
// Gates (waived under UINDEX_BENCH_NO_TIMING_GATES, e.g. sanitizer legs):
//   * read p99 < 5 ms at the offered rate (10k QPS full, 2k quick);
//   * achieved throughput >= 90% of offered.
// The rows-identical gate always holds.
//
// Reports per-class p50/p99/p999 to stdout and to
// $UINDEX_BENCH_OUT_DIR/slo.json (default bench_results/slo.json; CI
// uploads it as BENCH_slo.json).

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "db/database.h"
#include "db/session.h"
#include "http/backend.h"
#include "http/gateway.h"
#include "http/http_client.h"
#include "net/server.h"
#include "util/json.h"
#include "util/random.h"

namespace uindex {
namespace {

constexpr int kSenders = 16;
constexpr uint32_t kSubclasses = 8;
constexpr int64_t kKeys = 1000;
constexpr double kReadFraction = 0.9;  // 9 reads : 1 write.

struct Op {
  bool is_read = false;
  std::string body;   // JSON request body for /v1/query or /v1/dml.
  std::string query;  // OQL text (reads only; keys the identity check).
};

/// Parses the gateway's /v1/query response and extracts the oid rows.
Result<std::vector<Oid>> OidsOf(const std::string& body) {
  Result<json::Value> doc = json::Parse(body);
  if (!doc.ok()) return doc.status();
  const json::Value* oids = doc.value().Find("oids");
  if (oids == nullptr || !oids->is_array()) {
    return Status::Corruption("response has no oids array");
  }
  std::vector<Oid> out;
  for (const json::Value& v : oids->items()) {
    if (!v.is_int()) return Status::Corruption("non-integer oid");
    out.push_back(static_cast<Oid>(v.AsInt()));
  }
  return out;
}

int Run() {
  // The subject here is gateway tail latency, not index scale (the figure
  // benches own that axis), so the dataset stays small in both modes and
  // the offered rate stays at the full 10k QPS even in quick mode — the
  // SLO gate means the same thing on every leg that enforces it.
  const uint32_t num_objects = 20000u;
  const double offered_qps = 10000.0;
  const double duration_s = bench::QuickMode() ? 1.0 : 5.0;
  const size_t num_ops = static_cast<size_t>(offered_qps * duration_s);

  // Fig5-shaped in-memory database: one root, kSubclasses leaves, a
  // class-hierarchy index on an int key.
  DatabaseOptions options;
  options.prefetch_threads = 0;
  Database db(options);
  const ClassId root = db.CreateClass("Item").value();
  std::vector<ClassId> subs;
  for (uint32_t i = 0; i < kSubclasses; ++i) {
    subs.push_back(
        db.CreateSubclass("Item" + std::to_string(i), root).value());
  }
  if (Result<size_t> idx = db.CreateIndex(
          PathSpec::ClassHierarchy(root, "Key", Value::Kind::kInt));
      !idx.ok()) {
    std::fprintf(stderr, "index: %s\n", idx.status().ToString().c_str());
    return 1;
  }
  Random rng(0x510);
  std::vector<Oid> write_targets;
  for (uint32_t i = 0; i < num_objects; ++i) {
    Result<Oid> oid = db.CreateObject(subs[i % subs.size()]);
    if (!oid.ok() ||
        !db.SetAttr(oid.value(), "Key",
                    Value::Int(static_cast<int64_t>(rng.Uniform(kKeys))))
             .ok()) {
      std::fprintf(stderr, "load failed at object %u\n", i);
      return 1;
    }
    if (i % 97 == 0) write_targets.push_back(oid.value());
  }

  // The op schedule: op i fires at start + i*period; 1 op in 10 is a DML
  // touching a non-indexed attribute (so the read answers stay fixed and
  // the identity check below covers the whole run, not just t=0).
  std::vector<Op> ops(num_ops);
  Random orng(0x0510);
  for (size_t i = 0; i < num_ops; ++i) {
    Op& op = ops[i];
    op.is_read = orng.Uniform(10) < static_cast<uint64_t>(kReadFraction * 10);
    if (op.is_read) {
      op.query = "SELECT i FROM Item* i WHERE i.Key = " +
                 std::to_string(orng.Uniform(kKeys));
      op.body = "{\"oql\": \"" + op.query + "\"}";
    } else {
      const Oid target = write_targets[orng.Uniform(write_targets.size())];
      op.body = "{\"op\": \"set_attr\", \"oid\": " + std::to_string(target) +
                ", \"attr\": \"Pad\", \"value\": " +
                std::to_string(orng.Uniform(1 << 16)) + "}";
    }
  }

  // Binary server + HTTP gateway on top of it — the exact production
  // stack, admission budget shared between the two protocols.
  net::ServerOptions server_options;
  server_options.worker_threads = 8;
  server_options.max_queued_queries = 256;
  Result<std::unique_ptr<net::Server>> started =
      net::Server::Start(&db, server_options);
  if (!started.ok()) {
    std::fprintf(stderr, "server: %s\n", started.status().ToString().c_str());
    return 1;
  }
  std::unique_ptr<net::Server> server = std::move(started).value();
  http::ServerBackend backend(server.get());
  Result<std::unique_ptr<http::HttpGateway>> gw =
      http::HttpGateway::Start(&backend, http::GatewayOptions{});
  if (!gw.ok()) {
    std::fprintf(stderr, "gateway: %s\n", gw.status().ToString().c_str());
    return 1;
  }
  std::unique_ptr<http::HttpGateway> gateway = std::move(gw).value();
  const uint16_t http_port = gateway->port();

  // --- Identity pre-phase: every distinct read query, HTTP vs local. ----
  size_t distinct_reads = 0;
  {
    Result<std::unique_ptr<http::HttpClient>> client =
        http::HttpClient::Connect("127.0.0.1", http_port);
    if (!client.ok()) {
      std::fprintf(stderr, "connect: %s\n",
                   client.status().ToString().c_str());
      return 1;
    }
    Session session(&db);
    std::map<std::string, bool> checked;
    for (const Op& op : ops) {
      if (!op.is_read || checked.count(op.query)) continue;
      checked[op.query] = true;
      Result<http::HttpClient::Response> response =
          client.value()->Post("/v1/query", op.body);
      if (!response.ok() || response.value().status != 200) {
        std::fprintf(stderr, "identity query over HTTP failed: %s\n",
                     response.ok()
                         ? response.value().body.c_str()
                         : response.status().ToString().c_str());
        return 1;
      }
      Result<std::vector<Oid>> remote = OidsOf(response.value().body);
      Result<Database::OqlResult> local = session.ExecuteOql(op.query);
      if (!remote.ok() || !local.ok() ||
          remote.value() != local.value().oids) {
        std::fprintf(stderr, "FAIL: rows differ over HTTP for: %s\n",
                     op.query.c_str());
        return 1;
      }
    }
    distinct_reads = checked.size();
  }

  // --- Open-loop run. ---------------------------------------------------
  const auto period = std::chrono::nanoseconds(
      static_cast<int64_t>(1e9 / offered_qps));
  std::vector<bench::LatencyRecorder> read_lat(kSenders);
  std::vector<bench::LatencyRecorder> write_lat(kSenders);
  std::atomic<uint64_t> errors{0};
  std::atomic<uint64_t> sheds{0};
  std::vector<std::thread> senders;
  const auto start = std::chrono::steady_clock::now() +
                     std::chrono::milliseconds(50);  // Let threads stage.
  for (int t = 0; t < kSenders; ++t) {
    senders.emplace_back([&, t] {
      Result<std::unique_ptr<http::HttpClient>> client =
          http::HttpClient::Connect("127.0.0.1", http_port);
      if (!client.ok()) {
        errors.fetch_add(1);
        return;
      }
      for (size_t i = t; i < num_ops; i += kSenders) {
        const auto scheduled = start + period * static_cast<int64_t>(i);
        std::this_thread::sleep_until(scheduled);
        Result<http::HttpClient::Response> response = client.value()->Post(
            ops[i].is_read ? "/v1/query" : "/v1/dml", ops[i].body);
        const double us = std::chrono::duration<double, std::micro>(
                              std::chrono::steady_clock::now() - scheduled)
                              .count();
        if (!response.ok()) {
          errors.fetch_add(1);
          return;  // Transport failure poisons this sender.
        }
        if (response.value().status == 429) {
          sheds.fetch_add(1);  // Shed is a served (fast-rejected) op.
        } else if (response.value().status != 200) {
          errors.fetch_add(1);
          continue;
        }
        (ops[i].is_read ? read_lat : write_lat)[t].Record(us);
      }
    });
  }
  for (std::thread& t : senders) t.join();
  const double wall_s = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - start)
                            .count();
  gateway->Shutdown();
  server->Shutdown();
  if (errors.load() != 0) {
    std::fprintf(stderr, "FAIL: %llu request errors\n",
                 static_cast<unsigned long long>(errors.load()));
    return 1;
  }

  bench::LatencyRecorder reads, writes;
  for (const bench::LatencyRecorder& l : read_lat) reads.Merge(l);
  for (const bench::LatencyRecorder& l : write_lat) writes.Merge(l);
  const uint64_t served = reads.Count() + writes.Count();
  const double achieved_qps = served / wall_s;

  std::printf("bench_slo: open-loop %.0f QPS offered for %.1fs, %d senders, "
              "%zu ops (%zu distinct reads checked byte-identical)%s\n",
              offered_qps, duration_s, kSenders, num_ops, distinct_reads,
              bench::QuickMode() ? " (quick mode)" : "");
  std::printf("  %-10s %10s %10s %10s %10s %10s\n", "class", "ops",
              "p50 us", "p99 us", "p999 us", "max us");
  std::printf("  %-10s %10llu %10.0f %10.0f %10.0f %10.0f\n", "read",
              static_cast<unsigned long long>(reads.Count()),
              reads.PercentileUs(50), reads.PercentileUs(99),
              reads.PercentileUs(99.9), reads.MaxUs());
  std::printf("  %-10s %10llu %10.0f %10.0f %10.0f %10.0f\n", "write",
              static_cast<unsigned long long>(writes.Count()),
              writes.PercentileUs(50), writes.PercentileUs(99),
              writes.PercentileUs(99.9), writes.MaxUs());
  std::printf("  achieved %.0f QPS (%.0f%% of offered), %llu admission "
              "sheds\n",
              achieved_qps, 100.0 * achieved_qps / offered_qps,
              static_cast<unsigned long long>(sheds.load()));

  std::string json;
  bench::AppendF(&json,
                 "{\n  \"bench\": \"slo\",\n  \"quick_mode\": %s,\n"
                 "  \"offered_qps\": %.0f,\n  \"duration_s\": %.1f,\n"
                 "  \"senders\": %d,\n  \"ops\": %zu,\n"
                 "  \"achieved_qps\": %.0f,\n  \"admission_sheds\": %llu,\n"
                 "  \"rows_identical\": true,\n"
                 "  \"distinct_reads_checked\": %zu,\n  \"read_latency\": ",
                 bench::QuickMode() ? "true" : "false", offered_qps,
                 duration_s, kSenders, num_ops, achieved_qps,
                 static_cast<unsigned long long>(sheds.load()),
                 distinct_reads);
  reads.AppendJson(&json);
  bench::AppendF(&json, ",\n  \"write_latency\": ");
  writes.AppendJson(&json);
  bench::AppendF(&json, "\n}\n");
  bench::WriteArtifact("slo", json);

  // UINDEX_BENCH_NO_TIMING_GATES waives the latency/throughput gates
  // (sanitizer legs); the rows-identical gate above always holds.
  const char* no_timing = std::getenv("UINDEX_BENCH_NO_TIMING_GATES");
  const bool timing_gates = no_timing == nullptr || no_timing[0] == '\0' ||
                            std::string_view(no_timing) == "0";
  int rc = 0;
  if (reads.PercentileUs(99) >= 5000.0) {
    std::fprintf(stderr, "%s: read p99 %.0f us breaches the 5 ms SLO\n",
                 timing_gates ? "FAIL" : "note (gate waived)",
                 reads.PercentileUs(99));
    if (timing_gates) rc = 1;
  }
  if (achieved_qps < 0.9 * offered_qps) {
    std::fprintf(stderr,
                 "%s: achieved %.0f QPS below 90%% of the %.0f offered\n",
                 timing_gates ? "FAIL" : "note (gate waived)", achieved_qps,
                 offered_qps);
    if (timing_gates) rc = 1;
  }
  return rc;
}

}  // namespace
}  // namespace uindex

int main() { return uindex::Run(); }
