# Empty dependencies file for bench_ablation_pathindexes.
# This may be replaced when dependencies are built.
