file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_pathindexes.dir/bench_ablation_pathindexes.cc.o"
  "CMakeFiles/bench_ablation_pathindexes.dir/bench_ablation_pathindexes.cc.o.d"
  "bench_ablation_pathindexes"
  "bench_ablation_pathindexes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_pathindexes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
