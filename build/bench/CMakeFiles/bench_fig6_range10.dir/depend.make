# Empty dependencies file for bench_fig6_range10.
# This may be replaced when dependencies are built.
