file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_range10.dir/bench_fig6_range10.cc.o"
  "CMakeFiles/bench_fig6_range10.dir/bench_fig6_range10.cc.o.d"
  "bench_fig6_range10"
  "bench_fig6_range10.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_range10.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
