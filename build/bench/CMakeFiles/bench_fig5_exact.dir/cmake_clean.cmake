file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_exact.dir/bench_fig5_exact.cc.o"
  "CMakeFiles/bench_fig5_exact.dir/bench_fig5_exact.cc.o.d"
  "bench_fig5_exact"
  "bench_fig5_exact.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_exact.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
