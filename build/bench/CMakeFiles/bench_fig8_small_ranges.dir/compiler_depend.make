# Empty compiler generated dependencies file for bench_fig8_small_ranges.
# This may be replaced when dependencies are built.
