file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_small_ranges.dir/bench_fig8_small_ranges.cc.o"
  "CMakeFiles/bench_fig8_small_ranges.dir/bench_fig8_small_ranges.cc.o.d"
  "bench_fig8_small_ranges"
  "bench_fig8_small_ranges.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_small_ranges.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
