# Empty compiler generated dependencies file for bench_fig7_range2.
# This may be replaced when dependencies are built.
