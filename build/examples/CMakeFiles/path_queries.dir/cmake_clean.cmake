file(REMOVE_RECURSE
  "CMakeFiles/path_queries.dir/path_queries.cpp.o"
  "CMakeFiles/path_queries.dir/path_queries.cpp.o.d"
  "path_queries"
  "path_queries.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/path_queries.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
