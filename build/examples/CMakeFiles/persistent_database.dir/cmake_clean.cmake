file(REMOVE_RECURSE
  "CMakeFiles/persistent_database.dir/persistent_database.cpp.o"
  "CMakeFiles/persistent_database.dir/persistent_database.cpp.o.d"
  "persistent_database"
  "persistent_database.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/persistent_database.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
