# Empty dependencies file for persistent_database.
# This may be replaced when dependencies are built.
