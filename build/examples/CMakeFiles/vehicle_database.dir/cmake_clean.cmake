file(REMOVE_RECURSE
  "CMakeFiles/vehicle_database.dir/vehicle_database.cpp.o"
  "CMakeFiles/vehicle_database.dir/vehicle_database.cpp.o.d"
  "vehicle_database"
  "vehicle_database.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vehicle_database.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
