# Empty compiler generated dependencies file for vehicle_database.
# This may be replaced when dependencies are built.
