file(REMOVE_RECURSE
  "CMakeFiles/uindex_shell.dir/uindex_shell.cc.o"
  "CMakeFiles/uindex_shell.dir/uindex_shell.cc.o.d"
  "uindex_shell"
  "uindex_shell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uindex_shell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
