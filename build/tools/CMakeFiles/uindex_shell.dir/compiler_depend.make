# Empty compiler generated dependencies file for uindex_shell.
# This may be replaced when dependencies are built.
