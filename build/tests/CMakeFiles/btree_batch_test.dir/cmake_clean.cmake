file(REMOVE_RECURSE
  "CMakeFiles/btree_batch_test.dir/btree_batch_test.cc.o"
  "CMakeFiles/btree_batch_test.dir/btree_batch_test.cc.o.d"
  "btree_batch_test"
  "btree_batch_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/btree_batch_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
