# Empty dependencies file for database_persistence_test.
# This may be replaced when dependencies are built.
