file(REMOVE_RECURSE
  "CMakeFiles/database_persistence_test.dir/database_persistence_test.cc.o"
  "CMakeFiles/database_persistence_test.dir/database_persistence_test.cc.o.d"
  "database_persistence_test"
  "database_persistence_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/database_persistence_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
