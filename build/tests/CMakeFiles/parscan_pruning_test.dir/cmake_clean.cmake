file(REMOVE_RECURSE
  "CMakeFiles/parscan_pruning_test.dir/parscan_pruning_test.cc.o"
  "CMakeFiles/parscan_pruning_test.dir/parscan_pruning_test.cc.o.d"
  "parscan_pruning_test"
  "parscan_pruning_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parscan_pruning_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
