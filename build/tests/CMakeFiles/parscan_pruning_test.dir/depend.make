# Empty dependencies file for parscan_pruning_test.
# This may be replaced when dependencies are built.
