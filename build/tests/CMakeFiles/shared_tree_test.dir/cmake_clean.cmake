file(REMOVE_RECURSE
  "CMakeFiles/shared_tree_test.dir/shared_tree_test.cc.o"
  "CMakeFiles/shared_tree_test.dir/shared_tree_test.cc.o.d"
  "shared_tree_test"
  "shared_tree_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shared_tree_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
