# Empty dependencies file for shared_tree_test.
# This may be replaced when dependencies are built.
