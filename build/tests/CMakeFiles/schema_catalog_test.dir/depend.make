# Empty dependencies file for schema_catalog_test.
# This may be replaced when dependencies are built.
