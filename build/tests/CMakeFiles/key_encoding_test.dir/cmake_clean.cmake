file(REMOVE_RECURSE
  "CMakeFiles/key_encoding_test.dir/key_encoding_test.cc.o"
  "CMakeFiles/key_encoding_test.dir/key_encoding_test.cc.o.d"
  "key_encoding_test"
  "key_encoding_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/key_encoding_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
