# Empty dependencies file for key_encoding_test.
# This may be replaced when dependencies are built.
