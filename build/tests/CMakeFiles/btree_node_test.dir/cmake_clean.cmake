file(REMOVE_RECURSE
  "CMakeFiles/btree_node_test.dir/btree_node_test.cc.o"
  "CMakeFiles/btree_node_test.dir/btree_node_test.cc.o.d"
  "btree_node_test"
  "btree_node_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/btree_node_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
