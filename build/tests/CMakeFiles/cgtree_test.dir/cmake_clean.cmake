file(REMOVE_RECURSE
  "CMakeFiles/cgtree_test.dir/cgtree_test.cc.o"
  "CMakeFiles/cgtree_test.dir/cgtree_test.cc.o.d"
  "cgtree_test"
  "cgtree_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cgtree_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
