# Empty dependencies file for cgtree_test.
# This may be replaced when dependencies are built.
