# Empty dependencies file for chtree_test.
# This may be replaced when dependencies are built.
