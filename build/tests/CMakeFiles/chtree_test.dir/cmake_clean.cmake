file(REMOVE_RECURSE
  "CMakeFiles/chtree_test.dir/chtree_test.cc.o"
  "CMakeFiles/chtree_test.dir/chtree_test.cc.o.d"
  "chtree_test"
  "chtree_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chtree_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
