# Empty dependencies file for nix_test.
# This may be replaced when dependencies are built.
