file(REMOVE_RECURSE
  "CMakeFiles/nix_test.dir/nix_test.cc.o"
  "CMakeFiles/nix_test.dir/nix_test.cc.o.d"
  "nix_test"
  "nix_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nix_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
