# Empty compiler generated dependencies file for class_code_test.
# This may be replaced when dependencies are built.
