file(REMOVE_RECURSE
  "CMakeFiles/class_code_test.dir/class_code_test.cc.o"
  "CMakeFiles/class_code_test.dir/class_code_test.cc.o.d"
  "class_code_test"
  "class_code_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/class_code_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
