file(REMOVE_RECURSE
  "CMakeFiles/htree_test.dir/htree_test.cc.o"
  "CMakeFiles/htree_test.dir/htree_test.cc.o.d"
  "htree_test"
  "htree_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/htree_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
