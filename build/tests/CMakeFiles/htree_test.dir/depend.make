# Empty dependencies file for htree_test.
# This may be replaced when dependencies are built.
