# Empty dependencies file for uindex_test.
# This may be replaced when dependencies are built.
