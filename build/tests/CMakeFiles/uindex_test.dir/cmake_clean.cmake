file(REMOVE_RECURSE
  "CMakeFiles/uindex_test.dir/uindex_test.cc.o"
  "CMakeFiles/uindex_test.dir/uindex_test.cc.o.d"
  "uindex_test"
  "uindex_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uindex_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
