file(REMOVE_RECURSE
  "CMakeFiles/pathindex_test.dir/pathindex_test.cc.o"
  "CMakeFiles/pathindex_test.dir/pathindex_test.cc.o.d"
  "pathindex_test"
  "pathindex_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pathindex_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
