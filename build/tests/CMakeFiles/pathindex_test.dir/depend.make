# Empty dependencies file for pathindex_test.
# This may be replaced when dependencies are built.
