# Empty dependencies file for parscan_test.
# This may be replaced when dependencies are built.
