file(REMOVE_RECURSE
  "CMakeFiles/parscan_test.dir/parscan_test.cc.o"
  "CMakeFiles/parscan_test.dir/parscan_test.cc.o.d"
  "parscan_test"
  "parscan_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parscan_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
