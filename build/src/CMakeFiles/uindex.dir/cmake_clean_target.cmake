file(REMOVE_RECURSE
  "libuindex.a"
)
