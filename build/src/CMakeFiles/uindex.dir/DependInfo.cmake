
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/cgtree/cgtree.cc" "src/CMakeFiles/uindex.dir/baselines/cgtree/cgtree.cc.o" "gcc" "src/CMakeFiles/uindex.dir/baselines/cgtree/cgtree.cc.o.d"
  "/root/repo/src/baselines/chtree/chtree.cc" "src/CMakeFiles/uindex.dir/baselines/chtree/chtree.cc.o" "gcc" "src/CMakeFiles/uindex.dir/baselines/chtree/chtree.cc.o.d"
  "/root/repo/src/baselines/htree/htree.cc" "src/CMakeFiles/uindex.dir/baselines/htree/htree.cc.o" "gcc" "src/CMakeFiles/uindex.dir/baselines/htree/htree.cc.o.d"
  "/root/repo/src/baselines/nix/nix_index.cc" "src/CMakeFiles/uindex.dir/baselines/nix/nix_index.cc.o" "gcc" "src/CMakeFiles/uindex.dir/baselines/nix/nix_index.cc.o.d"
  "/root/repo/src/baselines/pathindex/nested_index.cc" "src/CMakeFiles/uindex.dir/baselines/pathindex/nested_index.cc.o" "gcc" "src/CMakeFiles/uindex.dir/baselines/pathindex/nested_index.cc.o.d"
  "/root/repo/src/baselines/pathindex/path_index.cc" "src/CMakeFiles/uindex.dir/baselines/pathindex/path_index.cc.o" "gcc" "src/CMakeFiles/uindex.dir/baselines/pathindex/path_index.cc.o.d"
  "/root/repo/src/baselines/record_codec.cc" "src/CMakeFiles/uindex.dir/baselines/record_codec.cc.o" "gcc" "src/CMakeFiles/uindex.dir/baselines/record_codec.cc.o.d"
  "/root/repo/src/btree/btree.cc" "src/CMakeFiles/uindex.dir/btree/btree.cc.o" "gcc" "src/CMakeFiles/uindex.dir/btree/btree.cc.o.d"
  "/root/repo/src/btree/cursor.cc" "src/CMakeFiles/uindex.dir/btree/cursor.cc.o" "gcc" "src/CMakeFiles/uindex.dir/btree/cursor.cc.o.d"
  "/root/repo/src/btree/node.cc" "src/CMakeFiles/uindex.dir/btree/node.cc.o" "gcc" "src/CMakeFiles/uindex.dir/btree/node.cc.o.d"
  "/root/repo/src/core/forward_scan.cc" "src/CMakeFiles/uindex.dir/core/forward_scan.cc.o" "gcc" "src/CMakeFiles/uindex.dir/core/forward_scan.cc.o.d"
  "/root/repo/src/core/key_encoding.cc" "src/CMakeFiles/uindex.dir/core/key_encoding.cc.o" "gcc" "src/CMakeFiles/uindex.dir/core/key_encoding.cc.o.d"
  "/root/repo/src/core/parscan.cc" "src/CMakeFiles/uindex.dir/core/parscan.cc.o" "gcc" "src/CMakeFiles/uindex.dir/core/parscan.cc.o.d"
  "/root/repo/src/core/query.cc" "src/CMakeFiles/uindex.dir/core/query.cc.o" "gcc" "src/CMakeFiles/uindex.dir/core/query.cc.o.d"
  "/root/repo/src/core/query_parser.cc" "src/CMakeFiles/uindex.dir/core/query_parser.cc.o" "gcc" "src/CMakeFiles/uindex.dir/core/query_parser.cc.o.d"
  "/root/repo/src/core/schema_catalog.cc" "src/CMakeFiles/uindex.dir/core/schema_catalog.cc.o" "gcc" "src/CMakeFiles/uindex.dir/core/schema_catalog.cc.o.d"
  "/root/repo/src/core/uindex.cc" "src/CMakeFiles/uindex.dir/core/uindex.cc.o" "gcc" "src/CMakeFiles/uindex.dir/core/uindex.cc.o.d"
  "/root/repo/src/core/update.cc" "src/CMakeFiles/uindex.dir/core/update.cc.o" "gcc" "src/CMakeFiles/uindex.dir/core/update.cc.o.d"
  "/root/repo/src/db/database.cc" "src/CMakeFiles/uindex.dir/db/database.cc.o" "gcc" "src/CMakeFiles/uindex.dir/db/database.cc.o.d"
  "/root/repo/src/db/journal.cc" "src/CMakeFiles/uindex.dir/db/journal.cc.o" "gcc" "src/CMakeFiles/uindex.dir/db/journal.cc.o.d"
  "/root/repo/src/db/oql.cc" "src/CMakeFiles/uindex.dir/db/oql.cc.o" "gcc" "src/CMakeFiles/uindex.dir/db/oql.cc.o.d"
  "/root/repo/src/db/oql_planner.cc" "src/CMakeFiles/uindex.dir/db/oql_planner.cc.o" "gcc" "src/CMakeFiles/uindex.dir/db/oql_planner.cc.o.d"
  "/root/repo/src/objects/object.cc" "src/CMakeFiles/uindex.dir/objects/object.cc.o" "gcc" "src/CMakeFiles/uindex.dir/objects/object.cc.o.d"
  "/root/repo/src/objects/object_store.cc" "src/CMakeFiles/uindex.dir/objects/object_store.cc.o" "gcc" "src/CMakeFiles/uindex.dir/objects/object_store.cc.o.d"
  "/root/repo/src/schema/class_code.cc" "src/CMakeFiles/uindex.dir/schema/class_code.cc.o" "gcc" "src/CMakeFiles/uindex.dir/schema/class_code.cc.o.d"
  "/root/repo/src/schema/encoder.cc" "src/CMakeFiles/uindex.dir/schema/encoder.cc.o" "gcc" "src/CMakeFiles/uindex.dir/schema/encoder.cc.o.d"
  "/root/repo/src/schema/schema.cc" "src/CMakeFiles/uindex.dir/schema/schema.cc.o" "gcc" "src/CMakeFiles/uindex.dir/schema/schema.cc.o.d"
  "/root/repo/src/storage/buffer_manager.cc" "src/CMakeFiles/uindex.dir/storage/buffer_manager.cc.o" "gcc" "src/CMakeFiles/uindex.dir/storage/buffer_manager.cc.o.d"
  "/root/repo/src/storage/io_stats.cc" "src/CMakeFiles/uindex.dir/storage/io_stats.cc.o" "gcc" "src/CMakeFiles/uindex.dir/storage/io_stats.cc.o.d"
  "/root/repo/src/storage/overflow.cc" "src/CMakeFiles/uindex.dir/storage/overflow.cc.o" "gcc" "src/CMakeFiles/uindex.dir/storage/overflow.cc.o.d"
  "/root/repo/src/storage/pager.cc" "src/CMakeFiles/uindex.dir/storage/pager.cc.o" "gcc" "src/CMakeFiles/uindex.dir/storage/pager.cc.o.d"
  "/root/repo/src/storage/snapshot.cc" "src/CMakeFiles/uindex.dir/storage/snapshot.cc.o" "gcc" "src/CMakeFiles/uindex.dir/storage/snapshot.cc.o.d"
  "/root/repo/src/util/crc32.cc" "src/CMakeFiles/uindex.dir/util/crc32.cc.o" "gcc" "src/CMakeFiles/uindex.dir/util/crc32.cc.o.d"
  "/root/repo/src/util/hex.cc" "src/CMakeFiles/uindex.dir/util/hex.cc.o" "gcc" "src/CMakeFiles/uindex.dir/util/hex.cc.o.d"
  "/root/repo/src/util/random.cc" "src/CMakeFiles/uindex.dir/util/random.cc.o" "gcc" "src/CMakeFiles/uindex.dir/util/random.cc.o.d"
  "/root/repo/src/util/status.cc" "src/CMakeFiles/uindex.dir/util/status.cc.o" "gcc" "src/CMakeFiles/uindex.dir/util/status.cc.o.d"
  "/root/repo/src/workload/database_generator.cc" "src/CMakeFiles/uindex.dir/workload/database_generator.cc.o" "gcc" "src/CMakeFiles/uindex.dir/workload/database_generator.cc.o.d"
  "/root/repo/src/workload/experiment.cc" "src/CMakeFiles/uindex.dir/workload/experiment.cc.o" "gcc" "src/CMakeFiles/uindex.dir/workload/experiment.cc.o.d"
  "/root/repo/src/workload/paper_schema.cc" "src/CMakeFiles/uindex.dir/workload/paper_schema.cc.o" "gcc" "src/CMakeFiles/uindex.dir/workload/paper_schema.cc.o.d"
  "/root/repo/src/workload/query_generator.cc" "src/CMakeFiles/uindex.dir/workload/query_generator.cc.o" "gcc" "src/CMakeFiles/uindex.dir/workload/query_generator.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
