# Empty dependencies file for uindex.
# This may be replaced when dependencies are built.
