#include <gtest/gtest.h>

#include "db/database.h"

namespace uindex {
namespace {

class DatabaseTest : public ::testing::Test {
 protected:
  DatabaseTest() {
    employee_ = db_.CreateClass("Employee").value();
    company_ = db_.CreateClass("Company").value();
    auto_company_ = db_.CreateSubclass("AutoCompany", company_).value();
    vehicle_ = db_.CreateClass("Vehicle").value();
    car_ = db_.CreateSubclass("Car", vehicle_).value();
    truck_ = db_.CreateSubclass("Truck", vehicle_).value();
    EXPECT_TRUE(
        db_.CreateReference(vehicle_, company_, "made-by").ok());
    EXPECT_TRUE(
        db_.CreateReference(company_, employee_, "president").ok());
  }

  Oid NewEmployee(int64_t age) {
    const Oid oid = db_.CreateObject(employee_).value();
    EXPECT_TRUE(db_.SetAttr(oid, "Age", Value::Int(age)).ok());
    return oid;
  }
  Oid NewCompany(ClassId cls, Oid president) {
    const Oid oid = db_.CreateObject(cls).value();
    EXPECT_TRUE(db_.SetAttr(oid, "president", Value::Ref(president)).ok());
    return oid;
  }
  Oid NewVehicle(ClassId cls, int64_t price, Oid maker) {
    const Oid oid = db_.CreateObject(cls).value();
    EXPECT_TRUE(db_.SetAttr(oid, "Price", Value::Int(price)).ok());
    EXPECT_TRUE(db_.SetAttr(oid, "made-by", Value::Ref(maker)).ok());
    return oid;
  }

  Database db_;
  ClassId employee_, company_, auto_company_, vehicle_, car_, truck_;
};

TEST_F(DatabaseTest, DdlAssignsCodesAndCatalog) {
  EXPECT_EQ(db_.coder().CodeOf(employee_), "C1");
  EXPECT_EQ(db_.coder().CodeOf(company_), "C2");
  EXPECT_EQ(db_.coder().CodeOf(auto_company_), "C2A");
  EXPECT_EQ(db_.coder().CodeOf(vehicle_), "C3");
  EXPECT_EQ(db_.coder().CodeOf(car_), "C3A");
  ASSERT_NE(db_.catalog(), nullptr);
  EXPECT_EQ(std::move(db_.catalog()->NameOf(Slice("C3A"))).value(), "Car");
  const auto refs =
      std::move(db_.catalog()->ReferencesOf(Slice("C3"))).value();
  ASSERT_EQ(refs.size(), 1u);
  EXPECT_EQ(refs[0].attribute, "made-by");
}

TEST_F(DatabaseTest, RefInvertingCodeOrderIsRejected) {
  // Employee (C1) referencing Vehicle (C3) would invert the order.
  EXPECT_TRUE(
      db_.CreateReference(employee_, vehicle_, "owns").IsInvalidArgument());
}

TEST_F(DatabaseTest, SelectWithoutIndexScansExtent) {
  NewVehicle(car_, 10, NewCompany(company_, NewEmployee(50)));
  NewVehicle(truck_, 30, NewCompany(company_, NewEmployee(60)));
  Database::Selection sel;
  sel.cls = vehicle_;
  sel.attr = "Price";
  sel.lo = Value::Int(20);
  sel.hi = Value::Int(40);
  const auto r = std::move(db_.Select(sel)).value();
  EXPECT_FALSE(r.used_index);
  EXPECT_EQ(r.oids.size(), 1u);
}

TEST_F(DatabaseTest, SelectUsesClassHierarchyIndex) {
  const Oid president = NewEmployee(50);
  const Oid maker = NewCompany(auto_company_, president);
  const Oid cheap = NewVehicle(car_, 10, maker);
  const Oid mid = NewVehicle(truck_, 25, maker);
  NewVehicle(car_, 90, maker);

  ASSERT_TRUE(db_.CreateIndex(PathSpec::ClassHierarchy(
                                  vehicle_, "Price", Value::Kind::kInt))
                  .ok());

  Database::Selection sel;
  sel.cls = vehicle_;
  sel.attr = "Price";
  sel.lo = Value::Int(5);
  sel.hi = Value::Int(30);
  auto r = std::move(db_.Select(sel)).value();
  EXPECT_TRUE(r.used_index);
  EXPECT_EQ(r.oids, (std::vector<Oid>{cheap, mid}));

  // Subclass-only selection through the same index.
  sel.cls = truck_;
  r = std::move(db_.Select(sel)).value();
  EXPECT_TRUE(r.used_index);
  EXPECT_EQ(r.oids, (std::vector<Oid>{mid}));

  // Wrong attribute: falls back to a scan.
  sel.attr = "Weight";
  sel.lo = sel.hi = Value::Int(1);
  r = std::move(db_.Select(sel)).value();
  EXPECT_FALSE(r.used_index);
}

TEST_F(DatabaseTest, SelectUsesPathIndexForAnyPosition) {
  const Oid e50 = NewEmployee(50);
  const Oid e60 = NewEmployee(60);
  const Oid maker50 = NewCompany(auto_company_, e50);
  const Oid maker60 = NewCompany(company_, e60);
  const Oid v1 = NewVehicle(car_, 10, maker50);
  const Oid v2 = NewVehicle(truck_, 20, maker60);
  NewVehicle(car_, 30, maker60);

  PathSpec spec;
  spec.classes = {vehicle_, company_, employee_};
  spec.ref_attrs = {"made-by", "president"};
  spec.indexed_attr = "Age";
  spec.value_kind = Value::Kind::kInt;
  ASSERT_TRUE(db_.CreateIndex(spec).ok());

  // Head position: vehicles by president age.
  Database::Selection sel;
  sel.cls = vehicle_;
  sel.attr = "Age";
  sel.lo = sel.hi = Value::Int(50);
  auto r = std::move(db_.Select(sel)).value();
  EXPECT_TRUE(r.used_index);
  EXPECT_EQ(r.oids, (std::vector<Oid>{v1}));

  // Mid position: companies by president age (partial-path skip).
  sel.cls = company_;
  sel.lo = sel.hi = Value::Int(60);
  r = std::move(db_.Select(sel)).value();
  EXPECT_TRUE(r.used_index);
  EXPECT_EQ(r.oids, (std::vector<Oid>{maker60}));

  // Subclass at head: trucks only.
  sel.cls = truck_;
  r = std::move(db_.Select(sel)).value();
  EXPECT_TRUE(r.used_index);
  EXPECT_EQ(r.oids, (std::vector<Oid>{v2}));
}

TEST_F(DatabaseTest, DmlKeepsIndexesCurrent) {
  const Oid maker = NewCompany(auto_company_, NewEmployee(50));
  const Oid v = NewVehicle(car_, 10, maker);
  ASSERT_TRUE(db_.CreateIndex(PathSpec::ClassHierarchy(
                                  vehicle_, "Price", Value::Kind::kInt))
                  .ok());

  Database::Selection sel;
  sel.cls = vehicle_;
  sel.attr = "Price";
  sel.lo = Value::Int(0);
  sel.hi = Value::Int(15);
  EXPECT_EQ(std::move(db_.Select(sel)).value().oids,
            (std::vector<Oid>{v}));

  ASSERT_TRUE(db_.SetAttr(v, "Price", Value::Int(99)).ok());
  EXPECT_TRUE(std::move(db_.Select(sel)).value().oids.empty());

  const Oid v2 = NewVehicle(truck_, 5, maker);
  EXPECT_EQ(std::move(db_.Select(sel)).value().oids,
            (std::vector<Oid>{v2}));

  ASSERT_TRUE(db_.DeleteObject(v2).ok());
  EXPECT_TRUE(std::move(db_.Select(sel)).value().oids.empty());
}

TEST_F(DatabaseTest, ExplainRanksCandidates) {
  const Oid maker = NewCompany(auto_company_, NewEmployee(50));
  for (int i = 0; i < 200; ++i) {
    NewVehicle(i % 2 == 0 ? car_ : truck_, 2 * i, maker);
  }
  ASSERT_TRUE(db_.CreateIndex(PathSpec::ClassHierarchy(
                                  vehicle_, "Price", Value::Kind::kInt))
                  .ok());

  Database::Selection sel;
  sel.cls = vehicle_;
  sel.attr = "Price";
  sel.lo = Value::Int(0);
  sel.hi = Value::Int(39);  // ~10% of the 0..398 domain.
  const auto plan = std::move(db_.Explain(sel)).value();
  ASSERT_EQ(plan.candidates.size(), 2u);  // Index + scan.
  EXPECT_EQ(plan.chosen, 0u);
  EXPECT_TRUE(plan.candidates[0].usable);
  EXPECT_GT(plan.candidates[0].estimated_pages, 0.0);
  // A 10% range must be estimated far below a full scan of 200 objects.
  EXPECT_LT(plan.candidates[0].estimated_pages,
            plan.candidates[1].estimated_pages);

  // Unservable selection: index is listed but unusable; scan is chosen.
  sel.attr = "Weight";
  const auto plan2 = std::move(db_.Explain(sel)).value();
  EXPECT_FALSE(plan2.candidates[0].usable);
  EXPECT_EQ(plan2.chosen, 1u);
  EXPECT_FALSE(plan2.candidates[0].reason.empty());
}

TEST_F(DatabaseTest, CreateIndexValidatesSpec) {
  PathSpec bad;
  bad.classes = {vehicle_, company_};
  bad.ref_attrs = {};  // Mismatch.
  bad.indexed_attr = "Age";
  EXPECT_TRUE(db_.CreateIndex(bad).status().IsInvalidArgument());
}

TEST_F(DatabaseTest, IndexlessDatabaseWorksWithCatalogDisabled) {
  DatabaseOptions opts;
  opts.maintain_catalog = false;
  Database db(opts);
  const ClassId cls = db.CreateClass("Thing").value();
  EXPECT_EQ(db.catalog(), nullptr);
  const Oid oid = db.CreateObject(cls).value();
  ASSERT_TRUE(db.SetAttr(oid, "x", Value::Int(1)).ok());
  Database::Selection sel;
  sel.cls = cls;
  sel.attr = "x";
  sel.lo = sel.hi = Value::Int(1);
  EXPECT_EQ(std::move(db.Select(sel)).value().oids,
            (std::vector<Oid>{oid}));
}

}  // namespace
}  // namespace uindex
