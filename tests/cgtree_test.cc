#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "baselines/cgtree/cgtree.h"
#include "util/random.h"

namespace uindex {
namespace {

class CgTreeTest : public ::testing::Test {
 protected:
  CgTreeTest()
      : pager_(1024), buffers_(&pager_), tree_(&buffers_, Value::Kind::kInt) {}

  std::vector<Oid> Sorted(Result<std::vector<Oid>> r) {
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    std::vector<Oid> v = std::move(r).value();
    std::sort(v.begin(), v.end());
    return v;
  }

  Pager pager_;
  BufferManager buffers_;
  CgTree tree_;
};

TEST_F(CgTreeTest, InsertAndExactSearch) {
  ASSERT_TRUE(tree_.Insert(Value::Int(5), 1, 100).ok());
  ASSERT_TRUE(tree_.Insert(Value::Int(5), 2, 200).ok());
  ASSERT_TRUE(tree_.Insert(Value::Int(7), 1, 300).ok());
  EXPECT_EQ(Sorted(tree_.Search(Value::Int(5), Value::Int(5), {1, 2})),
            (std::vector<Oid>{100, 200}));
  EXPECT_EQ(Sorted(tree_.Search(Value::Int(7), Value::Int(7), {1})),
            (std::vector<Oid>{300}));
  EXPECT_TRUE(Sorted(tree_.Search(Value::Int(7), Value::Int(7), {2})).empty());
  ASSERT_TRUE(tree_.Validate().ok());
}

TEST_F(CgTreeTest, SetChainsArePerSet) {
  for (int k = 0; k < 2000; ++k) {
    ASSERT_TRUE(tree_.Insert(Value::Int(k % 500), k % 4,
                             static_cast<Oid>(k + 1))
                    .ok());
  }
  ASSERT_TRUE(tree_.Validate().ok());

  // A range over one set must not read other sets' data pages: compare
  // against querying all four sets.
  auto cost_of = [this](const std::vector<ClassId>& sets) {
    QueryCost cost(&buffers_);
    EXPECT_TRUE(tree_.Search(Value::Int(0), Value::Int(249), sets).ok());
    return cost.PagesRead();
  };
  const uint64_t one = cost_of({2});
  const uint64_t all = cost_of({0, 1, 2, 3});
  EXPECT_LT(one * 2, all);
}

TEST_F(CgTreeTest, MultiKeySharingInOnePage) {
  // A handful of tiny postings across many keys must share data pages.
  for (int k = 0; k < 50; ++k) {
    ASSERT_TRUE(tree_.Insert(Value::Int(k), 0, static_cast<Oid>(k + 1)).ok());
  }
  const CgTree::Stats stats = std::move(tree_.ComputeStats()).value();
  EXPECT_EQ(stats.postings, 50u);
  EXPECT_LE(stats.data_pages, 2u);  // ~14 B per posting, 1 KiB pages.
}

TEST_F(CgTreeTest, BigPostingSpillsAcrossPages) {
  // One key with 600 oids (2.4 KB) must spill across >= 3 chained pages.
  for (Oid oid = 1; oid <= 600; ++oid) {
    ASSERT_TRUE(tree_.Insert(Value::Int(9), 0, oid).ok());
  }
  ASSERT_TRUE(tree_.Validate().ok());
  const CgTree::Stats stats = std::move(tree_.ComputeStats()).value();
  EXPECT_GE(stats.data_pages, 3u);
  EXPECT_EQ(Sorted(tree_.Search(Value::Int(9), Value::Int(9), {0})).size(),
            600u);
}

TEST_F(CgTreeTest, RemoveDrainsPagesAndDirectory) {
  for (int k = 0; k < 400; ++k) {
    ASSERT_TRUE(tree_.Insert(Value::Int(k), k % 2,
                             static_cast<Oid>(k + 1))
                    .ok());
  }
  ASSERT_TRUE(tree_.Validate().ok());
  for (int k = 0; k < 400; ++k) {
    ASSERT_TRUE(tree_.Remove(Value::Int(k), k % 2,
                             static_cast<Oid>(k + 1))
                    .ok());
  }
  ASSERT_TRUE(tree_.Validate().ok());
  const CgTree::Stats stats = std::move(tree_.ComputeStats()).value();
  EXPECT_EQ(stats.postings, 0u);
  EXPECT_EQ(stats.data_pages, 0u);
  EXPECT_EQ(stats.directory_entries, 0u);
  EXPECT_TRUE(tree_.Remove(Value::Int(3), 1, 4).IsNotFound());
  // The structure remains usable after full drain.
  ASSERT_TRUE(tree_.Insert(Value::Int(1), 0, 7).ok());
  EXPECT_EQ(Sorted(tree_.Search(Value::Int(0), Value::Int(5), {0})),
            (std::vector<Oid>{7}));
}

TEST_F(CgTreeTest, DifferentialAgainstNaiveModel) {
  Random rng(123);
  std::multimap<std::pair<ClassId, int64_t>, Oid> model;
  Oid next_oid = 1;
  for (int op = 0; op < 6000; ++op) {
    const int64_t key = static_cast<int64_t>(rng.Uniform(300));
    const ClassId set = static_cast<ClassId>(rng.Uniform(6));
    if (rng.Bernoulli(0.75) || model.empty()) {
      const Oid oid = next_oid++;
      ASSERT_TRUE(tree_.Insert(Value::Int(key), set, oid).ok());
      model.insert({{set, key}, oid});
    } else {
      auto it = model.begin();
      std::advance(it, static_cast<ptrdiff_t>(rng.Uniform(model.size())));
      ASSERT_TRUE(tree_.Remove(Value::Int(it->first.second), it->first.first,
                               it->second)
                      .ok());
      model.erase(it);
    }
    if (op % 1500 == 1499) {
      ASSERT_TRUE(tree_.Validate().ok());
    }
  }
  ASSERT_TRUE(tree_.Validate().ok());

  Random qrng(321);
  for (int q = 0; q < 60; ++q) {
    const int64_t lo = static_cast<int64_t>(qrng.Uniform(300));
    const int64_t hi = lo + static_cast<int64_t>(qrng.Uniform(60));
    std::vector<ClassId> sets;
    for (ClassId s = 0; s < 6; ++s) {
      if (qrng.Bernoulli(0.5)) sets.push_back(s);
    }
    if (sets.empty()) sets.push_back(0);
    std::vector<Oid> expected;
    for (const auto& [sk, oid] : model) {
      if (sk.second < lo || sk.second > hi) continue;
      if (std::find(sets.begin(), sets.end(), sk.first) == sets.end()) {
        continue;
      }
      expected.push_back(oid);
    }
    std::sort(expected.begin(), expected.end());
    EXPECT_EQ(Sorted(tree_.Search(Value::Int(lo), Value::Int(hi), sets)),
              expected)
        << "query " << q;
  }
}

TEST_F(CgTreeTest, ExactMatchCostIsModest) {
  // Exact-match behaviour: close to a B-tree descent per queried set.
  Random rng(5);
  for (int i = 0; i < 30000; ++i) {
    ASSERT_TRUE(tree_.Insert(Value::Int(static_cast<int64_t>(
                                 rng.Uniform(1000))),
                             static_cast<ClassId>(rng.Uniform(8)),
                             static_cast<Oid>(i + 1))
                    .ok());
  }
  QueryCost cost(&buffers_);
  ASSERT_TRUE(tree_.Search(Value::Int(500), Value::Int(500), {3}).ok());
  EXPECT_LE(cost.PagesRead(), 8u);
}

}  // namespace
}  // namespace uindex
