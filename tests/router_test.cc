// Scatter-gather router tests: ShardMap persistence, shard pruning, merge
// identity against a single node, and — above all — the failure contract:
// a shard that is down, slow, or stale NEVER yields a silent partial
// result. Every degraded outcome is either a typed error naming the shard
// or a transparent refresh-and-retry under the new map version.
//
// Topology shape: every shard is a full replica built by the same
// deterministic loader (the cheap way to stand up a cluster in one
// process); partitioning is enforced by the served range each
// `Server::InstallShard` pushes into its database, so shard row sets are
// disjoint and the merge identity against one unpartitioned replica is
// exact, not approximate.

#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "db/database.h"
#include "exec/shard_route.h"
#include "net/client.h"
#include "net/router.h"
#include "net/router_server.h"
#include "net/server.h"
#include "net/shard_map.h"

namespace uindex {
namespace net {
namespace {

namespace fs = std::filesystem;

// ---------------------------------------------------------------- fixture

// N full replicas behind ephemeral-port servers plus one planning replica:
// Item root with 4 subclasses, int hierarchy index on "price", 400 objects
// over 97 keys — the net_server_test database, which every replica rebuilds
// identically.
class RouterTest : public ::testing::Test {
 protected:
  static constexpr int kObjects = 400;
  static constexpr int kPrices = 97;

  void SetUp() override {
    planner_ = std::make_unique<Database>();
    BuildReplica(planner_.get());
  }

  void BuildReplica(Database* db) {
    const ClassId root = db->CreateClass("Item").value();
    std::vector<ClassId> subs;
    for (int i = 0; i < 4; ++i) {
      subs.push_back(
          db->CreateSubclass("Item" + std::to_string(i), root).value());
    }
    ASSERT_TRUE(db->CreateIndex(PathSpec::ClassHierarchy(
                                    root, "price", Value::Kind::kInt))
                    .ok());
    for (int i = 0; i < kObjects; ++i) {
      const Oid oid = db->CreateObject(subs[i % subs.size()]).value();
      ASSERT_TRUE(db->SetAttr(oid, "price", Value::Int(i % kPrices)).ok());
    }
    if (root_ == kInvalidClassId) {
      root_ = root;
      subs_ = subs;
    }
  }

  // Boundary k of an n-shard map: the code of subclass k*4/n, so shards
  // partition the four subclass sub-trees evenly. Ports come from the
  // already-started servers.
  ShardMap MakeMap(size_t n, uint64_t version) {
    ShardMap map;
    map.version = version;
    for (size_t k = 0; k < n; ++k) {
      ShardMap::Entry e;
      e.lo = k == 0 ? "" : planner_->coder().CodeOf(subs_[k * 4 / n]);
      e.host = "127.0.0.1";
      e.port = servers_[k]->port();
      map.entries.push_back(std::move(e));
    }
    return map;
  }

  // Builds the replicas, starts their servers, installs map `version`, and
  // creates the router. Call at most once per test.
  void StartTopology(size_t n, uint64_t version,
                     RouterOptions router_options = RouterOptions()) {
    for (size_t k = 0; k < n; ++k) {
      shard_dbs_.push_back(std::make_unique<Database>());
      BuildReplica(shard_dbs_.back().get());
      ServerOptions options;
      options.worker_threads = 2;
      Result<std::unique_ptr<Server>> server =
          Server::Start(shard_dbs_.back().get(), options);
      ASSERT_TRUE(server.ok()) << server.status().ToString();
      servers_.push_back(std::move(server).value());
    }
    map_ = MakeMap(n, version);
    for (size_t k = 0; k < n; ++k) {
      ASSERT_TRUE(servers_[k]->InstallShard(map_, k).ok());
    }
    Result<std::unique_ptr<Router>> router =
        Router::Create(map_, planner_.get(), router_options);
    ASSERT_TRUE(router.ok()) << router.status().ToString();
    router_ = std::move(router).value();
  }

  // Installs `map` on every live server (a rebalance push).
  void InstallEverywhere(const ShardMap& map) {
    for (size_t k = 0; k < servers_.size(); ++k) {
      ASSERT_TRUE(servers_[k]->InstallShard(map, k).ok())
          << "shard " << k;
    }
  }

  static std::string PriceQuery(int key) {
    return "SELECT i FROM Item* i WHERE i.price = " + std::to_string(key);
  }

  // The routed outcome must be byte-identical to the unpartitioned
  // planning replica — rows, count, and index usage.
  void ExpectMatchesSingleNode(const std::string& oql) {
    Result<Database::OqlResult> local = planner_->ExecuteOql(oql);
    ASSERT_TRUE(local.ok()) << local.status().ToString();
    Result<Router::QueryOutcome> routed = router_->Query(oql);
    ASSERT_TRUE(routed.ok()) << routed.status().ToString();
    EXPECT_EQ(routed.value().oids, local.value().oids) << oql;
    EXPECT_EQ(routed.value().count, local.value().count) << oql;
    EXPECT_EQ(routed.value().used_index, local.value().used_index) << oql;
  }

  std::unique_ptr<Database> planner_;  // Also the single-node baseline.
  ClassId root_ = kInvalidClassId;
  std::vector<ClassId> subs_;
  std::vector<std::unique_ptr<Database>> shard_dbs_;
  // Destroyed before the databases (declaration order).
  std::vector<std::unique_ptr<Server>> servers_;
  ShardMap map_;
  std::unique_ptr<Router> router_;
};

// A scratch file path that cleans up after itself.
class ScopedPath {
 public:
  explicit ScopedPath(const std::string& name)
      : path_((fs::temp_directory_path() /
               (name + "." + std::to_string(::getpid())))
                  .string()) {}
  ~ScopedPath() {
    std::error_code ec;
    fs::remove(path_, ec);
  }
  const std::string& get() const { return path_; }

 private:
  std::string path_;
};

// ------------------------------------------------- CandidateShards (unit)

TEST(CandidateShardsTest, EmptySpansScatterNowhere) {
  EXPECT_TRUE(exec::CandidateShards({}, {""}).empty());
  EXPECT_TRUE(exec::CandidateShards({}, {"", "m"}).empty());
}

TEST(CandidateShardsTest, SingleShardOwnsEverything) {
  const std::vector<std::string> one = {""};
  EXPECT_EQ(exec::CandidateShards({{"a", "b"}}, one),
            (std::vector<size_t>{0}));
  EXPECT_EQ(exec::CandidateShards({{"", ""}}, one),
            (std::vector<size_t>{0}));
}

TEST(CandidateShardsTest, SpansLandOnTheRightSideOfABoundary) {
  const std::vector<std::string> two = {"", "m"};
  EXPECT_EQ(exec::CandidateShards({{"a", "b"}}, two),
            (std::vector<size_t>{0}));
  EXPECT_EQ(exec::CandidateShards({{"m", "z"}}, two),
            (std::vector<size_t>{1}));
  // Half-open spans: hi == boundary does NOT touch the upper shard...
  EXPECT_EQ(exec::CandidateShards({{"a", "m"}}, two),
            (std::vector<size_t>{0}));
  // ...but a span straddling the boundary hits both, as does an unbounded
  // one (empty hi = +infinity).
  EXPECT_EQ(exec::CandidateShards({{"l", "n"}}, two),
            (std::vector<size_t>{0, 1}));
  EXPECT_EQ(exec::CandidateShards({{"l", ""}}, two),
            (std::vector<size_t>{0, 1}));
}

TEST(CandidateShardsTest, ManySpansDedupeAndStaySorted) {
  const std::vector<std::string> three = {"", "h", "t"};
  const std::vector<ByteInterval> spans = {
      {"a", "b"}, {"c", "d"}, {"u", "v"}};  // Shards 0, 0, 2.
  EXPECT_EQ(exec::CandidateShards(spans, three),
            (std::vector<size_t>{0, 2}));
}

// ---------------------------------------------------- ShardMap (disk I/O)

TEST(ShardMapDiskTest, SaveLoadRoundTrips) {
  ScopedPath path("uindex_router_test_map");
  ShardMap map;
  map.version = 42;
  map.entries = {{"", "hostA", 5001}, {"C3A", "hostB", 5002}};
  ASSERT_TRUE(map.Save(path.get()).ok());
  Result<ShardMap> loaded = ShardMap::Load(path.get());
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value().version, 42u);
  ASSERT_EQ(loaded.value().entries.size(), 2u);
  EXPECT_EQ(loaded.value().entries[1].lo, "C3A");
  EXPECT_EQ(loaded.value().entries[1].host, "hostB");
  EXPECT_EQ(loaded.value().entries[1].port, 5002);
}

TEST(ShardMapDiskTest, MissingFileIsNotFound) {
  Result<ShardMap> r = ShardMap::Load("/nonexistent/uindex.map");
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound()) << r.status().ToString();
}

TEST(ShardMapDiskTest, FlippedByteIsCorruption) {
  ScopedPath path("uindex_router_test_corrupt");
  ShardMap map;
  map.version = 7;
  map.entries = {{"", "127.0.0.1", 5001}};
  ASSERT_TRUE(map.Save(path.get()).ok());
  // Flip one payload byte under the CRC frame.
  std::FILE* f = std::fopen(path.get().c_str(), "r+b");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(std::fseek(f, -2, SEEK_END), 0);
  int c = std::fgetc(f);
  ASSERT_EQ(std::fseek(f, -1, SEEK_CUR), 0);
  std::fputc(c ^ 0x40, f);
  std::fclose(f);
  Result<ShardMap> r = ShardMap::Load(path.get());
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsCorruption()) << r.status().ToString();
}

// -------------------------------------------------- merge & prune (happy)

TEST_F(RouterTest, RoutedQueriesMatchSingleNode) {
  StartTopology(2, /*version=*/1);
  for (int key = 0; key < 12; ++key) ExpectMatchesSingleNode(PriceQuery(key));
  ExpectMatchesSingleNode(
      "SELECT i FROM Item* i WHERE i.price BETWEEN 10 AND 14");
  ExpectMatchesSingleNode(
      "SELECT COUNT(i) FROM Item* i WHERE i.price BETWEEN 0 AND 96");
  ExpectMatchesSingleNode(
      "SELECT i FROM Item2 i WHERE i.price BETWEEN 0 AND 50");
  ExpectMatchesSingleNode(
      "SELECT i FROM Item* i WHERE i.price >= 0 LIMIT 5");
  EXPECT_GE(router_->counters().queries_ok.load(), 16u);
  EXPECT_EQ(router_->counters().queries_failed.load(), 0u);
  EXPECT_EQ(router_->counters().partial_failures.load(), 0u);
}

TEST_F(RouterTest, ExactClassQueriesProbeOneShard) {
  StartTopology(4, /*version=*/1);
  // Item1 is wholly owned by shard 1 of 4 — three shards must be pruned,
  // not queried-and-discarded.
  Result<Router::QueryOutcome> r =
      router_->Query("SELECT i FROM Item1 i WHERE i.price = 5");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.value().shards_queried, 1u);
  EXPECT_EQ(router_->counters().subqueries_sent.load(), 1u);
  EXPECT_EQ(router_->counters().shards_pruned.load(), 3u);
  // A root scatter reaches all four.
  r = router_->Query(PriceQuery(5));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().shards_queried, 4u);
}

TEST_F(RouterTest, ServedRangeIsEnforcedByTheDatabaseItself) {
  // The partition holds even without any router: a replica told to serve
  // [code(Item2), +inf) must answer a hierarchy query with only the rows
  // whose class falls in that slice, and the two complementary slices must
  // reassemble the full result exactly.
  const std::string boundary = planner_->coder().CodeOf(subs_[2]);
  Database replica;
  BuildReplica(&replica);
  Result<Database::OqlResult> full = replica.ExecuteOql(PriceQuery(3));
  ASSERT_TRUE(full.ok());

  replica.SetServedRange({"", boundary, 1});
  Result<Database::OqlResult> low = replica.ExecuteOql(PriceQuery(3));
  ASSERT_TRUE(low.ok());
  replica.SetServedRange({boundary, "", 1});
  Result<Database::OqlResult> high = replica.ExecuteOql(PriceQuery(3));
  ASSERT_TRUE(high.ok());

  ASSERT_FALSE(full.value().oids.empty());
  EXPECT_LT(low.value().oids.size(), full.value().oids.size());
  EXPECT_LT(high.value().oids.size(), full.value().oids.size());
  std::vector<Oid> reunion = low.value().oids;
  reunion.insert(reunion.end(), high.value().oids.begin(),
                 high.value().oids.end());
  std::sort(reunion.begin(), reunion.end());
  std::vector<Oid> expected = full.value().oids;
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(reunion, expected);
}

// ------------------------------------------------------- failure contract

TEST_F(RouterTest, DeadShardFailsTypedNeverSilentlyPartial) {
  StartTopology(2, /*version=*/1);
  ASSERT_TRUE(router_->Query(PriceQuery(1)).ok());
  servers_[1]->Shutdown();

  // The scatter needs shard 1; the whole query must fail Unavailable and
  // name the shard — shard 0's perfectly good rows are discarded, never
  // returned as a partial result.
  Result<Router::QueryOutcome> r = router_->Query(PriceQuery(2));
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsUnavailable()) << r.status().ToString();
  EXPECT_NE(r.status().message().find("shard 1"), std::string::npos)
      << r.status().message();
  EXPECT_GE(router_->counters().partial_failures.load(), 1u);
  EXPECT_GE(router_->counters().queries_failed.load(), 1u);

  // A query the live shard fully owns still works: pruning routes around
  // the corpse without ever dialing it.
  Result<Router::QueryOutcome> alive =
      router_->Query("SELECT i FROM Item0 i WHERE i.price = 4");
  ASSERT_TRUE(alive.ok()) << alive.status().ToString();
  EXPECT_EQ(alive.value().shards_queried, 1u);
}

TEST_F(RouterTest, SlowShardTripsTheSubqueryTimeout) {
  RouterOptions options;
  options.subquery_timeout_ms = 100;
  StartTopology(2, /*version=*/1, options);
  ASSERT_TRUE(router_->Query(PriceQuery(1)).ok());

  // Make shard 1 pathologically slow: a 2-page cache (every descent
  // refetches) at 400ms per simulated page read dwarfs the 100ms budget.
  shard_dbs_[1]->buffers().SetCapacity(2);
  shard_dbs_[1]->buffers().SetSimulatedReadLatency(400000);

  Result<Router::QueryOutcome> r = router_->Query(PriceQuery(2));
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsUnavailable()) << r.status().ToString();
  EXPECT_NE(r.status().message().find("shard 1"), std::string::npos)
      << r.status().message();

  // Let the straggler finish quickly so server Shutdown's drain is short.
  shard_dbs_[1]->buffers().SetSimulatedReadLatency(0);
}

TEST_F(RouterTest, PoisonedConnectionsAreEvictedAndRedialed) {
  StartTopology(2, /*version=*/1);
  ASSERT_TRUE(router_->Query(PriceQuery(1)).ok());
  const uint64_t created_before = router_->counters().conns_created.load();

  // Kill shard 0 under the router's pooled connection, then bring a fresh
  // server up on the SAME endpoint. The poisoned connection must be
  // evicted (not returned to the pool to fail every later query) and the
  // next scatter must redial.
  const uint16_t port0 = servers_[0]->port();
  servers_[0]->Shutdown();
  Result<Router::QueryOutcome> down = router_->Query(PriceQuery(2));
  ASSERT_FALSE(down.ok());
  EXPECT_TRUE(down.status().IsUnavailable());
  EXPECT_GE(router_->counters().conns_evicted.load(), 1u);

  ServerOptions options;
  options.port = port0;
  options.worker_threads = 2;
  std::unique_ptr<Server> revived;
  for (int attempt = 0; attempt < 50 && revived == nullptr; ++attempt) {
    Result<std::unique_ptr<Server>> server =
        Server::Start(shard_dbs_[0].get(), options);
    if (server.ok()) {
      revived = std::move(server).value();
    } else {
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
  }
  ASSERT_NE(revived, nullptr) << "could not rebind port " << port0;
  ASSERT_TRUE(revived->InstallShard(map_, 0).ok());
  servers_[0] = std::move(revived);

  ExpectMatchesSingleNode(PriceQuery(2));
  EXPECT_GT(router_->counters().conns_created.load(), created_before);
}

// ------------------------------------------------- version fence & stale

TEST_F(RouterTest, StaleRouterRefreshesFromTheMapFileAndRetries) {
  ScopedPath path("uindex_router_test_refresh");
  RouterOptions options;
  options.map_path = path.get();
  StartTopology(2, /*version=*/1, options);
  ASSERT_TRUE(map_.Save(path.get()).ok());
  ASSERT_TRUE(router_->Query(PriceQuery(1)).ok());

  // Rebalance: move the boundary from subs_[2] to subs_[1] under version 2
  // — file first (so a stale-rejected router can always refresh), then the
  // servers. The router still holds v1 and must absorb the rejection
  // transparently.
  ShardMap v2 = map_;
  v2.version = 2;
  v2.entries[1].lo = planner_->coder().CodeOf(subs_[1]);
  ASSERT_TRUE(v2.Save(path.get()).ok());
  InstallEverywhere(v2);

  ExpectMatchesSingleNode(PriceQuery(2));
  EXPECT_GE(router_->counters().stale_retries.load(), 1u);
  EXPECT_EQ(router_->CurrentMap().version, 2u);
  EXPECT_EQ(router_->counters().queries_failed.load(), 0u);
}

TEST_F(RouterTest, StaleRouterRefreshesFromTheShardsWhenThereIsNoFile) {
  StartTopology(2, /*version=*/1);  // options.map_path empty.
  ASSERT_TRUE(router_->Query(PriceQuery(1)).ok());
  ShardMap v2 = map_;
  v2.version = 2;
  InstallEverywhere(v2);

  // With no map file, RefreshMap asks the shards (kGetShard) and adopts
  // the highest installed version.
  ExpectMatchesSingleNode(PriceQuery(2));
  EXPECT_GE(router_->counters().stale_retries.load(), 1u);
  EXPECT_EQ(router_->CurrentMap().version, 2u);
}

TEST_F(RouterTest, ServerWithoutAMapRejectsShardQueries) {
  shard_dbs_.push_back(std::make_unique<Database>());
  BuildReplica(shard_dbs_.back().get());
  Result<std::unique_ptr<Server>> server =
      Server::Start(shard_dbs_.back().get(), ServerOptions());
  ASSERT_TRUE(server.ok());
  servers_.push_back(std::move(server).value());

  Result<std::unique_ptr<Client>> client =
      Client::Connect("127.0.0.1", servers_[0]->port());
  ASSERT_TRUE(client.ok());
  uint64_t server_version = 99;
  Result<Client::QueryResult> r =
      client.value()->ShardQuery(1, PriceQuery(1), &server_version);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsStaleVersion()) << r.status().ToString();
  EXPECT_EQ(server_version, 0u);  // "No map installed" advertises v0.
  // The plain query path is unaffected.
  EXPECT_TRUE(client.value()->Query(PriceQuery(1)).ok());
}

TEST_F(RouterTest, InstallRollbackIsRefusedOverTheWire) {
  shard_dbs_.push_back(std::make_unique<Database>());
  BuildReplica(shard_dbs_.back().get());
  Result<std::unique_ptr<Server>> server =
      Server::Start(shard_dbs_.back().get(), ServerOptions());
  ASSERT_TRUE(server.ok());
  servers_.push_back(std::move(server).value());
  map_ = MakeMap(1, /*version=*/5);

  Result<std::unique_ptr<Client>> client =
      Client::Connect("127.0.0.1", servers_[0]->port());
  ASSERT_TRUE(client.ok());
  Result<Client::ShardState> installed =
      client.value()->InstallShard(map_, 0);
  ASSERT_TRUE(installed.ok()) << installed.status().ToString();
  EXPECT_TRUE(installed.value().active);
  EXPECT_EQ(installed.value().map.version, 5u);

  ShardMap rollback = map_;
  rollback.version = 4;
  Result<Client::ShardState> refused =
      client.value()->InstallShard(rollback, 0);
  ASSERT_FALSE(refused.ok());
  EXPECT_TRUE(refused.status().IsStaleVersion())
      << refused.status().ToString();

  Result<Client::ShardState> state = client.value()->GetShard();
  ASSERT_TRUE(state.ok());
  EXPECT_TRUE(state.value().active);
  EXPECT_EQ(state.value().map.version, 5u);  // The rollback never landed.
}

// ---------------------------------------------------- front end & stress

TEST_F(RouterTest, RouterServerSpeaksThePlainProtocol) {
  StartTopology(2, /*version=*/1);
  Result<std::unique_ptr<RouterServer>> front =
      RouterServer::Start(router_.get(), RouterServerOptions());
  ASSERT_TRUE(front.ok()) << front.status().ToString();

  Result<std::unique_ptr<Client>> client =
      Client::Connect("127.0.0.1", front.value()->port());
  ASSERT_TRUE(client.ok());
  for (int key = 0; key < 5; ++key) {
    Result<Database::OqlResult> local = planner_->ExecuteOql(PriceQuery(key));
    ASSERT_TRUE(local.ok());
    Result<Client::QueryResult> remote = client.value()->Query(PriceQuery(key));
    ASSERT_TRUE(remote.ok()) << remote.status().ToString();
    EXPECT_EQ(remote.value().oids, local.value().oids);
    EXPECT_EQ(remote.value().count, local.value().count);
  }
  EXPECT_TRUE(client.value()->Ping().ok());
  Result<Session::Stats> stats = client.value()->SessionStats();
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats.value().queries, 5u);

  // Shard metadata ops belong to shard servers; at the front end they are
  // a topology mistake, answered typed (and the connection survives).
  Result<Client::QueryResult> shard_op =
      client.value()->ShardQuery(1, PriceQuery(1));
  ASSERT_FALSE(shard_op.ok());
  EXPECT_TRUE(shard_op.status().IsNotSupported())
      << shard_op.status().ToString();
  EXPECT_TRUE(client.value()->Ping().ok());
  front.value()->Shutdown();
}

TEST_F(RouterTest, RebalanceUnderConcurrentLoadLosesNothing) {
  StartTopology(2, /*version=*/1);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 40;
  std::atomic<int> failures{0};
  std::atomic<int> row_mismatches{0};
  std::atomic<bool> rebalanced{false};

  std::vector<std::vector<Oid>> expected(kPrices);
  for (int key = 0; key < kPrices; ++key) {
    expected[key] = planner_->ExecuteOql(PriceQuery(key)).value().oids;
  }

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int q = 0; q < kPerThread; ++q) {
        const int key = (t * kPerThread + q) % kPrices;
        Result<Router::QueryOutcome> r = router_->Query(PriceQuery(key));
        if (!r.ok()) {
          failures.fetch_add(1);
        } else if (r.value().oids != expected[key]) {
          row_mismatches.fetch_add(1);
        }
        if (t == 0 && q == kPerThread / 2 &&
            !rebalanced.exchange(true)) {
          ShardMap v2 = map_;
          v2.version = 2;
          v2.entries[1].lo = planner_->coder().CodeOf(subs_[3]);
          InstallEverywhere(v2);
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();

  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(row_mismatches.load(), 0);
  EXPECT_TRUE(rebalanced.load());
  EXPECT_GE(router_->counters().stale_retries.load(), 1u);
  EXPECT_EQ(router_->CurrentMap().version, 2u);
}

TEST_F(RouterTest, RouterServerShutdownDrainsInFlightQueries) {
  StartTopology(2, /*version=*/1);
  Result<std::unique_ptr<RouterServer>> front =
      RouterServer::Start(router_.get(), RouterServerOptions());
  ASSERT_TRUE(front.ok()) << front.status().ToString();

  // Widen the in-flight window: a tight page cache plus simulated read
  // latency makes every scatter take a few hundred milliseconds.
  for (auto& db : shard_dbs_) {
    db->buffers().SetCapacity(2);
    db->buffers().SetSimulatedReadLatency(20000);
  }

  Result<std::unique_ptr<Client>> client =
      Client::Connect("127.0.0.1", front.value()->port());
  ASSERT_TRUE(client.ok());
  Result<Client::QueryResult> in_flight = Status::NotFound("unset");
  std::thread query(
      [&] { in_flight = client.value()->Query(PriceQuery(7)); });
  // Wait until the query holds its admission slot.
  while (front.value()->admission().inflight() == 0) {
    std::this_thread::yield();
  }

  // Graceful shutdown must wait for the admitted scatter AND deliver its
  // response — drained means responded, not merely finished.
  front.value()->Shutdown();
  query.join();
  for (auto& db : shard_dbs_) db->buffers().SetSimulatedReadLatency(0);
  ASSERT_TRUE(in_flight.ok()) << in_flight.status().ToString();
  Result<Database::OqlResult> local = planner_->ExecuteOql(PriceQuery(7));
  ASSERT_TRUE(local.ok());
  EXPECT_EQ(in_flight.value().oids, local.value().oids);

  // After the drain: no connections, and new dials are refused.
  EXPECT_EQ(front.value()->active_connections(), 0u);
  Result<std::unique_ptr<Client>> late =
      Client::Connect("127.0.0.1", front.value()->port(), 500);
  EXPECT_FALSE(late.ok());
}

TEST_F(RouterTest, RouterServerShedsWithTypedBusyWhenSaturated) {
  StartTopology(2, /*version=*/1);
  RouterServerOptions options;
  options.max_inflight_queries = 1;
  options.max_queued_queries = 0;
  Result<std::unique_ptr<RouterServer>> front =
      RouterServer::Start(router_.get(), options);
  ASSERT_TRUE(front.ok()) << front.status().ToString();

  // Slow the shards so the first query parks in the single slot.
  for (auto& db : shard_dbs_) {
    db->buffers().SetCapacity(2);
    db->buffers().SetSimulatedReadLatency(20000);
  }
  Result<std::unique_ptr<Client>> first =
      Client::Connect("127.0.0.1", front.value()->port());
  Result<std::unique_ptr<Client>> second =
      Client::Connect("127.0.0.1", front.value()->port());
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  Result<Client::QueryResult> parked = Status::NotFound("unset");
  std::thread blocked(
      [&] { parked = first.value()->Query(PriceQuery(3)); });
  while (front.value()->admission().inflight() == 0) {
    std::this_thread::yield();
  }

  Result<Client::QueryResult> shed = second.value()->Query(PriceQuery(4));
  ASSERT_FALSE(shed.ok());
  EXPECT_TRUE(shed.status().IsResourceExhausted())
      << shed.status().ToString();
  EXPECT_NE(shed.status().message().find("busy"), std::string::npos);
  EXPECT_EQ(front.value()->counters().busy_rejected.load(), 1u);
  EXPECT_EQ(front.value()->admission().shed_total(), 1u);

  blocked.join();
  for (auto& db : shard_dbs_) db->buffers().SetSimulatedReadLatency(0);
  ASSERT_TRUE(parked.ok()) << parked.status().ToString();
  // The shed connection still works once the slot frees up.
  EXPECT_TRUE(second.value()->Query(PriceQuery(4)).ok());
  front.value()->Shutdown();
}

}  // namespace
}  // namespace net
}  // namespace uindex
