#include <gtest/gtest.h>

#include "schema/schema.h"
#include "workload/paper_schema.h"

namespace uindex {
namespace {

TEST(SchemaTest, AddClassesAndSubclasses) {
  Schema s;
  const ClassId a = s.AddClass("A").value();
  const ClassId b = s.AddSubclass("B", a).value();
  const ClassId c = s.AddSubclass("C", b).value();
  EXPECT_EQ(s.class_count(), 3u);
  EXPECT_EQ(s.NameOf(a), "A");
  EXPECT_EQ(s.SuperclassOf(a), kInvalidClassId);
  EXPECT_EQ(s.SuperclassOf(c), b);
  EXPECT_EQ(s.FindClass("B").value(), b);
  EXPECT_TRUE(s.FindClass("missing").status().IsNotFound());
  EXPECT_TRUE(s.AddClass("A").status().IsAlreadyExists());
}

TEST(SchemaTest, SubclassRelations) {
  Schema s;
  const ClassId a = s.AddClass("A").value();
  const ClassId b = s.AddSubclass("B", a).value();
  const ClassId c = s.AddSubclass("C", b).value();
  const ClassId d = s.AddClass("D").value();
  EXPECT_TRUE(s.IsSubclassOf(c, a));
  EXPECT_TRUE(s.IsSubclassOf(a, a));
  EXPECT_FALSE(s.IsSubclassOf(a, c));
  EXPECT_FALSE(s.IsSubclassOf(d, a));
  EXPECT_EQ(s.HierarchyRootOf(c), a);
  EXPECT_EQ(s.HierarchyRootOf(d), d);
}

TEST(SchemaTest, SubtreePreorder) {
  Schema s;
  const ClassId a = s.AddClass("A").value();
  const ClassId b = s.AddSubclass("B", a).value();
  const ClassId c = s.AddSubclass("C", a).value();
  const ClassId b1 = s.AddSubclass("B1", b).value();
  const std::vector<ClassId> tree = s.SubtreeOf(a);
  ASSERT_EQ(tree.size(), 4u);
  EXPECT_EQ(tree[0], a);
  EXPECT_EQ(tree[1], b);
  EXPECT_EQ(tree[2], b1);
  EXPECT_EQ(tree[3], c);
}

TEST(SchemaTest, ReferencesAndInheritance) {
  Schema s;
  const ClassId vehicle = s.AddClass("Vehicle").value();
  const ClassId automobile = s.AddSubclass("Automobile", vehicle).value();
  const ClassId company = s.AddClass("Company").value();
  ASSERT_TRUE(s.AddReference(vehicle, company, "made-by").ok());
  EXPECT_TRUE(s.AddReference(vehicle, company, "made-by")
                  .IsAlreadyExists());
  // Subclasses inherit reference attributes.
  EXPECT_EQ(s.FindReference(automobile, "made-by").value().target, company);
  EXPECT_TRUE(s.FindReference(company, "made-by").status().IsNotFound());
}

TEST(SchemaTest, TopologicalRootOrderRespectsRefs) {
  const PaperSchema p = PaperSchema::Build();
  const auto order = p.schema.TopologicalRootOrder();
  ASSERT_TRUE(order.ok());
  // Employee before Company (Company REF Employee), Company before
  // Division and Vehicle, City before Division.
  auto pos = [&order](ClassId cls) {
    for (size_t i = 0; i < order.value().size(); ++i) {
      if (order.value()[i] == cls) return i;
    }
    return size_t{999};
  };
  EXPECT_LT(pos(p.employee), pos(p.company));
  EXPECT_LT(pos(p.company), pos(p.division));
  EXPECT_LT(pos(p.city), pos(p.division));
  EXPECT_LT(pos(p.company), pos(p.vehicle));
  // Paper's exact order: Employee, Company, City, Division, Vehicle.
  ASSERT_EQ(order.value().size(), 5u);
  EXPECT_EQ(order.value()[0], p.employee);
  EXPECT_EQ(order.value()[1], p.company);
  EXPECT_EQ(order.value()[2], p.city);
  EXPECT_EQ(order.value()[3], p.division);
  EXPECT_EQ(order.value()[4], p.vehicle);
}

TEST(SchemaTest, DetectsRefCycles) {
  // The paper's §4.3 example: Employee OWNs Vehicles, Vehicles are USEd by
  // Employees — a REF cycle between two hierarchies.
  Schema s;
  const ClassId employee = s.AddClass("Employee").value();
  const ClassId vehicle = s.AddClass("Vehicle").value();
  ASSERT_TRUE(s.AddReference(employee, vehicle, "OWN").ok());
  ASSERT_TRUE(s.AddReference(vehicle, employee, "USE").ok());
  EXPECT_TRUE(s.TopologicalRootOrder().status().IsInvalidArgument());

  // Cycle breaking drops one edge; the rest orders fine.
  const std::vector<size_t> dropped = s.FindCycleBreakingEdges();
  ASSERT_EQ(dropped.size(), 1u);
  EXPECT_TRUE(s.TopologicalRootOrder(dropped).ok());
  // The dropped edge alone is also a valid (single-edge) sub-graph: ignore
  // the other edge instead and it must order too.
  const std::vector<size_t> other = {1 - dropped[0]};
  EXPECT_TRUE(s.TopologicalRootOrder(other).ok());
}

TEST(SchemaTest, IntraHierarchyRefIsRejected) {
  Schema s;
  const ClassId a = s.AddClass("A").value();
  const ClassId b = s.AddSubclass("B", a).value();
  ASSERT_TRUE(s.AddReference(a, b, "self").ok());
  EXPECT_TRUE(s.TopologicalRootOrder().status().IsInvalidArgument());
  EXPECT_EQ(s.FindCycleBreakingEdges().size(), 1u);
}

TEST(SchemaTest, AcyclicSchemaNeedsNoBreaking) {
  const PaperSchema p = PaperSchema::Build();
  EXPECT_TRUE(p.schema.FindCycleBreakingEdges().empty());
}

}  // namespace
}  // namespace uindex
