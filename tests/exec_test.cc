#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "core/uindex.h"
#include "exec/execution_context.h"
#include "exec/parallel_parscan.h"
#include "exec/thread_pool.h"
#include "storage/buffer_manager.h"
#include "workload/database_generator.h"

namespace uindex {
namespace {

using exec::ExecutionContext;
using exec::Future;
using exec::ParallelParscan;
using exec::ParallelScanOptions;
using exec::Promise;
using exec::ThreadPool;

TEST(FutureTest, ValueSetBeforeTake) {
  Promise<int> p;
  Future<int> f = p.GetFuture();
  p.Set(42);
  EXPECT_TRUE(f.valid());
  EXPECT_EQ(f.Take(), 42);
}

TEST(FutureTest, TakeBlocksUntilSet) {
  Promise<std::string> p;
  Future<std::string> f = p.GetFuture();
  std::thread producer([&p] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    p.Set("done");
  });
  EXPECT_EQ(f.Take(), "done");
  producer.join();
}

TEST(FutureTest, DefaultConstructedIsInvalid) {
  Future<int> f;
  EXPECT_FALSE(f.valid());
}

TEST(ThreadPoolTest, RunsAllScheduledTasks) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(4);
    EXPECT_EQ(pool.size(), 4u);
    for (int i = 0; i < 200; ++i) {
      pool.Schedule([&counter] {
        counter.fetch_add(1, std::memory_order_relaxed);
      });
    }
    // Destructor drains the queue before joining.
  }
  EXPECT_EQ(counter.load(), 200);
}

TEST(ThreadPoolTest, SubmitReturnsValues) {
  ThreadPool pool(3);
  std::vector<Future<int>> futures;
  futures.reserve(50);
  for (int i = 0; i < 50; ++i) {
    futures.push_back(pool.Submit([i] { return i * i; }));
  }
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(futures[i].Take(), i * i);
  }
}

TEST(ThreadPoolTest, ZeroThreadsClampsToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 1u);
  EXPECT_EQ(pool.Submit([] { return 7; }).Take(), 7);
}

TEST(ExecutionContextTest, SerialAndPooledModes) {
  ExecutionContext serial(static_cast<size_t>(0));
  EXPECT_EQ(serial.pool(), nullptr);
  EXPECT_EQ(serial.parallelism(), 1u);

  ExecutionContext one(static_cast<size_t>(1));
  EXPECT_EQ(one.pool(), nullptr);  // 1 worker = serial, no pool overhead.

  ExecutionContext parallel(static_cast<size_t>(4));
  ASSERT_NE(parallel.pool(), nullptr);
  EXPECT_EQ(parallel.parallelism(), 4u);

  ThreadPool shared(2);
  ExecutionContext borrowing(&shared);
  EXPECT_EQ(borrowing.pool(), &shared);
  EXPECT_EQ(borrowing.parallelism(), 2u);
}

// --- ParallelParscan vs. serial Parscan over a multi-set workload. ---

class ParallelParscanTest : public ::testing::Test {
 protected:
  void SetUp() override {
    hier_ = std::move(BuildSetHierarchy(kSets)).value();
    pager_ = std::make_unique<Pager>(1024);
    buffers_ = std::make_unique<BufferManager>(pager_.get());
    PathSpec spec =
        PathSpec::ClassHierarchy(hier_.root, "key", Value::Kind::kInt);
    index_ = std::make_unique<UIndex>(buffers_.get(), &hier_.schema,
                                      hier_.coder.get(), spec);

    SetWorkloadConfig cfg;
    cfg.num_objects = 8000;
    cfg.num_sets = kSets;
    cfg.num_distinct_keys = 500;
    cfg.seed = 20260806;
    for (const Posting& p : GeneratePostings(cfg)) {
      UIndex::Entry entry;
      entry.path = {{hier_.sets[p.set_index], p.oid}};
      entry.key =
          index_->key_encoder().EncodeEntry(Value::Int(p.key), entry.path);
      ASSERT_TRUE(index_->InsertEntry(entry).ok());
    }
  }

  // A multi-interval query: a key range over every other set.
  Query MultiSetQuery(int64_t lo, int64_t hi) const {
    Query q = Query::Range(Value::Int(lo), Value::Int(hi));
    ClassSelector sel;
    for (size_t i = 0; i < kSets; i += 2) {
      sel.include.push_back({hier_.sets[i], false});
    }
    q.With(sel, ValueSlot::Wanted());
    return q;
  }

  void ExpectParallelMatchesSerial(const Query& q, ThreadPool* pool,
                                   const ParallelScanOptions& opts = {}) {
    QueryCost serial_cost(buffers_.get());
    Result<QueryResult> serial = index_->Parscan(q);
    ASSERT_TRUE(serial.ok()) << serial.status().ToString();
    const uint64_t serial_pages = serial_cost.PagesRead();

    QueryCost parallel_cost(buffers_.get());
    Result<QueryResult> parallel = ParallelParscan(*index_, q, pool, opts);
    ASSERT_TRUE(parallel.ok()) << parallel.status().ToString();

    EXPECT_EQ(parallel.value().rows, serial.value().rows);
    EXPECT_EQ(parallel.value().entries_scanned,
              serial.value().entries_scanned);
    EXPECT_EQ(parallel_cost.PagesRead(), serial_pages);
  }

  static constexpr size_t kSets = 8;
  SetHierarchy hier_;
  std::unique_ptr<Pager> pager_;
  std::unique_ptr<BufferManager> buffers_;
  std::unique_ptr<UIndex> index_;
};

TEST_F(ParallelParscanTest, MatchesSerialAcrossPoolSizes) {
  const Query q = MultiSetQuery(100, 200);
  for (const size_t threads : {1u, 2u, 3u, 8u}) {
    ThreadPool pool(threads);
    SCOPED_TRACE("threads=" + std::to_string(threads));
    ExpectParallelMatchesSerial(q, &pool);
  }
}

TEST_F(ParallelParscanTest, MatchesSerialAcrossShardCounts) {
  ThreadPool pool(4);
  const Query q = MultiSetQuery(0, 499);
  for (const size_t shards : {1u, 2u, 5u, 64u, 1000u}) {
    ParallelScanOptions opts;
    opts.shards = shards;  // Clamped to the interval count internally.
    SCOPED_TRACE("shards=" + std::to_string(shards));
    ExpectParallelMatchesSerial(q, &pool, opts);
  }
}

TEST_F(ParallelParscanTest, EmptyResultAndSingleInterval) {
  ThreadPool pool(4);
  // No key in range: compiles to intervals that match nothing.
  ExpectParallelMatchesSerial(MultiSetQuery(100000, 100010), &pool);
  // Exact key in a single set: a single interval, degrades to serial.
  Query one = Query::ExactValue(Value::Int(42));
  one.With(ClassSelector::Exactly(hier_.sets[3]), ValueSlot::Wanted());
  ExpectParallelMatchesSerial(one, &pool);
}

TEST_F(ParallelParscanTest, ConcurrentQueriesOnOnePool) {
  // Several threads each running parallel scans against one shared pool:
  // results must stay correct under queue interleaving.
  ThreadPool pool(4);
  const Query q = MultiSetQuery(50, 300);
  Result<QueryResult> expected = index_->Parscan(q);
  ASSERT_TRUE(expected.ok());

  std::atomic<int> mismatches{0};
  std::vector<std::thread> clients;
  clients.reserve(4);
  for (int t = 0; t < 4; ++t) {
    clients.emplace_back([&] {
      for (int rep = 0; rep < 10; ++rep) {
        Result<QueryResult> r = ParallelParscan(*index_, q, &pool);
        if (!r.ok() || r.value().rows != expected.value().rows) {
          mismatches.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();
  EXPECT_EQ(mismatches.load(), 0);
}

}  // namespace
}  // namespace uindex
