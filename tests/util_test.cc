#include <gtest/gtest.h>

#include <set>
#include <string>

#include "core/key_encoding.h"
#include "util/coding.h"
#include "util/hex.h"
#include "util/random.h"
#include "util/slice.h"
#include "util/status.h"

namespace uindex {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
  EXPECT_TRUE(s.message().empty());
}

TEST(StatusTest, CodesAndMessages) {
  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_TRUE(Status::Corruption("x").IsCorruption());
  EXPECT_TRUE(Status::InvalidArgument("x").IsInvalidArgument());
  EXPECT_TRUE(Status::AlreadyExists("x").IsAlreadyExists());
  EXPECT_TRUE(Status::NotSupported("x").IsNotSupported());
  EXPECT_TRUE(Status::ResourceExhausted("x").IsResourceExhausted());
  EXPECT_EQ(Status::NotFound("key 17").ToString(), "NotFound: key 17");
  EXPECT_FALSE(Status::NotFound("x").ok());
}

TEST(ResultTest, HoldsValueOrStatus) {
  Result<int> ok_result(42);
  ASSERT_TRUE(ok_result.ok());
  EXPECT_EQ(ok_result.value(), 42);

  Result<int> err(Status::NotFound("nope"));
  EXPECT_FALSE(err.ok());
  EXPECT_TRUE(err.status().IsNotFound());
}

TEST(ResultTest, WorksWithMoveOnlyAndNonDefaultConstructible) {
  struct NoDefault {
    explicit NoDefault(int x) : v(x) {}
    int v;
  };
  Result<NoDefault> r(NoDefault(7));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().v, 7);
}

TEST(SliceTest, BasicAccessors) {
  Slice s("hello");
  EXPECT_EQ(s.size(), 5u);
  EXPECT_EQ(s[1], 'e');
  EXPECT_FALSE(s.empty());
  EXPECT_TRUE(Slice().empty());
  EXPECT_EQ(s.ToString(), "hello");
}

TEST(SliceTest, CompareIsMemcmpOrder) {
  EXPECT_LT(Slice("a").Compare(Slice("b")), 0);
  EXPECT_GT(Slice("b").Compare(Slice("a")), 0);
  EXPECT_EQ(Slice("ab").Compare(Slice("ab")), 0);
  // Prefix sorts first.
  EXPECT_LT(Slice("ab").Compare(Slice("abc")), 0);
  // Unsigned byte comparison.
  EXPECT_LT(Slice("a").Compare(Slice("\xff")), 0);
}

TEST(SliceTest, PrefixHelpers) {
  Slice s("abcdef");
  EXPECT_TRUE(s.StartsWith(Slice("abc")));
  EXPECT_FALSE(s.StartsWith(Slice("abd")));
  EXPECT_TRUE(s.StartsWith(Slice()));
  EXPECT_EQ(s.CommonPrefixLength(Slice("abxyz")), 2u);
  EXPECT_EQ(s.CommonPrefixLength(Slice("abcdef")), 6u);
  EXPECT_EQ(s.Prefix(3).ToString(), "abc");
  Slice t = s;
  t.RemovePrefix(2);
  EXPECT_EQ(t.ToString(), "cdef");
}

TEST(CodingTest, FixedRoundTrip) {
  std::string buf;
  PutFixed16(&buf, 0xBEEF);
  PutFixed32(&buf, 0xDEADBEEF);
  PutFixed64(&buf, 0x0123456789ABCDEFull);
  EXPECT_EQ(DecodeFixed16(buf.data()), 0xBEEF);
  EXPECT_EQ(DecodeFixed32(buf.data() + 2), 0xDEADBEEF);
  EXPECT_EQ(DecodeFixed64(buf.data() + 6), 0x0123456789ABCDEFull);
}

TEST(CodingTest, BigEndianIsOrderPreserving) {
  Random rng(7);
  for (int i = 0; i < 1000; ++i) {
    const uint64_t a = rng.Next();
    const uint64_t b = rng.Next();
    std::string ea, eb;
    PutBigEndian64(&ea, a);
    PutBigEndian64(&eb, b);
    EXPECT_EQ(a < b, Slice(ea) < Slice(eb)) << a << " vs " << b;
    EXPECT_EQ(DecodeBigEndian64(ea.data()), a);
  }
  std::string e32;
  PutBigEndian32(&e32, 0x01020304);
  EXPECT_EQ(DecodeBigEndian32(e32.data()), 0x01020304u);
}

TEST(BytesSuccessorTest, CoversAllPrefixedStrings) {
  EXPECT_EQ(BytesSuccessor(Slice("abc")), "abd");
  // Trailing 0xFF bytes are dropped before the increment.
  std::string with_ff = "ab";
  with_ff.push_back('\xff');
  EXPECT_EQ(BytesSuccessor(Slice(with_ff)), "ac");
  // All-0xFF means +infinity (empty).
  std::string all_ff(3, '\xff');
  EXPECT_EQ(BytesSuccessor(Slice(all_ff)), "");
  // Property: prefix <= any extension < successor.
  const std::string p = "key9";
  const std::string succ = BytesSuccessor(Slice(p));
  EXPECT_TRUE(Slice(p) < Slice(succ));
  EXPECT_TRUE(Slice(p + "zzzz") < Slice(succ));
}

TEST(RandomTest, DeterministicPerSeed) {
  Random a(123), b(123), c(124);
  EXPECT_EQ(a.Next(), b.Next());
  EXPECT_NE(a.Next(), c.Next());
}

TEST(RandomTest, UniformStaysInRange) {
  Random rng(5);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.Uniform(17), 17u);
    const uint64_t v = rng.UniformRange(10, 20);
    EXPECT_GE(v, 10u);
    EXPECT_LE(v, 20u);
  }
}

TEST(RandomTest, UniformCoversDomain) {
  Random rng(6);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.Uniform(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(RandomTest, SampleWithoutReplacement) {
  Random rng(9);
  for (uint64_t k : {0ull, 1ull, 5ull, 99ull, 100ull}) {
    const auto sample = rng.SampleWithoutReplacement(100, k);
    EXPECT_EQ(sample.size(), k);
    std::set<uint64_t> uniq(sample.begin(), sample.end());
    EXPECT_EQ(uniq.size(), k);
    EXPECT_TRUE(std::is_sorted(sample.begin(), sample.end()));
    for (uint64_t v : sample) EXPECT_LT(v, 100u);
  }
}

TEST(RandomTest, BernoulliExtremes) {
  Random rng(10);
  EXPECT_FALSE(rng.Bernoulli(0.0));
  EXPECT_TRUE(rng.Bernoulli(1.0));
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
}

TEST(HexTest, EscapeBytes) {
  EXPECT_EQ(EscapeBytes(Slice("abc")), "abc");
  std::string raw = "a";
  raw.push_back('\x01');
  EXPECT_EQ(EscapeBytes(Slice(raw)), "a\\x01");
  EXPECT_EQ(ToHex(Slice("\x0f")), "0f");
}

}  // namespace
}  // namespace uindex
