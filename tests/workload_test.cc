#include <gtest/gtest.h>

#include <set>

#include "workload/database_generator.h"
#include "workload/query_generator.h"
#include "workload/paper_schema.h"

namespace uindex {
namespace {

TEST(PaperSchemaTest, HasAllTwentyClasses) {
  const PaperSchema p = PaperSchema::Build();
  EXPECT_EQ(p.schema.class_count(), 19u);
  EXPECT_EQ(p.vehicle_classes().size(), 12u);
  EXPECT_TRUE(p.schema.IsSubclassOf(p.passenger_bus, p.vehicle));
  EXPECT_TRUE(p.schema.IsSubclassOf(p.japanese_auto_company, p.company));
}

TEST(PaperDatabaseTest, GeneratesConfiguredCounts) {
  PaperDatabaseConfig cfg;
  cfg.num_vehicles = 500;
  cfg.num_companies = 20;
  cfg.num_employees = 30;
  PaperDatabase db;
  ASSERT_TRUE(GeneratePaperDatabase(cfg, &db).ok());
  EXPECT_EQ(db.store->size(), 550u);
  EXPECT_EQ(db.store->DeepExtentOf(db.ids.vehicle).size(), 500u);
  EXPECT_EQ(db.store->DeepExtentOf(db.ids.company).size(), 20u);
  // Every vehicle has a color and a manufacturer with a president.
  for (const Oid v : db.store->DeepExtentOf(db.ids.vehicle)) {
    const Object* obj = db.store->Get(v).value();
    ASSERT_NE(obj->FindAttr("Color"), nullptr);
    const Oid company = db.store->Deref(v, "manufactured-by").value();
    const Oid president = db.store->Deref(company, "president").value();
    const Object* emp = db.store->Get(president).value();
    const Value* age = emp->FindAttr("Age");
    ASSERT_NE(age, nullptr);
    EXPECT_GE(age->AsInt(), 20);
    EXPECT_LE(age->AsInt(), 70);
  }
}

TEST(PaperDatabaseTest, DeterministicPerSeed) {
  PaperDatabaseConfig cfg;
  cfg.num_vehicles = 100;
  PaperDatabase a, b;
  ASSERT_TRUE(GeneratePaperDatabase(cfg, &a).ok());
  ASSERT_TRUE(GeneratePaperDatabase(cfg, &b).ok());
  for (Oid oid = 1; oid <= 100; ++oid) {
    const Object* oa = a.store->Get(oid).value();
    const Object* ob = b.store->Get(oid).value();
    EXPECT_EQ(oa->cls, ob->cls);
  }
}

TEST(PostingsTest, UniqueKeysArePermutation) {
  SetWorkloadConfig cfg;
  cfg.num_objects = 5000;
  cfg.num_distinct_keys = 5000;
  cfg.num_sets = 8;
  const auto postings = GeneratePostings(cfg);
  ASSERT_EQ(postings.size(), 5000u);
  std::set<int64_t> keys;
  for (const Posting& p : postings) {
    keys.insert(p.key);
    EXPECT_LT(p.set_index, 8u);
    EXPECT_NE(p.oid, kInvalidOid);
  }
  EXPECT_EQ(keys.size(), 5000u);  // Every key exactly once.
  EXPECT_EQ(*keys.begin(), 0);
  EXPECT_EQ(*keys.rbegin(), 4999);
}

TEST(PostingsTest, NonUniqueKeysStayInDomainAndCoverSets) {
  SetWorkloadConfig cfg;
  cfg.num_objects = 20000;
  cfg.num_distinct_keys = 100;
  cfg.num_sets = 40;
  const auto postings = GeneratePostings(cfg);
  std::set<size_t> sets;
  std::set<int64_t> keys;
  for (const Posting& p : postings) {
    EXPECT_GE(p.key, 0);
    EXPECT_LT(p.key, 100);
    keys.insert(p.key);
    sets.insert(p.set_index);
  }
  EXPECT_EQ(keys.size(), 100u);
  EXPECT_EQ(sets.size(), 40u);
}

TEST(SetHierarchyTest, FlatHierarchyWithOrderedCodes) {
  const SetHierarchy h = std::move(BuildSetHierarchy(40)).value();
  ASSERT_EQ(h.sets.size(), 40u);
  for (size_t i = 0; i < h.sets.size(); ++i) {
    EXPECT_EQ(h.schema.SuperclassOf(h.sets[i]), h.root);
    if (i > 0) {
      EXPECT_TRUE(Slice(h.coder->CodeOf(h.sets[i - 1])) <
                  Slice(h.coder->CodeOf(h.sets[i])));
    }
  }
}

TEST(QueryGeneratorTest, NearSetsAreConsecutive) {
  Random rng(4);
  for (int rep = 0; rep < 50; ++rep) {
    const auto sets = ChooseNearSets(40, 10, rng);
    ASSERT_EQ(sets.size(), 10u);
    for (size_t i = 1; i < sets.size(); ++i) {
      EXPECT_EQ(sets[i], sets[i - 1] + 1);
    }
    EXPECT_LT(sets.back(), 40u);
  }
}

TEST(QueryGeneratorTest, DistantSetsAreSeparatedWhenPossible) {
  Random rng(4);
  for (int rep = 0; rep < 50; ++rep) {
    const auto sets = ChooseDistantSets(40, 10, rng);
    ASSERT_EQ(sets.size(), 10u);
    std::set<size_t> uniq(sets.begin(), sets.end());
    EXPECT_EQ(uniq.size(), 10u);
  }
  // Degenerate case: more than half the sets — still m distinct picks.
  const auto many = ChooseDistantSets(40, 30, rng);
  std::set<size_t> uniq(many.begin(), many.end());
  EXPECT_EQ(uniq.size(), 30u);
}

TEST(QueryGeneratorTest, RangeQueriesStayInDomain) {
  SetWorkloadConfig cfg;
  cfg.num_distinct_keys = 1000;
  cfg.num_sets = 8;
  Random rng(9);
  for (const double fraction : {0.1, 0.02, 0.005, 0.002}) {
    for (int rep = 0; rep < 100; ++rep) {
      const SetQuerySpec q = MakeRangeQuery(cfg, fraction, 3, true, rng);
      EXPECT_GE(q.lo, 0);
      EXPECT_LE(q.hi, 999);
      const int64_t expected_span =
          std::max<int64_t>(1, static_cast<int64_t>(fraction * 1000));
      EXPECT_EQ(q.hi - q.lo + 1, expected_span);
      EXPECT_EQ(q.set_indexes.size(), 3u);
    }
  }
  const SetQuerySpec exact = MakeExactMatchQuery(cfg, 2, false, rng);
  EXPECT_EQ(exact.lo, exact.hi);
}

TEST(ColorsTest, PaletteIsSortedAlphabetically) {
  // Range queries like "Blue to Red" rely on alphabetic color order.
  for (size_t i = 1; i < kColorCount; ++i) {
    EXPECT_LT(std::string(kColors[i - 1]), std::string(kColors[i]));
  }
}

}  // namespace
}  // namespace uindex
