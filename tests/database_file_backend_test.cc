#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "db/database.h"
#include "storage/env/fault_env.h"

namespace uindex {
namespace {

// End-to-end coverage of the file backend: the full DDL/DML/query stack
// over a FilePager behind a deliberately tiny buffer pool, equivalence
// with the memory backend, snapshot portability across backends, and
// crash-fault injection over the data file's write-back path.

std::string TempPath(const char* name) {
  return ::testing::TempDir() + "uindex_db_file_backend_" + name;
}

DatabaseOptions FileOptions(const std::string& data_path, size_t cache_pages,
                            BufferPool::Eviction eviction =
                                BufferPool::Eviction::kLru) {
  DatabaseOptions options;
  options.backend = DatabaseOptions::Backend::kFile;
  options.data_path = data_path;
  options.cache_pages = cache_pages;
  options.eviction = eviction;
  options.prefetch_threads = 0;
  return options;
}

DatabaseOptions MemoryOptions() {
  DatabaseOptions options;
  options.backend = DatabaseOptions::Backend::kMemory;
  options.prefetch_threads = 0;
  return options;
}

// DDL + n objects with x = i; returns the class id.
ClassId Populate(Database& db, int n) {
  Result<ClassId> cls = db.CreateClass("Thing");
  EXPECT_TRUE(cls.ok());
  EXPECT_TRUE(db.CreateIndex(PathSpec::ClassHierarchy(
                                 cls.value(), "x", Value::Kind::kInt))
                  .ok());
  for (int i = 0; i < n; ++i) {
    Result<Oid> oid = db.CreateObject(cls.value());
    EXPECT_TRUE(oid.ok());
    EXPECT_TRUE(db.SetAttr(oid.value(), "x", Value::Int(i)).ok());
  }
  return cls.value();
}

Result<Database::SelectResult> SelectRange(const Database& db, ClassId cls,
                                           int lo, int hi) {
  Database::Selection sel;
  sel.cls = cls;
  sel.attr = "x";
  sel.lo = Value::Int(lo);
  sel.hi = Value::Int(hi);
  return db.Select(sel);
}

TEST(DatabaseFileBackendTest, TinyCacheFullStack) {
  const std::string data = TempPath("tiny_cache");
  {
    Database db(FileOptions(data, /*cache_pages=*/8));
    ASSERT_TRUE(db.backend_status().ok())
        << db.backend_status().ToString();
    EXPECT_EQ(db.data_path(), data);
    const ClassId cls = Populate(db, 4000);

    Result<Database::SelectResult> r = SelectRange(db, cls, 100, 199);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_EQ(r.value().oids.size(), 100u);
    EXPECT_TRUE(r.value().used_index);

    // The working set dwarfs 8 frames: the pool must have shed frames and
    // written dirty ones back.
    const IoStats& stats = db.buffers().stats();
    EXPECT_GT(db.live_pages(), 8u * 10);
    EXPECT_GT(stats.evictions.load(std::memory_order_relaxed), 0u);
    EXPECT_GT(stats.writebacks.load(std::memory_order_relaxed), 0u);
    EXPECT_GT(stats.pool_misses.load(std::memory_order_relaxed), 0u);

    // Mutations over evicted pages (delete forces index + store updates).
    Result<Database::SelectResult> victims = SelectRange(db, cls, 0, 9);
    ASSERT_TRUE(victims.ok());
    for (const Oid oid : victims.value().oids) {
      ASSERT_TRUE(db.DeleteObject(oid).ok());
    }
    r = SelectRange(db, cls, 0, 3999);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r.value().oids.size(), 3990u);
  }
  Env::Default()->RemoveFile(data);
}

TEST(DatabaseFileBackendTest, ClockEvictionFullStack) {
  const std::string data = TempPath("clock");
  {
    Database db(
        FileOptions(data, /*cache_pages=*/8, BufferPool::Eviction::kClock));
    ASSERT_TRUE(db.backend_status().ok());
    const ClassId cls = Populate(db, 200);
    Result<Database::SelectResult> r = SelectRange(db, cls, 50, 149);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r.value().oids.size(), 100u);
  }
  Env::Default()->RemoveFile(data);
}

TEST(DatabaseFileBackendTest, MemoryAndFileAnswerIdentically) {
  const std::string data = TempPath("identity");
  {
    Database mem(MemoryOptions());
    Database file(FileOptions(data, /*cache_pages=*/8));
    ASSERT_TRUE(file.backend_status().ok());
    const ClassId mem_cls = Populate(mem, 300);
    const ClassId file_cls = Populate(file, 300);

    const struct {
      int lo, hi;
    } ranges[] = {{0, 299}, {10, 10}, {250, 260}, {290, 350}, {400, 500}};
    for (const auto& range : ranges) {
      IoStats mem_before = mem.buffers().stats();
      Result<Database::SelectResult> a =
          SelectRange(mem, mem_cls, range.lo, range.hi);
      IoStats mem_delta = mem.buffers().stats() - mem_before;

      IoStats file_before = file.buffers().stats();
      Result<Database::SelectResult> b =
          SelectRange(file, file_cls, range.lo, range.hi);
      IoStats file_delta = file.buffers().stats() - file_before;

      ASSERT_TRUE(a.ok());
      ASSERT_TRUE(b.ok());
      // Same rows AND the same paper metric: the backend moves real I/O,
      // never pages_read.
      EXPECT_EQ(a.value().oids, b.value().oids)
          << "[" << range.lo << "," << range.hi << "]";
      EXPECT_EQ(mem_delta.pages_read.load(std::memory_order_relaxed),
                file_delta.pages_read.load(std::memory_order_relaxed))
          << "[" << range.lo << "," << range.hi << "]";
    }
  }
  Env::Default()->RemoveFile(data);
}

TEST(DatabaseFileBackendTest, SnapshotPortableAcrossBackends) {
  const std::string snap = TempPath("snap.udb");
  const std::string data1 = TempPath("port1");
  const std::string data2 = TempPath("port2");

  // Memory → file.
  {
    Database db(MemoryOptions());
    Populate(db, 150);
    ASSERT_TRUE(db.Save(snap).ok());
  }
  {
    Result<std::unique_ptr<Database>> opened =
        Database::Open(snap, FileOptions(data1, /*cache_pages=*/8));
    ASSERT_TRUE(opened.ok()) << opened.status().ToString();
    Database& db = *opened.value();
    ASSERT_TRUE(db.backend_status().ok());
    Result<ClassId> cls = db.schema().FindClass("Thing");
    ASSERT_TRUE(cls.ok());
    Result<Database::SelectResult> r = SelectRange(db, cls.value(), 0, 149);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r.value().oids.size(), 150u);
    // File → memory: re-save from the file backend...
    ASSERT_TRUE(db.Save(snap).ok());
  }
  {
    Result<std::unique_ptr<Database>> opened =
        Database::Open(snap, MemoryOptions());
    ASSERT_TRUE(opened.ok()) << opened.status().ToString();
    Result<ClassId> cls = opened.value()->schema().FindClass("Thing");
    ASSERT_TRUE(cls.ok());
    Result<Database::SelectResult> r =
        SelectRange(*opened.value(), cls.value(), 0, 149);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r.value().oids.size(), 150u);
  }
  // File → file on a different data path.
  {
    Result<std::unique_ptr<Database>> opened =
        Database::Open(snap, FileOptions(data2, /*cache_pages=*/8));
    ASSERT_TRUE(opened.ok()) << opened.status().ToString();
    Result<ClassId> cls = opened.value()->schema().FindClass("Thing");
    ASSERT_TRUE(cls.ok());
    Result<Database::SelectResult> r =
        SelectRange(*opened.value(), cls.value(), 100, 149);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r.value().oids.size(), 50u);
  }
  Env::Default()->RemoveFile(snap);
  Env::Default()->RemoveFile(data1);
  Env::Default()->RemoveFile(data2);
}

// ------------------------------------------------- crash-fault injection

constexpr char kSnap[] = "/snap/db.udb";
constexpr char kWal[] = "/wal/db.journal";
constexpr char kData[] = "/data/db.pages";

DatabaseOptions FaultFileOptions(Env* env) {
  // 4 frames: the insert workload constantly evicts dirty frames, so
  // kWriteAt write-backs pepper the op schedule mid-mutation, not just at
  // the checkpoint.
  DatabaseOptions options = FileOptions(kData, /*cache_pages=*/4);
  options.env = env;
  return options;
}

// One deterministic workload step; steps must ack in order. Returns the
// number of steps.
constexpr int kInserts = 120;
constexpr int kTotalSteps = 2 + kInserts + 1;  // DDL, DDL, inserts, ckpt.

Status RunStep(Database& db, int step, std::vector<Oid>& oids) {
  if (step == 0) return db.CreateClass("Thing").status();
  if (step == 1) {
    return db
        .CreateIndex(PathSpec::ClassHierarchy(
            db.schema().FindClass("Thing").value(), "x", Value::Kind::kInt))
        .status();
  }
  if (step < 2 + kInserts) {
    const int i = step - 2;
    Result<Oid> oid = db.CreateObject(db.schema().FindClass("Thing").value());
    if (!oid.ok()) return oid.status();
    oids.push_back(oid.value());
    return db.SetAttr(oid.value(), "x", Value::Int(i));
  }
  return db.Checkpoint(kSnap);
}

size_t CountObjects(Database& db) {
  Result<ClassId> cls = db.schema().FindClass("Thing");
  if (!cls.ok()) return 0;
  Result<Database::SelectResult> r =
      SelectRange(db, cls.value(), -1, 1 << 20);
  return r.ok() ? r.value().oids.size() : 0;
}

TEST(DatabaseFileBackendTest, PowerOffOverDataFileWriteBacks) {
  // Fault-free twin: find every positioned write on the data file.
  std::vector<uint64_t> writeback_ops;
  {
    FaultInjectingEnv env;
    Result<std::unique_ptr<Database>> opened =
        Database::OpenDurable(kSnap, kWal, FaultFileOptions(&env));
    ASSERT_TRUE(opened.ok()) << opened.status().ToString();
    std::vector<Oid> oids;
    for (int step = 0; step < kTotalSteps; ++step) {
      ASSERT_TRUE(RunStep(*opened.value(), step, oids).ok()) << step;
    }
    const std::vector<FaultInjectingEnv::OpRecord> trace = env.trace();
    for (uint64_t op = 0; op < trace.size(); ++op) {
      if (trace[op].kind == FaultInjectingEnv::OpKind::kWriteAt &&
          trace[op].path == kData) {
        writeback_ops.push_back(op);
      }
    }
  }
  ASSERT_GT(writeback_ops.size(), 4u)
      << "a 4-frame pool over this workload must evict dirty frames";

  for (const uint64_t op : writeback_ops) {
    for (const FaultInjectingEnv::CrashOutcome outcome :
         {FaultInjectingEnv::CrashOutcome::kNone,
          FaultInjectingEnv::CrashOutcome::kPartial,
          FaultInjectingEnv::CrashOutcome::kFull}) {
      SCOPED_TRACE("op " + std::to_string(op) + " outcome " +
                   std::to_string(static_cast<int>(outcome)));
      FaultInjectingEnv env;
      env.ScheduleCrashAtOp(op, outcome);
      int acked_inserts = 0;
      {
        Result<std::unique_ptr<Database>> opened =
            Database::OpenDurable(kSnap, kWal, FaultFileOptions(&env));
        if (opened.ok()) {
          std::vector<Oid> oids;
          for (int step = 0; step < kTotalSteps; ++step) {
            if (!RunStep(*opened.value(), step, oids).ok()) break;
            if (step >= 2 && step < 2 + kInserts) ++acked_inserts;
          }
        }
      }
      ASSERT_TRUE(env.powered_off());
      env.Reboot();

      Result<std::unique_ptr<Database>> re =
          Database::OpenDurable(kSnap, kWal, FaultFileOptions(&env));
      ASSERT_TRUE(re.ok()) << re.status().ToString();
      // Every acked insert was journaled; the in-flight one may go either
      // way. A torn or ghost data-file write must never surface: the file
      // is rebuilt from snapshot + journal.
      const size_t count = CountObjects(*re.value());
      EXPECT_GE(count, static_cast<size_t>(acked_inserts));
      EXPECT_LE(count, static_cast<size_t>(acked_inserts) + 1);

      // Liveness: the recovered database accepts and persists new work.
      Result<ClassId> cls = re.value()->schema().FindClass("Thing");
      if (cls.ok()) {
        Result<Oid> oid = re.value()->CreateObject(cls.value());
        ASSERT_TRUE(oid.ok());
        ASSERT_TRUE(
            re.value()->SetAttr(oid.value(), "x", Value::Int(424242)).ok());
      }
      re.value().reset();
      Result<std::unique_ptr<Database>> re2 =
          Database::OpenDurable(kSnap, kWal, FaultFileOptions(&env));
      ASSERT_TRUE(re2.ok()) << re2.status().ToString();
      if (cls.ok()) {
        EXPECT_EQ(CountObjects(*re2.value()), count + 1);
      }
    }
  }
}

}  // namespace
}  // namespace uindex
