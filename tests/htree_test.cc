#include <gtest/gtest.h>

#include <algorithm>

#include "baselines/htree/htree.h"
#include "util/random.h"

namespace uindex {
namespace {

class HTreeTest : public ::testing::Test {
 protected:
  HTreeTest()
      : pager_(1024), buffers_(&pager_), tree_(&buffers_, Value::Kind::kInt) {}

  std::vector<Oid> Sorted(Result<std::vector<Oid>> r) {
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    std::vector<Oid> v = std::move(r).value();
    std::sort(v.begin(), v.end());
    return v;
  }

  Pager pager_;
  BufferManager buffers_;
  HTree tree_;
};

TEST_F(HTreeTest, PerSetTreesAreLazy) {
  EXPECT_EQ(tree_.tree_count(), 0u);
  ASSERT_TRUE(tree_.Insert(Value::Int(1), 3, 10).ok());
  EXPECT_EQ(tree_.tree_count(), 1u);
  ASSERT_TRUE(tree_.Insert(Value::Int(1), 5, 11).ok());
  EXPECT_EQ(tree_.tree_count(), 2u);
  // Searching a never-populated set is free.
  QueryCost cost(&buffers_);
  EXPECT_TRUE(Sorted(tree_.Search(Value::Int(1), Value::Int(1), {9})).empty());
  EXPECT_EQ(cost.PagesRead(), 0u);
}

TEST_F(HTreeTest, SearchIsPerSet) {
  for (int k = 0; k < 100; ++k) {
    ASSERT_TRUE(
        tree_.Insert(Value::Int(k), k % 4, static_cast<Oid>(k + 1)).ok());
  }
  EXPECT_EQ(Sorted(tree_.Search(Value::Int(0), Value::Int(99), {0})).size(),
            25u);
  EXPECT_EQ(
      Sorted(tree_.Search(Value::Int(0), Value::Int(99), {0, 1, 2, 3}))
          .size(),
      100u);
  EXPECT_EQ(Sorted(tree_.Search(Value::Int(10), Value::Int(13),
                                {0, 1, 2, 3})),
            (std::vector<Oid>{11, 12, 13, 14}));
}

TEST_F(HTreeTest, DuplicateKeysAcrossOids) {
  for (Oid oid = 1; oid <= 300; ++oid) {
    ASSERT_TRUE(tree_.Insert(Value::Int(7), 0, oid).ok());
  }
  EXPECT_EQ(Sorted(tree_.Search(Value::Int(7), Value::Int(7), {0})).size(),
            300u);
  ASSERT_TRUE(tree_.Remove(Value::Int(7), 0, 150).ok());
  EXPECT_EQ(Sorted(tree_.Search(Value::Int(7), Value::Int(7), {0})).size(),
            299u);
  EXPECT_TRUE(tree_.Remove(Value::Int(7), 0, 150).IsNotFound());
}

TEST_F(HTreeTest, CostScalesWithQueriedSets) {
  // The defining H-tree property (paper §2): "retrieval costs are directly
  // proportional to the number of sets queried".
  for (int i = 0; i < 40000; ++i) {
    Random rng(static_cast<uint64_t>(i) + 1);
    const int64_t key = static_cast<int64_t>(rng.Uniform(1000));
    ASSERT_TRUE(tree_.Insert(Value::Int(key), static_cast<ClassId>(i % 8),
                             static_cast<Oid>(i + 1))
                    .ok());
  }
  auto cost_of = [this](const std::vector<ClassId>& sets) {
    QueryCost cost(&buffers_);
    EXPECT_TRUE(tree_.Search(Value::Int(500), Value::Int(500), sets).ok());
    return cost.PagesRead();
  };
  const uint64_t one = cost_of({0});
  const uint64_t four = cost_of({0, 1, 2, 3});
  const uint64_t eight = cost_of({0, 1, 2, 3, 4, 5, 6, 7});
  EXPECT_GE(four, one * 3);
  EXPECT_GE(eight, four + one);
}

}  // namespace
}  // namespace uindex
