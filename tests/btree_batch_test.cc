#include <gtest/gtest.h>

#include <map>

#include "btree/btree.h"
#include "util/random.h"

namespace uindex {
namespace {

std::string K(int i) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "k%06d", i);
  return buf;
}

class BTreeBatchTest : public ::testing::Test {
 protected:
  BTreeBatchTest() : pager_(1024), buffers_(&pager_) {}
  Pager pager_;
  BufferManager buffers_;
};

TEST_F(BTreeBatchTest, BatchEqualsIndividualInserts) {
  BTree batch_tree(&buffers_);
  BTree single_tree(&buffers_);

  std::vector<std::pair<std::string, std::string>> entries;
  for (int i = 0; i < 5000; ++i) {
    std::string value = "v";
    value += std::to_string(i % 17);
    entries.emplace_back(K(i), value);
  }
  ASSERT_TRUE(batch_tree.InsertBatch(entries).ok());
  for (const auto& [k, v] : entries) {
    ASSERT_TRUE(single_tree.Insert(Slice(k), Slice(v)).ok());
  }
  ASSERT_TRUE(batch_tree.Validate().ok());
  EXPECT_EQ(batch_tree.size(), single_tree.size());

  auto bit = batch_tree.NewIterator();
  auto sit = single_tree.NewIterator();
  bit.SeekToFirst();
  sit.SeekToFirst();
  while (bit.Valid() && sit.Valid()) {
    EXPECT_EQ(bit.key().ToString(), sit.key().ToString());
    EXPECT_EQ(bit.value().ToString(), sit.value().ToString());
    bit.Next();
    sit.Next();
  }
  EXPECT_FALSE(bit.Valid());
  EXPECT_FALSE(sit.Valid());
}

TEST_F(BTreeBatchTest, BatchIntoExistingTree) {
  BTree tree(&buffers_);
  for (int i = 0; i < 1000; i += 2) {
    ASSERT_TRUE(tree.Insert(Slice(K(i)), Slice("even")).ok());
  }
  std::vector<std::pair<std::string, std::string>> odds;
  for (int i = 1; i < 1000; i += 2) odds.emplace_back(K(i), "odd");
  ASSERT_TRUE(tree.InsertBatch(odds).ok());
  ASSERT_TRUE(tree.Validate().ok());
  EXPECT_EQ(tree.size(), 1000u);
  EXPECT_EQ(tree.Get(Slice(K(501))).value(), "odd");
  EXPECT_EQ(tree.Get(Slice(K(500))).value(), "even");
}

TEST_F(BTreeBatchTest, HugeClusterIntoOneLeafSplitsManyWays) {
  // All keys share a prefix and land in a single (initially empty) leaf:
  // the multi-way split path.
  BTree tree(&buffers_);
  std::vector<std::pair<std::string, std::string>> entries;
  for (int i = 0; i < 3000; ++i) {
    entries.emplace_back("cluster/" + K(i), std::string(10, 'x'));
  }
  std::sort(entries.begin(), entries.end());
  ASSERT_TRUE(tree.InsertBatch(entries).ok());
  ASSERT_TRUE(tree.Validate().ok());
  EXPECT_EQ(tree.size(), 3000u);
}

TEST_F(BTreeBatchTest, RejectsUnsortedAndDuplicates) {
  BTree tree(&buffers_);
  EXPECT_TRUE(tree.InsertBatch({{K(2), ""}, {K(1), ""}})
                  .IsInvalidArgument());
  EXPECT_TRUE(tree.InsertBatch({{K(1), ""}, {K(1), ""}})
                  .IsInvalidArgument());
  ASSERT_TRUE(tree.Insert(Slice(K(5)), Slice()).ok());
  EXPECT_TRUE(tree.InsertBatch({{K(4), ""}, {K(5), ""}, {K(6), ""}})
                  .IsAlreadyExists());
  // Keys before the collision were kept; later ones were not reached.
  EXPECT_TRUE(tree.Contains(Slice(K(4))));
  EXPECT_FALSE(tree.Contains(Slice(K(6))));
  ASSERT_TRUE(tree.Validate().ok());
}

TEST_F(BTreeBatchTest, EmptyBatchIsNoop) {
  BTree tree(&buffers_);
  EXPECT_TRUE(tree.InsertBatch({}).ok());
  EXPECT_EQ(tree.size(), 0u);
}

TEST_F(BTreeBatchTest, BatchSharesDescents) {
  // Building sorted via batch must write far fewer pages than one-by-one.
  std::vector<std::pair<std::string, std::string>> entries;
  for (int i = 0; i < 20000; ++i) entries.emplace_back(K(i), "value");

  Pager p1(1024), p2(1024);
  BufferManager b1(&p1), b2(&p2);
  BTree batch_tree(&b1);
  BTree single_tree(&b2);
  ASSERT_TRUE(batch_tree.InsertBatch(entries).ok());
  for (const auto& [k, v] : entries) {
    ASSERT_TRUE(single_tree.Insert(Slice(k), Slice(v)).ok());
  }
  // Leaf-at-a-time batching writes each leaf ~once; per-key insertion
  // rewrites the leaf per key.
  EXPECT_LT(b1.stats().pages_written * 10, b2.stats().pages_written);
  ASSERT_TRUE(batch_tree.Validate().ok());
}

TEST_F(BTreeBatchTest, RandomizedBatchesMatchModel) {
  BTree tree(&buffers_);
  std::map<std::string, std::string> model;
  Random rng(99);
  for (int round = 0; round < 30; ++round) {
    std::vector<std::pair<std::string, std::string>> batch;
    for (int j = 0; j < 200; ++j) {
      std::string key = "r";
      key += std::to_string(rng.Uniform(100000));
      if (model.count(key)) continue;
      batch.emplace_back(key, std::to_string(round));
    }
    std::sort(batch.begin(), batch.end());
    batch.erase(std::unique(batch.begin(), batch.end(),
                            [](const auto& a, const auto& b) {
                              return a.first == b.first;
                            }),
                batch.end());
    ASSERT_TRUE(tree.InsertBatch(batch).ok());
    for (auto& [k, v] : batch) model[k] = v;
    // Interleave some deletes to stress mixed workloads.
    for (int d = 0; d < 20 && !model.empty(); ++d) {
      auto it = model.begin();
      std::advance(it, static_cast<ptrdiff_t>(rng.Uniform(model.size())));
      ASSERT_TRUE(tree.Delete(Slice(it->first)).ok());
      model.erase(it);
    }
  }
  ASSERT_TRUE(tree.Validate().ok());
  ASSERT_EQ(tree.size(), model.size());
  auto it = tree.NewIterator();
  auto mit = model.begin();
  for (it.SeekToFirst(); it.Valid(); it.Next(), ++mit) {
    ASSERT_EQ(it.key().ToString(), mit->first);
  }
}

}  // namespace
}  // namespace uindex
