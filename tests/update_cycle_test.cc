// Regression tests for reference cycles closed by mid-path re-references
// (ISSUE 10): `IndexedDatabase::SetAttr` must surface a typed
// CycleDetected error and roll the store mutation back, leaving store,
// reverse-reference map, and every index exactly as before the call —
// never loop, stack-overflow, or half-apply an entry diff.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/uindex.h"
#include "core/update.h"
#include "objects/object_store.h"
#include "schema/encoder.h"
#include "schema/schema.h"
#include "storage/buffer_manager.h"
#include "storage/pager.h"

namespace uindex {
namespace {

// A self-referential schema (Node.next -> Node) is expressible only at the
// core layer: the coder ignores the cycle-breaking edge when assigning
// codes, exactly how an application embedding the core library could set
// up a linked-structure path index.
class UpdateCycleTest : public ::testing::Test {
 protected:
  UpdateCycleTest() : pager_(1024), buffers_(&pager_) {
    node_ = schema_.AddClass("Node").value();
    EXPECT_TRUE(schema_.AddReference(node_, node_, "next").ok());
    coder_ = std::make_unique<ClassCoder>(
        ClassCoder::Assign(schema_, schema_.FindCycleBreakingEdges())
            .value());
    store_ = std::make_unique<ObjectStore>(&schema_);

    PathSpec spec;
    spec.classes = {node_, node_, node_};
    spec.ref_attrs = {"next", "next"};
    spec.indexed_attr = "Value";
    spec.value_kind = Value::Kind::kInt;
    index_ = std::make_unique<UIndex>(&buffers_, &schema_, coder_.get(),
                                      spec);
    idb_ = std::make_unique<IndexedDatabase>(&schema_, store_.get());
    EXPECT_TRUE(index_->BuildFrom(*store_).ok());
    idb_->RegisterIndex(index_.get());
  }

  Oid NewNode(int64_t value) {
    const Oid oid = idb_->CreateObject(node_).value();
    EXPECT_TRUE(idb_->SetAttr(oid, "Value", Value::Int(value)).ok());
    return oid;
  }

  // Rows of the full three-hop query (tail value = `v`), tail → head oids.
  std::vector<std::vector<Oid>> Chains(int64_t v) {
    Query q = Query::ExactValue(Value::Int(v));
    q.With(ClassSelector::Subtree(node_), ValueSlot::Wanted())
        .With(ClassSelector::Subtree(node_), ValueSlot::Wanted())
        .With(ClassSelector::Subtree(node_), ValueSlot::Wanted());
    return std::move(index_->Parscan(q)).value().rows;
  }

  Schema schema_;
  ClassId node_ = kInvalidClassId;
  Pager pager_;
  BufferManager buffers_;
  std::unique_ptr<ClassCoder> coder_;
  std::unique_ptr<ObjectStore> store_;
  std::unique_ptr<UIndex> index_;
  std::unique_ptr<IndexedDatabase> idb_;
};

TEST_F(UpdateCycleTest, SelfReferenceReturnsTypedErrorAndRollsBack) {
  const Oid n1 = NewNode(7);
  const Status s = idb_->SetAttr(n1, "next", Value::Ref(n1));
  EXPECT_TRUE(s.IsCycleDetected()) << s.ToString();

  // Rolled back: the reference is gone from the object and from the
  // reverse-reference map, and the index is untouched.
  const Value* next = store_->Get(n1).value()->FindAttr("next");
  EXPECT_TRUE(next == nullptr || next->is_null());
  EXPECT_TRUE(store_->ReferrersOf(n1, "next").empty());
  EXPECT_EQ(index_->entry_count(), 0u);

  // The database remains fully usable: a legitimate chain still indexes.
  const Oid n2 = NewNode(8);
  const Oid n3 = NewNode(9);
  ASSERT_TRUE(idb_->SetAttr(n1, "next", Value::Ref(n2)).ok());
  ASSERT_TRUE(idb_->SetAttr(n2, "next", Value::Ref(n3)).ok());
  EXPECT_EQ(index_->entry_count(), 1u);
  EXPECT_EQ(Chains(9), (std::vector<std::vector<Oid>>{{n3, n2, n1}}));
}

TEST_F(UpdateCycleTest, TwoNodeCycleReturnsTypedErrorAndRollsBack) {
  const Oid n1 = NewNode(1);
  const Oid n2 = NewNode(2);
  const Oid n3 = NewNode(3);
  ASSERT_TRUE(idb_->SetAttr(n1, "next", Value::Ref(n2)).ok());
  ASSERT_TRUE(idb_->SetAttr(n2, "next", Value::Ref(n3)).ok());
  ASSERT_EQ(index_->entry_count(), 1u);

  // Mid-path re-reference n2: next switches n3 -> n1, closing the 2-node
  // cycle n1 -> n2 -> n1.
  const Status s = idb_->SetAttr(n2, "next", Value::Ref(n1));
  EXPECT_TRUE(s.IsCycleDetected()) << s.ToString();

  // Rolled back: n2 still points at n3, the old entry is still served,
  // and the reverse map reflects the restored state.
  EXPECT_EQ(store_->Deref(n2, "next").value(), n3);
  EXPECT_EQ(store_->ReferrersOf(n3, "next"), (std::vector<Oid>{n2}));
  EXPECT_TRUE(store_->ReferrersOf(n1, "next").empty());
  EXPECT_EQ(index_->entry_count(), 1u);
  EXPECT_EQ(Chains(3), (std::vector<std::vector<Oid>>{{n3, n2, n1}}));
  EXPECT_TRUE(index_->btree().Validate().ok());

  // A legitimate re-reference of the same attribute still goes through.
  const Oid n4 = NewNode(4);
  ASSERT_TRUE(idb_->SetAttr(n2, "next", Value::Ref(n4)).ok());
  EXPECT_EQ(Chains(4), (std::vector<std::vector<Oid>>{{n4, n2, n1}}));
  EXPECT_TRUE(Chains(3).empty());
}

TEST_F(UpdateCycleTest, BuildFromCyclicStoreSurfacesTypedError) {
  // A cycle created behind the maintainer's back (direct store mutation)
  // is caught when an index enumerates it.
  const Oid n1 = store_->Create(node_).value();
  const Oid n2 = store_->Create(node_).value();
  ASSERT_TRUE(store_->SetAttr(n1, "Value", Value::Int(1)).ok());
  ASSERT_TRUE(store_->SetAttr(n2, "Value", Value::Int(2)).ok());
  ASSERT_TRUE(store_->SetAttr(n1, "next", Value::Ref(n2)).ok());
  ASSERT_TRUE(store_->SetAttr(n2, "next", Value::Ref(n1)).ok());

  Pager pager(1024);
  BufferManager buffers(&pager);
  PathSpec spec;
  spec.classes = {node_, node_, node_};
  spec.ref_attrs = {"next", "next"};
  spec.indexed_attr = "Value";
  spec.value_kind = Value::Kind::kInt;
  UIndex fresh(&buffers, &schema_, coder_.get(), spec);
  const Status s = fresh.BuildFrom(*store_);
  EXPECT_TRUE(s.IsCycleDetected()) << s.ToString();
}

TEST_F(UpdateCycleTest, RefSetCycleIsAlsoDetected) {
  // Multi-valued references close cycles the same way.
  const Oid n1 = NewNode(1);
  const Oid n2 = NewNode(2);
  const Oid n3 = NewNode(3);
  ASSERT_TRUE(
      idb_->SetAttr(n1, "next", Value::RefSet({n2, n3})).ok());
  const Status s = idb_->SetAttr(n2, "next", Value::RefSet({n1}));
  EXPECT_TRUE(s.IsCycleDetected()) << s.ToString();
  const Value* next = store_->Get(n2).value()->FindAttr("next");
  EXPECT_TRUE(next == nullptr || next->is_null());
}

}  // namespace
}  // namespace uindex
