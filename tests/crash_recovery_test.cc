// Crash-recovery tests: the database runs on FaultInjectingEnv, the
// "machine" dies at chosen write/sync/rename points, and recovery must
// restore exactly the acked state. tools/crash_torture extends the same
// technique to an exhaustive enumeration of every env op in a larger
// workload; these tests pin the individual durability fixes so a
// regression names the broken protocol step directly.

#include <gtest/gtest.h>

#include "db/database.h"
#include "storage/env/fault_env.h"

namespace uindex {
namespace {

using OpKind = FaultInjectingEnv::OpKind;
using Outcome = FaultInjectingEnv::CrashOutcome;

// Snapshot and journal deliberately live in *different* directories, so a
// missing parent-directory sync on either side is its own distinct crash
// state (and, for the snapshot, shows up as a future-generation journal).
constexpr char kSnap[] = "/snap/db.udb";
constexpr char kWal[] = "/wal/db.journal";

DatabaseOptions OptionsFor(Env* env) {
  DatabaseOptions options;
  options.env = env;
  options.prefetch_threads = 0;  // Keep runs small and deterministic.
  return options;
}

// Logical-state fingerprint: serialized objects, schema/index counts, and
// the rows + access path of a fixed query. Recovery is correct iff the
// fingerprint matches a never-crashed run's — byte-identical query rows
// included. Computing it performs no env ops, so it never perturbs the
// op schedule.
std::string Fingerprint(Database& db) {
  std::string fp = db.store().Serialize();
  fp += '|';
  fp += std::to_string(db.schema().class_count());
  fp += '|';
  fp += std::to_string(db.index_count());
  Result<ClassId> thing = db.schema().FindClass("Thing");
  if (thing.ok()) {
    Database::Selection sel;
    sel.cls = thing.value();
    sel.attr = "x";
    sel.lo = Value::Int(-1000);
    sel.hi = Value::Int(1000);
    Result<Database::SelectResult> r = db.Select(sel);
    fp += "|q:";
    if (r.ok()) {
      for (Oid oid : r.value().oids) {
        fp += std::to_string(oid);
        fp += ',';
      }
      fp += r.value().used_index ? "#index" : "#scan";
    } else {
      fp += r.status().ToString();
    }
  }
  return fp;
}

struct Workload {
  std::unique_ptr<Database> db;
  std::vector<Oid> oids;
};

constexpr int kStepCount = 8;

// One deterministic mutation per step — each a single journal record —
// covering DDL, object creation, attribute updates, and deletion.
Status ApplyStep(Workload& w, int step) {
  Database& db = *w.db;
  switch (step) {
    case 0:
      return db.CreateClass("Thing").status();
    case 1:
      return db
          .CreateIndex(PathSpec::ClassHierarchy(
              db.schema().FindClass("Thing").value(), "x",
              Value::Kind::kInt))
          .status();
    case 2:
    case 3: {
      Result<Oid> oid =
          db.CreateObject(db.schema().FindClass("Thing").value());
      if (!oid.ok()) return oid.status();
      w.oids.push_back(oid.value());
      return Status::OK();
    }
    case 4:
      return db.SetAttr(w.oids[0], "x", Value::Int(1));
    case 5:
      return db.SetAttr(w.oids[1], "x", Value::Int(2));
    case 6:
      return db.SetAttr(w.oids[0], "x", Value::Int(10));
    case 7:
      return db.DeleteObject(w.oids[1]);
  }
  return Status::InvalidArgument("no such step");
}

// Opens a fresh durable database on `env` and applies every step.
Workload OpenAndFill(FaultInjectingEnv& env) {
  Workload w;
  w.db = std::move(Database::OpenDurable(kSnap, kWal, OptionsFor(&env)))
             .value();
  for (int step = 0; step < kStepCount; ++step) {
    EXPECT_TRUE(ApplyStep(w, step).ok()) << "step " << step;
  }
  return w;
}

// A checkpoint is logically a no-op, so no matter which of its env ops the
// crash lands on — staging the new journal, writing/syncing/renaming the
// snapshot, syncing either directory, publishing — recovery must restore
// the exact pre-checkpoint state. Enumerates every op at every outcome.
TEST(CrashRecoveryTest, CheckpointCrashAtEveryOpRecoversExactState) {
  uint64_t base_ops = 0, end_ops = 0;
  {
    FaultInjectingEnv env;
    Workload w = OpenAndFill(env);
    base_ops = env.op_count();
    ASSERT_TRUE(w.db->Checkpoint(kSnap).ok());
    end_ops = env.op_count();
  }
  ASSERT_GT(end_ops, base_ops);

  for (uint64_t op = base_ops; op < end_ops; ++op) {
    for (Outcome outcome :
         {Outcome::kNone, Outcome::kPartial, Outcome::kFull}) {
      FaultInjectingEnv env;
      Workload w = OpenAndFill(env);
      const std::string expected = Fingerprint(*w.db);
      env.ScheduleCrashAtOp(op, outcome);
      EXPECT_FALSE(w.db->Checkpoint(kSnap).ok());
      w.db.reset();
      env.Reboot();

      Result<std::unique_ptr<Database>> re =
          Database::OpenDurable(kSnap, kWal, OptionsFor(&env));
      ASSERT_TRUE(re.ok()) << "crash at op " << op << " ("
                           << static_cast<int>(outcome)
                           << "): " << re.status().ToString();
      EXPECT_EQ(Fingerprint(*re.value()), expected)
          << "crash at op " << op << " outcome "
          << static_cast<int>(outcome);
    }
  }
}

// Crash at every journal write of the mutation workload, all outcomes.
// Recovery must land on the last acked step's state — or, when the dying
// write's bytes did reach the media (kFull), at most one step further.
TEST(CrashRecoveryTest, CrashDuringAppendsRecoversEveryAckedMutation) {
  std::vector<std::string> fps;  // fps[i]: state after i acked steps.
  size_t step_writes = 0;
  {
    FaultInjectingEnv env;
    Workload w;
    w.db = std::move(Database::OpenDurable(kSnap, kWal, OptionsFor(&env)))
               .value();
    const size_t trace_before = env.trace().size();
    fps.push_back(Fingerprint(*w.db));
    for (int step = 0; step < kStepCount; ++step) {
      ASSERT_TRUE(ApplyStep(w, step).ok());
      fps.push_back(Fingerprint(*w.db));
    }
    const auto trace = env.trace();
    for (size_t i = trace_before; i < trace.size(); ++i) {
      if (trace[i].kind == OpKind::kWrite) ++step_writes;
    }
  }
  ASSERT_EQ(step_writes, static_cast<size_t>(kStepCount));

  for (size_t k = 1; k <= step_writes; ++k) {
    for (Outcome outcome :
         {Outcome::kNone, Outcome::kPartial, Outcome::kFull}) {
      FaultInjectingEnv env;
      Workload w;
      w.db = std::move(
                 Database::OpenDurable(kSnap, kWal, OptionsFor(&env)))
                 .value();
      env.ScheduleCrashAtKthOpOfKind(OpKind::kWrite, static_cast<int>(k),
                                     outcome);
      size_t acked = 0;
      for (int step = 0; step < kStepCount; ++step) {
        if (!ApplyStep(w, step).ok()) break;
        ++acked;
      }
      ASSERT_EQ(acked, k - 1);  // The k-th logged mutation died.
      w.db.reset();
      env.Reboot();

      Result<std::unique_ptr<Database>> re =
          Database::OpenDurable(kSnap, kWal, OptionsFor(&env));
      ASSERT_TRUE(re.ok()) << "write " << k << ": "
                           << re.status().ToString();
      const std::string got = Fingerprint(*re.value());
      // The dying write was never acked, so both "lost" and (for kFull)
      // "applied" are legal — anything else lost an *acked* mutation or
      // invented one.
      EXPECT_TRUE(got == fps[acked] ||
                  (outcome == Outcome::kFull && got == fps[acked + 1]))
          << "write " << k << " outcome " << static_cast<int>(outcome)
          << "\n got: " << got << "\n pre: " << fps[acked];
    }
  }
}

// A failed fdatasync means the ack would be a lie; the journal must
// fail-stop rather than keep acking records that may not be recoverable.
TEST(CrashRecoveryTest, FailedAppendSyncFailsStopTheDatabase) {
  FaultInjectingEnv env;
  Workload w = OpenAndFill(env);
  env.FailKthOpOfKind(OpKind::kSync, 1);
  EXPECT_FALSE(w.db->SetAttr(w.oids[0], "x", Value::Int(77)).ok());
  // Still refused after the fault cleared: the file may end torn.
  const Status later = w.db->SetAttr(w.oids[0], "x", Value::Int(78));
  EXPECT_FALSE(later.ok());
  EXPECT_NE(later.ToString().find("poisoned"), std::string::npos);
}

// A journal from a generation *newer* than the snapshot means the snapshot
// it extends is missing (e.g. its directory entry was never synced).
// Silently dropping it would lose acked mutations: recovery must refuse.
TEST(CrashRecoveryTest, FutureGenerationJournalIsRefused) {
  FaultInjectingEnv env;
  {
    auto journal = std::move(Journal::OpenForAppend(&env, kWal, 7)).value();
    JournalRecord r;
    r.op = JournalRecord::Op::kCreateClass;
    r.name = "Thing";
    ASSERT_TRUE(journal->Append(r).ok());
  }
  const Status refused =
      Database::OpenDurable(kSnap, kWal, OptionsFor(&env)).status();
  EXPECT_TRUE(refused.IsCorruption());
  EXPECT_NE(refused.ToString().find("generation"), std::string::npos);
}

// After a successful checkpoint the acked tail keeps extending the *new*
// journal; a crash right after more appends must recover snapshot + tail.
TEST(CrashRecoveryTest, PostCheckpointTailSurvivesPowerCut) {
  FaultInjectingEnv env;
  Workload w = OpenAndFill(env);
  ASSERT_TRUE(w.db->Checkpoint(kSnap).ok());
  ASSERT_TRUE(w.db->SetAttr(w.oids[0], "x", Value::Int(42)).ok());
  const std::string expected = Fingerprint(*w.db);
  w.db.reset();
  env.Reboot();  // Power cut: only synced state survives.

  auto re =
      std::move(Database::OpenDurable(kSnap, kWal, OptionsFor(&env)))
          .value();
  EXPECT_EQ(Fingerprint(*re), expected);
}

}  // namespace
}  // namespace uindex
