#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "net/protocol.h"
#include "net/shard_map.h"
#include "util/framing.h"
#include "util/random.h"

namespace uindex {
namespace net {
namespace {

// ---------------------------------------------------------------------------
// util/framing — the shared [len][crc][payload] convention
// ---------------------------------------------------------------------------

class TempFile {
 public:
  TempFile() {
    std::snprintf(path_, sizeof(path_), "/tmp/uindex_framing_XXXXXX");
    const int fd = mkstemp(path_);
    file_ = fdopen(fd, "wb+");
  }
  ~TempFile() {
    std::fclose(file_);
    std::remove(path_);
  }
  std::FILE* get() { return file_; }

 private:
  char path_[64];
  std::FILE* file_;
};

TEST(FramingTest, RoundTripThroughFile) {
  TempFile f;
  ASSERT_TRUE(WriteFrameToFile(f.get(), Slice("hello")).ok());
  ASSERT_TRUE(WriteFrameToFile(f.get(), Slice("")).ok());
  ASSERT_TRUE(WriteFrameToFile(f.get(), Slice(std::string(5000, 'x'))).ok());
  std::rewind(f.get());

  std::string payload;
  size_t consumed = 0;
  Result<FrameRead> r =
      ReadFrameFromFile(f.get(), &payload, UINT32_MAX, &consumed);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), FrameRead::kFrame);
  EXPECT_EQ(payload, "hello");
  EXPECT_EQ(consumed, kFrameHeaderSize + 5);

  r = ReadFrameFromFile(f.get(), &payload, UINT32_MAX, &consumed);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), FrameRead::kFrame);
  EXPECT_TRUE(payload.empty());

  r = ReadFrameFromFile(f.get(), &payload, UINT32_MAX, &consumed);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), FrameRead::kFrame);
  EXPECT_EQ(payload.size(), 5000u);

  r = ReadFrameFromFile(f.get(), &payload, UINT32_MAX, &consumed);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), FrameRead::kEnd);
}

TEST(FramingTest, TornTailIsToleratedNotMisread) {
  // A frame whose payload is cut short (crash mid-append) reads as kTorn.
  std::string frame;
  AppendFrame(Slice("abcdefgh"), &frame);
  for (size_t keep = 1; keep < frame.size(); ++keep) {
    TempFile f;
    std::fwrite(frame.data(), 1, keep, f.get());
    std::rewind(f.get());
    std::string payload;
    Result<FrameRead> r = ReadFrameFromFile(f.get(), &payload, UINT32_MAX);
    ASSERT_TRUE(r.ok()) << "keep=" << keep;
    EXPECT_EQ(r.value(), FrameRead::kTorn) << "keep=" << keep;
  }
}

TEST(FramingTest, CorruptPayloadIsCorruption) {
  std::string frame;
  AppendFrame(Slice("payload-bytes"), &frame);
  frame[kFrameHeaderSize + 3] ^= 0x40;  // Flip one payload bit.
  TempFile f;
  std::fwrite(frame.data(), 1, frame.size(), f.get());
  std::rewind(f.get());
  std::string payload;
  Result<FrameRead> r = ReadFrameFromFile(f.get(), &payload, UINT32_MAX);
  EXPECT_TRUE(r.status().IsCorruption());
}

TEST(FramingTest, OversizedHeaderIsCorruption) {
  std::string frame;
  AppendFrame(Slice("xyz"), &frame);
  TempFile f;
  std::fwrite(frame.data(), 1, frame.size(), f.get());
  std::rewind(f.get());
  std::string payload;
  Result<FrameRead> r = ReadFrameFromFile(f.get(), &payload, /*max_len=*/2);
  EXPECT_TRUE(r.status().IsCorruption());
}

TEST(FramingTest, HeaderVerifiers) {
  std::string frame;
  AppendFrame(Slice("data"), &frame);
  const FrameHeader header = DecodeFrameHeader(frame.data());
  EXPECT_EQ(header.len, 4u);
  EXPECT_TRUE(CheckFrameLength(header, 4).ok());
  EXPECT_TRUE(CheckFrameLength(header, 3).IsCorruption());
  EXPECT_TRUE(VerifyFramePayload(header, Slice("data")).ok());
  EXPECT_TRUE(VerifyFramePayload(header, Slice("dato")).IsCorruption());
  EXPECT_TRUE(VerifyFramePayload(header, Slice("dat")).IsCorruption());
}

// ---------------------------------------------------------------------------
// net/protocol — encode/decode round trips
// ---------------------------------------------------------------------------

TEST(ProtocolTest, RequestRoundTrips) {
  Result<Request> hello = DecodeRequest(Slice(EncodeHello()));
  ASSERT_TRUE(hello.ok());
  EXPECT_EQ(hello.value().op, Op::kHello);
  EXPECT_EQ(hello.value().version, kProtocolVersion);

  const std::string oql = "SELECT v FROM Vehicle* v WHERE v.Color = 'Red'";
  Result<Request> query = DecodeRequest(Slice(EncodeQuery(oql)));
  ASSERT_TRUE(query.ok());
  EXPECT_EQ(query.value().op, Op::kQuery);
  EXPECT_EQ(query.value().oql, oql);

  EXPECT_EQ(DecodeRequest(Slice(EncodePing())).value().op, Op::kPing);
  EXPECT_EQ(DecodeRequest(Slice(EncodeSessionStatsRequest())).value().op,
            Op::kSessionStats);
  EXPECT_EQ(DecodeRequest(Slice(EncodeGoodbye())).value().op, Op::kGoodbye);
}

TEST(ProtocolTest, ResponseRoundTrips) {
  WireQueryStats stats;
  stats.pages_read = 7;
  stats.nodes_parsed = 5;
  stats.node_cache_hits = 3;
  stats.prefetch_issued = 2;
  stats.prefetch_hits = 1;
  stats.prefetch_wasted = 1;
  const std::vector<Oid> oids = {3, 9, 12, 4096};
  Result<Response> rows = DecodeResponse(
      Slice(EncodeRows(oids, 4, true, "uindex #0 exact", stats)));
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows.value().op, Op::kRows);
  EXPECT_EQ(rows.value().oids, oids);
  EXPECT_EQ(rows.value().count, 4u);
  EXPECT_TRUE(rows.value().used_index);
  EXPECT_EQ(rows.value().plan, "uindex #0 exact");
  EXPECT_EQ(rows.value().query_stats.pages_read, 7u);
  EXPECT_EQ(rows.value().query_stats.prefetch_wasted, 1u);

  Result<Response> error = DecodeResponse(
      Slice(EncodeError(Status::InvalidArgument("expected FROM at byte 9"))));
  ASSERT_TRUE(error.ok());
  EXPECT_EQ(error.value().op, Op::kError);
  Status roundtripped = ErrorResponseToStatus(error.value());
  EXPECT_TRUE(roundtripped.IsInvalidArgument());
  EXPECT_EQ(roundtripped.message(), "expected FROM at byte 9");

  Result<Response> busy = DecodeResponse(Slice(EncodeBusy("try later")));
  ASSERT_TRUE(busy.ok());
  EXPECT_EQ(busy.value().op, Op::kBusy);
  EXPECT_EQ(busy.value().message, "try later");

  Session::Stats session;
  session.queries = 11;
  session.failed = 2;
  session.rows = 400;
  session.pages_read = 77;
  Result<Response> stats_r = DecodeResponse(Slice(EncodeStats(session)));
  ASSERT_TRUE(stats_r.ok());
  EXPECT_EQ(stats_r.value().session_stats.queries, 11u);
  EXPECT_EQ(stats_r.value().session_stats.failed, 2u);
  EXPECT_EQ(stats_r.value().session_stats.rows, 400u);
  EXPECT_EQ(stats_r.value().session_stats.pages_read, 77u);
}

TEST(ProtocolTest, DirectionsAreDisjoint) {
  // A response op fed to the request decoder (and vice versa) is rejected.
  EXPECT_TRUE(DecodeRequest(Slice(EncodePong())).status().IsCorruption());
  EXPECT_TRUE(DecodeResponse(Slice(EncodePing())).status().IsCorruption());
}

TEST(ProtocolTest, MalformedPayloadsNeverDecode) {
  // Empty, bad magic, and truncation at every byte boundary.
  EXPECT_TRUE(DecodeRequest(Slice("")).status().IsCorruption());
  EXPECT_TRUE(DecodeResponse(Slice("")).status().IsCorruption());

  std::string hello = EncodeHello();
  hello[2] = 'Z';  // Corrupt the magic.
  EXPECT_TRUE(DecodeRequest(Slice(hello)).status().IsCorruption());

  const std::string query = EncodeQuery("SELECT v FROM V v WHERE v.a = 1");
  for (size_t keep = 1; keep < query.size(); ++keep) {
    EXPECT_TRUE(DecodeRequest(Slice(query.data(), keep))
                    .status()
                    .IsCorruption())
        << "keep=" << keep;
  }
  WireQueryStats stats;
  const std::string rows =
      EncodeRows({1, 2, 3}, 3, true, "plan", stats);
  for (size_t keep = 1; keep < rows.size(); ++keep) {
    EXPECT_TRUE(DecodeResponse(Slice(rows.data(), keep))
                    .status()
                    .IsCorruption())
        << "keep=" << keep;
  }
  // Trailing garbage is also rejected.
  EXPECT_TRUE(
      DecodeRequest(Slice(query + "x")).status().IsCorruption());
  EXPECT_TRUE(DecodeResponse(Slice(rows + "x")).status().IsCorruption());
}

// ---------------------------------------------------------------------------
// protocol v4 — the sharding ops and the ShardMap codec
// ---------------------------------------------------------------------------

ShardMap TwoShardMap() {
  ShardMap map;
  map.version = 7;
  map.entries.push_back({"", "127.0.0.1", 5001});
  map.entries.push_back({"C3A", "127.0.0.1", 5002});
  return map;
}

TEST(ProtocolV4Test, ShardRequestRoundTrips) {
  Result<Request> sq = DecodeRequest(
      Slice(EncodeShardQuery(42, "SELECT i FROM Item* i WHERE i.Key = 1")));
  ASSERT_TRUE(sq.ok());
  EXPECT_EQ(sq.value().op, Op::kShardQuery);
  EXPECT_EQ(sq.value().map_version, 42u);
  EXPECT_EQ(sq.value().oql, "SELECT i FROM Item* i WHERE i.Key = 1");

  std::string blob;
  TwoShardMap().EncodeBlob(&blob);
  Result<Request> install = DecodeRequest(Slice(EncodeInstallShard(1, blob)));
  ASSERT_TRUE(install.ok());
  EXPECT_EQ(install.value().op, Op::kInstallShard);
  EXPECT_EQ(install.value().self_index, 1u);
  EXPECT_EQ(install.value().map_blob, blob);

  EXPECT_EQ(DecodeRequest(Slice(EncodeGetShard())).value().op, Op::kGetShard);
}

TEST(ProtocolV4Test, ShardResponseRoundTrips) {
  Result<Response> stale =
      DecodeResponse(Slice(EncodeStaleMap(9, "map changed")));
  ASSERT_TRUE(stale.ok());
  EXPECT_EQ(stale.value().op, Op::kStaleMap);
  EXPECT_EQ(stale.value().map_version, 9u);
  EXPECT_EQ(stale.value().message, "map changed");

  std::string blob;
  TwoShardMap().EncodeBlob(&blob);
  Result<Response> state =
      DecodeResponse(Slice(EncodeShardState(true, 1, blob)));
  ASSERT_TRUE(state.ok());
  EXPECT_EQ(state.value().op, Op::kShardState);
  EXPECT_TRUE(state.value().shard_active);
  EXPECT_EQ(state.value().self_index, 1u);
  EXPECT_EQ(state.value().map_blob, blob);

  Result<Response> inactive =
      DecodeResponse(Slice(EncodeShardState(false, 0, "")));
  ASSERT_TRUE(inactive.ok());
  EXPECT_FALSE(inactive.value().shard_active);
}

TEST(ProtocolV4Test, NewStatusCodesSurviveTheWire) {
  // The router's typed failure modes must round-trip as themselves, not
  // collapse to Unknown.
  Result<Response> unavailable = DecodeResponse(
      Slice(EncodeError(Status::Unavailable("shard 1 unreachable"))));
  ASSERT_TRUE(unavailable.ok());
  Status s = ErrorResponseToStatus(unavailable.value());
  EXPECT_TRUE(s.IsUnavailable());
  EXPECT_EQ(s.message(), "shard 1 unreachable");

  Result<Response> stale = DecodeResponse(
      Slice(EncodeError(Status::StaleVersion("map v3 < installed v4"))));
  ASSERT_TRUE(stale.ok());
  EXPECT_TRUE(ErrorResponseToStatus(stale.value()).IsStaleVersion());
}

TEST(ProtocolV4Test, ShardFramesTruncateAndTrailRejected) {
  std::string blob;
  TwoShardMap().EncodeBlob(&blob);
  const std::string frames[] = {EncodeShardQuery(7, "SELECT i FROM I i"),
                                EncodeInstallShard(0, blob),
                                EncodeStaleMap(3, "stale"),
                                EncodeShardState(true, 1, blob)};
  for (const std::string& frame : frames) {
    const bool is_request =
        static_cast<uint8_t>(frame[0]) < 0x80;  // Responses set the top bit.
    for (size_t keep = 1; keep < frame.size(); ++keep) {
      const Slice cut(frame.data(), keep);
      const Status s = is_request ? DecodeRequest(cut).status()
                                  : DecodeResponse(cut).status();
      EXPECT_TRUE(s.IsCorruption()) << "keep=" << keep;
    }
    const std::string trailing = frame + "x";
    const Status s = is_request ? DecodeRequest(Slice(trailing)).status()
                                : DecodeResponse(Slice(trailing)).status();
    EXPECT_TRUE(s.IsCorruption());
  }
}

TEST(ProtocolV4Test, ShardMapBlobRoundTrips) {
  const ShardMap map = TwoShardMap();
  std::string blob;
  map.EncodeBlob(&blob);
  Result<ShardMap> back = ShardMap::DecodeBlob(Slice(blob));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value().version, 7u);
  ASSERT_EQ(back.value().entries.size(), 2u);
  EXPECT_EQ(back.value().entries[0].lo, "");
  EXPECT_EQ(back.value().entries[1].lo, "C3A");
  EXPECT_EQ(back.value().entries[1].host, "127.0.0.1");
  EXPECT_EQ(back.value().entries[1].port, 5002);
  EXPECT_EQ(back.value().HiOf(0), "C3A");
  EXPECT_EQ(back.value().HiOf(1), "");
}

TEST(ProtocolV4Test, MalformedShardRangeFramesRejected) {
  std::string blob;
  TwoShardMap().EncodeBlob(&blob);

  // Truncation at every byte.
  for (size_t keep = 0; keep < blob.size(); ++keep) {
    EXPECT_FALSE(ShardMap::DecodeBlob(Slice(blob.data(), keep)).ok())
        << "keep=" << keep;
  }
  // Trailing bytes.
  EXPECT_FALSE(ShardMap::DecodeBlob(Slice(blob + "x")).ok());

  // A declared entry count far beyond the blob (allocation bomb guard).
  std::string bomb = blob;
  bomb[8] = '\xff';
  bomb[9] = '\xff';
  EXPECT_FALSE(ShardMap::DecodeBlob(Slice(bomb)).ok());

  // Semantic hostility goes through Validate: first lo non-empty, los not
  // strictly increasing, empty host, zero entries.
  ShardMap bad = TwoShardMap();
  bad.entries[0].lo = "A";
  EXPECT_FALSE(bad.Validate().ok());
  bad = TwoShardMap();
  bad.entries[1].lo = "";
  EXPECT_FALSE(bad.Validate().ok());
  bad = TwoShardMap();
  bad.entries[1].host.clear();
  EXPECT_FALSE(bad.Validate().ok());
  bad.entries.clear();
  EXPECT_FALSE(bad.Validate().ok());

  // An invalid map must not survive an encode/decode round trip either:
  // DecodeBlob re-validates.
  ShardMap unsorted = TwoShardMap();
  unsorted.entries[1].lo = "";
  std::string unsorted_blob;
  unsorted.EncodeBlob(&unsorted_blob);
  EXPECT_FALSE(ShardMap::DecodeBlob(Slice(unsorted_blob)).ok());
}

TEST(ProtocolV4Test, VersionSkewHandshakeIsDetectable) {
  // A v3 client's hello decodes fine — the version field, not the decode,
  // is what the server's handshake check rejects.
  std::string old_hello = EncodeHello();
  const size_t version_at = old_hello.size() - 4;
  old_hello[version_at] = 3;  // Patch the little-endian version word.
  old_hello[version_at + 1] = 0;
  old_hello[version_at + 2] = 0;
  old_hello[version_at + 3] = 0;
  Result<Request> decoded = DecodeRequest(Slice(old_hello));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().op, Op::kHello);
  EXPECT_EQ(decoded.value().version, 3u);
  EXPECT_NE(decoded.value().version, kProtocolVersion);
  EXPECT_EQ(kProtocolVersion, 4u);  // The sharding ops bumped the version.
}

TEST(ProtocolV4Test, StaleRejectionSemantics) {
  // kStaleMap carries the server's installed version so a router can tell
  // whether refreshing would even help (version 0 = no map installed).
  Result<Response> none = DecodeResponse(
      Slice(EncodeStaleMap(0, "no shard map installed")));
  ASSERT_TRUE(none.ok());
  EXPECT_EQ(none.value().map_version, 0u);
  Result<Response> newer =
      DecodeResponse(Slice(EncodeStaleMap(12, "client behind")));
  ASSERT_TRUE(newer.ok());
  EXPECT_EQ(newer.value().map_version, 12u);
}

TEST(ProtocolTest, FuzzedPayloadsNeverCrash) {
  // Random garbage and randomly mutated valid messages must either decode
  // or fail with a Status — never crash, hang, or read out of bounds
  // (ASan/TSan legs make that assertion real).
  Random rng(0xF00D);
  std::string blob;
  TwoShardMap().EncodeBlob(&blob);
  const std::string seeds[] = {
      EncodeHello(), EncodeQuery("SELECT v FROM V v WHERE v.a = 1"),
      EncodeRows({1, 2, 3}, 3, false, "p", WireQueryStats{}),
      EncodeError(Status::NotFound("x")), EncodeStats(Session::Stats{}),
      EncodeShardQuery(7, "SELECT i FROM I i"), EncodeInstallShard(1, blob),
      EncodeStaleMap(3, "stale"), EncodeShardState(true, 1, blob)};
  for (int iter = 0; iter < 2000; ++iter) {
    std::string mangled = blob;
    if (!mangled.empty()) {
      mangled[rng.Next() % mangled.size()] ^=
          static_cast<char>(1 + rng.Next() % 255);
    }
    (void)ShardMap::DecodeBlob(Slice(mangled));  // Status or map, no crash.
  }
  for (int iter = 0; iter < 5000; ++iter) {
    std::string blob;
    if (iter % 2 == 0) {
      blob = seeds[static_cast<size_t>(rng.Next()) % std::size(seeds)];
      const size_t flips = 1 + rng.Next() % 8;
      for (size_t i = 0; i < flips && !blob.empty(); ++i) {
        blob[rng.Next() % blob.size()] ^=
            static_cast<char>(1 + rng.Next() % 255);
      }
    } else {
      blob.resize(rng.Next() % 64);
      for (char& c : blob) c = static_cast<char>(rng.Next());
    }
    (void)DecodeRequest(Slice(blob));
    (void)DecodeResponse(Slice(blob));
  }
}

}  // namespace
}  // namespace net
}  // namespace uindex
