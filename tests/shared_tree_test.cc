#include <gtest/gtest.h>

#include "core/update.h"
#include "tests/example_database.h"

namespace uindex {
namespace {

// §4.1: "by encoding the attribute-value as part of the key, one can use a
// single B-tree for all these indexes". Two U-indexes — the Color
// class-hierarchy index and the Age combined path index — live in ONE
// physical B-tree, separated by key namespaces.
class SharedTreeTest : public ::testing::Test {
 protected:
  SharedTreeTest() : pager_(1024), buffers_(&pager_), tree_(&buffers_) {
    PathSpec color_spec = db_.ColorSpec();
    color_spec.key_namespace = "c";
    color_ = std::make_unique<UIndex>(&buffers_, &db_.ids.schema,
                                      db_.coder.get(), color_spec, &tree_);
    PathSpec age_spec = db_.AgePathSpec();
    age_spec.key_namespace = "g";
    age_ = std::make_unique<UIndex>(&buffers_, &db_.ids.schema,
                                    db_.coder.get(), age_spec, &tree_);
    EXPECT_TRUE(color_->BuildFrom(*db_.store).ok());
    EXPECT_TRUE(age_->BuildFrom(*db_.store).ok());
  }

  ExampleDatabase db_;
  Pager pager_;
  BufferManager buffers_;
  BTree tree_;
  std::unique_ptr<UIndex> color_, age_;
};

TEST_F(SharedTreeTest, BothIndexesShareOnePhysicalTree) {
  EXPECT_TRUE(color_->shares_tree());
  EXPECT_TRUE(age_->shares_tree());
  EXPECT_EQ(&color_->btree(), &tree_);
  EXPECT_EQ(&age_->btree(), &tree_);
  EXPECT_EQ(tree_.size(), 12u);  // 6 color + 6 age entries.
  EXPECT_EQ(color_->entry_count(), 6u);
  EXPECT_EQ(age_->entry_count(), 6u);
  EXPECT_TRUE(tree_.Validate().ok());
}

TEST_F(SharedTreeTest, QueriesStayInsideTheirNamespace) {
  Query cq = Query::ExactValue(Value::Str("Red"));
  cq.With(ClassSelector::Subtree(db_.ids.vehicle), ValueSlot::Wanted());
  EXPECT_EQ(std::move(color_->Parscan(cq)).value().Distinct(0),
            (std::vector<Oid>{db_.v3, db_.v4}));
  EXPECT_EQ(std::move(color_->ForwardScan(cq)).value().Distinct(0),
            (std::vector<Oid>{db_.v3, db_.v4}));

  Query aq = Query::ExactValue(Value::Int(50));
  aq.With(ClassSelector::Exactly(db_.ids.employee))
      .With(ClassSelector::Subtree(db_.ids.company))
      .With(ClassSelector::Subtree(db_.ids.vehicle), ValueSlot::Wanted());
  EXPECT_EQ(std::move(age_->Parscan(aq)).value().Distinct(2),
            (std::vector<Oid>{db_.v2, db_.v3, db_.v6}));
}

TEST_F(SharedTreeTest, SharedResultsMatchDedicatedTrees) {
  // The same indexes on their own trees must return identical results.
  Pager solo_pager(1024);
  BufferManager solo_buffers(&solo_pager);
  UIndex solo_color(&solo_buffers, &db_.ids.schema, db_.coder.get(),
                    db_.ColorSpec());
  UIndex solo_age(&solo_buffers, &db_.ids.schema, db_.coder.get(),
                  db_.AgePathSpec());
  ASSERT_TRUE(solo_color.BuildFrom(*db_.store).ok());
  ASSERT_TRUE(solo_age.BuildFrom(*db_.store).ok());

  for (const char* color : {"Red", "Blue", "White"}) {
    Query q = Query::ExactValue(Value::Str(color));
    q.With(ClassSelector::Subtree(db_.ids.automobile), ValueSlot::Wanted());
    EXPECT_EQ(std::move(color_->Parscan(q)).value().rows,
              std::move(solo_color.Parscan(q)).value().rows)
        << color;
  }
  for (const int64_t age : {45, 50, 60}) {
    Query q = Query::ExactValue(Value::Int(age));
    q.With(ClassSelector::Exactly(db_.ids.employee))
        .With(ClassSelector::Subtree(db_.ids.company), ValueSlot::Wanted());
    EXPECT_EQ(std::move(age_->Parscan(q)).value().rows,
              std::move(solo_age.Parscan(q)).value().rows)
        << age;
  }
}

TEST_F(SharedTreeTest, MaintenanceThroughSharedTree) {
  IndexedDatabase idb(&db_.ids.schema, db_.store.get());
  idb.RegisterIndex(color_.get());
  idb.RegisterIndex(age_.get());

  // Fiat's president changes: only age entries move.
  ASSERT_TRUE(idb.SetAttr(db_.c2, "president", Value::Ref(db_.e2)).ok());
  EXPECT_EQ(tree_.size(), 12u);
  Query q60 = Query::ExactValue(Value::Int(60));
  q60.With(ClassSelector::Exactly(db_.ids.employee))
      .With(ClassSelector::Subtree(db_.ids.company))
      .With(ClassSelector::Subtree(db_.ids.vehicle), ValueSlot::Wanted());
  EXPECT_EQ(std::move(age_->Parscan(q60)).value().Distinct(2).size(), 4u);

  // Deleting a vehicle removes one entry from each namespace.
  ASSERT_TRUE(idb.DeleteObject(db_.v6).ok());
  EXPECT_EQ(tree_.size(), 10u);
  EXPECT_EQ(color_->entry_count(), 5u);
  EXPECT_EQ(age_->entry_count(), 5u);
  EXPECT_TRUE(tree_.Validate().ok());
}

TEST_F(SharedTreeTest, RebuildTouchesOnlyOwnNamespace) {
  ASSERT_TRUE(db_.store->SetAttr(db_.e1, "Age", Value::Int(52)).ok());
  ASSERT_TRUE(age_->Rebuild(*db_.store).ok());
  EXPECT_EQ(tree_.size(), 12u);
  EXPECT_EQ(color_->entry_count(), 6u);
  // Color index untouched.
  Query cq = Query::ExactValue(Value::Str("Red"));
  cq.With(ClassSelector::Subtree(db_.ids.vehicle), ValueSlot::Wanted());
  EXPECT_EQ(std::move(color_->Parscan(cq)).value().rows.size(), 2u);
  // Age index reflects the new value.
  Query aq = Query::ExactValue(Value::Int(52));
  aq.With(ClassSelector::Exactly(db_.ids.employee))
      .With(ClassSelector::Subtree(db_.ids.company))
      .With(ClassSelector::Subtree(db_.ids.vehicle), ValueSlot::Wanted());
  EXPECT_EQ(std::move(age_->Parscan(aq)).value().Distinct(2).size(), 3u);
  EXPECT_TRUE(tree_.Validate().ok());
}

TEST_F(SharedTreeTest, IntValueRangeScopedToNamespace) {
  const auto range = std::move(age_->IntValueRange()).value();
  EXPECT_EQ(range.first, 45);
  EXPECT_EQ(range.second, 60);
}

}  // namespace
}  // namespace uindex
