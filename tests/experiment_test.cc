#include <gtest/gtest.h>

#include <tuple>

#include "workload/experiment.h"

namespace uindex {
namespace {

// Cross-structure consistency on scaled-down versions of every §5.1
// configuration: all index structures must return identical result counts
// for identical queries.
class ExperimentConsistencyTest
    : public ::testing::TestWithParam<std::tuple<uint32_t, uint64_t>> {};

TEST_P(ExperimentConsistencyTest, AllStructuresAgree) {
  SetExperiment::Options opts;
  opts.workload.num_objects = 12000;
  opts.workload.num_sets = std::get<0>(GetParam());
  opts.workload.num_distinct_keys = std::get<1>(GetParam());
  opts.workload.seed = 42;
  opts.with_chtree = true;
  opts.with_htree = true;
  opts.with_forward_uindex = true;

  auto exp = std::move(SetExperiment::Create(opts)).value();
  EXPECT_TRUE(exp->CrossCheck(1, -1.0, 10, 1).ok());
  EXPECT_TRUE(exp->CrossCheck(opts.workload.num_sets / 2, -1.0, 10, 2).ok());
  EXPECT_TRUE(exp->CrossCheck(opts.workload.num_sets, 0.1, 10, 3).ok());
  EXPECT_TRUE(exp->CrossCheck(2, 0.02, 10, 4).ok());
}

INSTANTIATE_TEST_SUITE_P(
    Configs, ExperimentConsistencyTest,
    ::testing::Combine(::testing::Values(8u, 40u),
                       ::testing::Values(100ull, 1000ull, 12000ull)));

TEST(ExperimentTest, MeasureIsDeterministicPerSeed) {
  SetExperiment::Options opts;
  opts.workload.num_objects = 8000;
  opts.workload.num_sets = 8;
  opts.workload.num_distinct_keys = 1000;
  auto exp = std::move(SetExperiment::Create(opts)).value();
  const auto structures = exp->structures();
  ASSERT_EQ(structures.size(), 2u);
  const double a =
      std::move(exp->Measure(structures[0], 4, true, 0.1, 20, 7)).value();
  const double b =
      std::move(exp->Measure(structures[0], 4, true, 0.1, 20, 7)).value();
  EXPECT_EQ(a, b);
  EXPECT_GT(a, 0.0);
}

TEST(ExperimentTest, PaperShapeExactMatchUniqueKeys) {
  // Paper §5.2 point 2: for unique-key exact match the U-index beats the
  // CG-tree and is nearly insensitive to the number of sets queried.
  SetExperiment::Options opts;
  opts.workload.num_objects = 20000;
  opts.workload.num_sets = 8;
  opts.workload.num_distinct_keys = 20000;
  auto exp = std::move(SetExperiment::Create(opts)).value();
  const auto structures = exp->structures();
  const auto& uindex = structures[0];
  const auto& cgtree = structures[1];

  const double u1 = std::move(exp->Measure(uindex, 1, true, -1, 60, 5)).value();
  const double u8 = std::move(exp->Measure(uindex, 8, true, -1, 60, 5)).value();
  const double c1 = std::move(exp->Measure(cgtree, 1, true, -1, 60, 5)).value();
  const double c8 = std::move(exp->Measure(cgtree, 8, true, -1, 60, 5)).value();

  EXPECT_LE(u1, c1);            // U-index at least ties at one set...
  EXPECT_LT(u8, c8);            // ...and clearly wins at all eight.
  EXPECT_LT(u8 - u1, 1.5);      // U-index nearly flat in #sets.
  EXPECT_GT(c8, c1 + 2.0);      // CG-tree grows with #sets.
}

TEST(ExperimentTest, PaperShapeLargeRangeFewSets) {
  // Paper §5.2 point 5: for large ranges over few sets the CG-tree wins.
  SetExperiment::Options opts;
  opts.workload.num_objects = 20000;
  opts.workload.num_sets = 40;
  opts.workload.num_distinct_keys = 1000;
  auto exp = std::move(SetExperiment::Create(opts)).value();
  const auto structures = exp->structures();
  const double u =
      std::move(exp->Measure(structures[0], 2, false, 0.1, 40, 5)).value();
  const double c =
      std::move(exp->Measure(structures[1], 2, false, 0.1, 40, 5)).value();
  EXPECT_LT(c, u);
}

TEST(ExperimentTest, PaperShapeNearSetsBeatDistantSets) {
  // Paper §5.2 point 7: clustered (near) sets cost the U-index less than
  // dispersed sets.
  SetExperiment::Options opts;
  opts.workload.num_objects = 30000;
  opts.workload.num_sets = 40;
  opts.workload.num_distinct_keys = 30000;  // Unique keys: sharpest effect.
  auto exp = std::move(SetExperiment::Create(opts)).value();
  const auto structures = exp->structures();
  const double near =
      std::move(exp->Measure(structures[0], 10, true, 0.01, 40, 5)).value();
  const double distant =
      std::move(exp->Measure(structures[0], 10, false, 0.01, 40, 5)).value();
  EXPECT_LE(near, distant);
}

}  // namespace
}  // namespace uindex
