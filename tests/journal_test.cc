#include <gtest/gtest.h>

#include <cstdio>

#include "db/database.h"

namespace uindex {
namespace {

std::string TempPath(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

TEST(JournalRecordTest, EncodeDecodeRoundTrip) {
  JournalRecord r;
  r.op = JournalRecord::Op::kCreateIndex;
  r.name = "Age";
  r.parent = "Company";
  r.class_names = {"Vehicle", "Company", "Employee"};
  r.ref_attrs = {"made-by", "president"};
  r.flag = true;
  r.kind = 1;
  r.oid = 42;
  r.value = Value::Str("hello");

  const std::string payload = Journal::EncodeRecord(r);
  const JournalRecord back =
      std::move(Journal::DecodeRecord(Slice(payload))).value();
  EXPECT_EQ(back.op, r.op);
  EXPECT_EQ(back.name, r.name);
  EXPECT_EQ(back.parent, r.parent);
  EXPECT_EQ(back.class_names, r.class_names);
  EXPECT_EQ(back.ref_attrs, r.ref_attrs);
  EXPECT_EQ(back.flag, r.flag);
  EXPECT_EQ(back.kind, r.kind);
  EXPECT_EQ(back.oid, r.oid);
  EXPECT_EQ(back.value, r.value);

  // Truncated payloads fail cleanly at any cut point.
  for (size_t cut = 0; cut < payload.size(); ++cut) {
    EXPECT_FALSE(Journal::DecodeRecord(Slice(payload.data(), cut)).ok());
  }
}

TEST(JournalTest, AppendAndReadAll) {
  const std::string path = TempPath("basic.journal");
  std::remove(path.c_str());
  {
    auto journal = std::move(Journal::OpenForAppend(path)).value();
    for (int i = 0; i < 10; ++i) {
      JournalRecord r;
      r.op = JournalRecord::Op::kSetAttr;
      r.oid = static_cast<Oid>(i);
      r.name = "x";
      r.value = Value::Int(i);
      ASSERT_TRUE(journal->Append(r).ok());
    }
  }
  const auto records = std::move(Journal::ReadAll(path)).value();
  ASSERT_EQ(records.size(), 10u);
  EXPECT_EQ(records[7].value.AsInt(), 7);

  // A torn tail (partial frame) is tolerated.
  {
    std::FILE* f = std::fopen(path.c_str(), "ab");
    const char torn[5] = {10, 0, 0, 0, 99};
    std::fwrite(torn, 1, sizeof(torn), f);
    std::fclose(f);
  }
  EXPECT_EQ(std::move(Journal::ReadAll(path)).value().size(), 10u);
  std::remove(path.c_str());
}

TEST(JournalTest, MidFileCorruptionFails) {
  const std::string path = TempPath("corrupt.journal");
  std::remove(path.c_str());
  {
    auto journal = std::move(Journal::OpenForAppend(path)).value();
    for (int i = 0; i < 5; ++i) {
      JournalRecord r;
      r.op = JournalRecord::Op::kDeleteObject;
      r.oid = static_cast<Oid>(i);
      ASSERT_TRUE(journal->Append(r).ok());
    }
  }
  {
    std::FILE* f = std::fopen(path.c_str(), "r+b");
    std::fseek(f, 30, SEEK_SET);
    int c = std::fgetc(f);
    std::fseek(f, 30, SEEK_SET);
    std::fputc(c ^ 0x55, f);
    std::fclose(f);
  }
  EXPECT_TRUE(Journal::ReadAll(path).status().IsCorruption());
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// End-to-end durability through Database.
// ---------------------------------------------------------------------------

class DurableDatabaseTest : public ::testing::Test {
 protected:
  DurableDatabaseTest()
      : snapshot_(TempPath("durable.udb")),
        journal_(TempPath("durable.journal")) {
    std::remove(snapshot_.c_str());
    std::remove(journal_.c_str());
  }
  ~DurableDatabaseTest() override {
    std::remove(snapshot_.c_str());
    std::remove(journal_.c_str());
  }

  std::string snapshot_, journal_;
};

TEST_F(DurableDatabaseTest, ReplaysJournalFromEmpty) {
  Oid car_oid = kInvalidOid;
  {
    auto db = std::move(Database::OpenDurable(snapshot_, journal_)).value();
    const ClassId vehicle = db->CreateClass("Vehicle").value();
    const ClassId car = db->CreateSubclass("Car", vehicle).value();
    ASSERT_TRUE(db->CreateIndex(PathSpec::ClassHierarchy(
                                    vehicle, "Price", Value::Kind::kInt))
                    .ok());
    car_oid = db->CreateObject(car).value();
    ASSERT_TRUE(db->SetAttr(car_oid, "Price", Value::Int(25)).ok());
    // "Crash": no Save, only the journal survives.
  }
  auto db = std::move(Database::OpenDurable(snapshot_, journal_)).value();
  EXPECT_EQ(db->schema().class_count(), 2u);
  EXPECT_EQ(db->index_count(), 1u);
  Database::Selection sel;
  sel.cls = db->schema().FindClass("Vehicle").value();
  sel.attr = "Price";
  sel.lo = sel.hi = Value::Int(25);
  const auto r = std::move(db->Select(sel)).value();
  EXPECT_TRUE(r.used_index);
  EXPECT_EQ(r.oids, (std::vector<Oid>{car_oid}));
}

TEST_F(DurableDatabaseTest, CheckpointPlusTailReplay) {
  Oid second = kInvalidOid;
  {
    auto db = std::move(Database::OpenDurable(snapshot_, journal_)).value();
    const ClassId thing = db->CreateClass("Thing").value();
    ASSERT_TRUE(db->CreateIndex(PathSpec::ClassHierarchy(
                                    thing, "x", Value::Kind::kInt))
                    .ok());
    const Oid first = db->CreateObject(thing).value();
    ASSERT_TRUE(db->SetAttr(first, "x", Value::Int(1)).ok());
    ASSERT_TRUE(db->Checkpoint(snapshot_).ok());
    // Post-checkpoint tail.
    second = db->CreateObject(thing).value();
    ASSERT_TRUE(db->SetAttr(second, "x", Value::Int(2)).ok());
    ASSERT_TRUE(db->DeleteObject(first).ok());
  }
  auto db = std::move(Database::OpenDurable(snapshot_, journal_)).value();
  EXPECT_EQ(db->store().size(), 1u);
  Database::Selection sel;
  sel.cls = db->schema().FindClass("Thing").value();
  sel.attr = "x";
  sel.lo = Value::Int(0);
  sel.hi = Value::Int(10);
  EXPECT_EQ(std::move(db->Select(sel)).value().oids,
            (std::vector<Oid>{second}));

  // Third generation keeps appending to the same journal.
  const Oid third = db->CreateObject(sel.cls).value();
  ASSERT_TRUE(db->SetAttr(third, "x", Value::Int(3)).ok());
  db.reset();
  auto db3 = std::move(Database::OpenDurable(snapshot_, journal_)).value();
  EXPECT_EQ(db3->store().size(), 2u);
}

TEST_F(DurableDatabaseTest, TornJournalTailIsDiscarded) {
  {
    auto db = std::move(Database::OpenDurable(snapshot_, journal_)).value();
    const ClassId thing = db->CreateClass("Thing").value();
    const Oid a = db->CreateObject(thing).value();
    ASSERT_TRUE(db->SetAttr(a, "x", Value::Int(1)).ok());
  }
  {
    std::FILE* f = std::fopen(journal_.c_str(), "ab");
    const char torn[6] = {42, 0, 0, 0, 1, 2};  // Incomplete frame+payload.
    std::fwrite(torn, 1, sizeof(torn), f);
    std::fclose(f);
  }
  auto db = std::move(Database::OpenDurable(snapshot_, journal_)).value();
  EXPECT_EQ(db->store().size(), 1u);  // The complete prefix replayed.

  // The torn tail was truncated away, so records appended after the
  // reopen survive the *next* reopen too.
  const ClassId thing = db->schema().FindClass("Thing").value();
  const Oid b = db->CreateObject(thing).value();
  ASSERT_TRUE(db->SetAttr(b, "x", Value::Int(2)).ok());
  db.reset();
  auto db2 = std::move(Database::OpenDurable(snapshot_, journal_)).value();
  EXPECT_EQ(db2->store().size(), 2u);
}

}  // namespace
}  // namespace uindex
