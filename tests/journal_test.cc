#include <gtest/gtest.h>

#include <cstdio>

#include "db/database.h"
#include "storage/env/fault_env.h"

namespace uindex {
namespace {

std::string TempPath(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

JournalRecord SetAttrRecord(Oid oid, int64_t v) {
  JournalRecord r;
  r.op = JournalRecord::Op::kSetAttr;
  r.oid = oid;
  r.name.push_back('x');  // = "x" trips a GCC 12 -Wrestrict false positive.
  r.value = Value::Int(v);
  return r;
}

TEST(JournalRecordTest, EncodeDecodeRoundTrip) {
  JournalRecord r;
  r.op = JournalRecord::Op::kCreateIndex;
  r.name = "Age";
  r.parent = "Company";
  r.class_names = {"Vehicle", "Company", "Employee"};
  r.ref_attrs = {"made-by", "president"};
  r.flag = true;
  r.kind = 1;
  r.oid = 42;
  r.value = Value::Str("hello");

  const std::string payload = Journal::EncodeRecord(r);
  const JournalRecord back =
      std::move(Journal::DecodeRecord(Slice(payload))).value();
  EXPECT_EQ(back.op, r.op);
  EXPECT_EQ(back.name, r.name);
  EXPECT_EQ(back.parent, r.parent);
  EXPECT_EQ(back.class_names, r.class_names);
  EXPECT_EQ(back.ref_attrs, r.ref_attrs);
  EXPECT_EQ(back.flag, r.flag);
  EXPECT_EQ(back.kind, r.kind);
  EXPECT_EQ(back.oid, r.oid);
  EXPECT_EQ(back.value, r.value);

  // Truncated payloads fail cleanly at any cut point.
  for (size_t cut = 0; cut < payload.size(); ++cut) {
    EXPECT_FALSE(Journal::DecodeRecord(Slice(payload.data(), cut)).ok());
  }
}

TEST(JournalTest, AppendAndReadAll) {
  const std::string path = TempPath("basic.journal");
  std::remove(path.c_str());
  {
    auto journal =
        std::move(Journal::OpenForAppend(nullptr, path, /*generation=*/3))
            .value();
    for (int i = 0; i < 10; ++i) {
      ASSERT_TRUE(journal->Append(SetAttrRecord(static_cast<Oid>(i), i)).ok());
    }
  }
  const auto replay = std::move(Journal::ReadAll(nullptr, path)).value();
  ASSERT_TRUE(replay.header_valid);
  EXPECT_EQ(replay.generation, 3u);
  ASSERT_EQ(replay.records.size(), 10u);
  EXPECT_EQ(replay.records[7].value.AsInt(), 7);

  // A torn tail (partial frame) is tolerated and excluded from the valid
  // prefix, so a reopen can truncate it away.
  const size_t intact_bytes = replay.valid_bytes;
  {
    std::FILE* f = std::fopen(path.c_str(), "ab");
    const char torn[5] = {10, 0, 0, 0, 99};
    std::fwrite(torn, 1, sizeof(torn), f);
    std::fclose(f);
  }
  const auto torn = std::move(Journal::ReadAll(nullptr, path)).value();
  EXPECT_EQ(torn.records.size(), 10u);
  EXPECT_EQ(torn.valid_bytes, intact_bytes);
  std::remove(path.c_str());
}

TEST(JournalTest, ReopenSameGenerationKeepsRecordsAndDropsTornTail) {
  const std::string path = TempPath("reopen.journal");
  std::remove(path.c_str());
  {
    auto journal =
        std::move(Journal::OpenForAppend(nullptr, path, 1)).value();
    ASSERT_TRUE(journal->Append(SetAttrRecord(1, 11)).ok());
  }
  {  // Simulate a crash mid-append: garbage half-frame at the end.
    std::FILE* f = std::fopen(path.c_str(), "ab");
    const char torn[7] = {99, 0, 0, 0, 1, 2, 3};
    std::fwrite(torn, 1, sizeof(torn), f);
    std::fclose(f);
  }
  {
    auto journal =
        std::move(Journal::OpenForAppend(nullptr, path, 1)).value();
    ASSERT_TRUE(journal->Append(SetAttrRecord(2, 22)).ok());
  }
  const auto replay = std::move(Journal::ReadAll(nullptr, path)).value();
  ASSERT_EQ(replay.records.size(), 2u);  // Tail dropped, both appends kept.
  EXPECT_EQ(replay.records[1].value.AsInt(), 22);
  std::remove(path.c_str());
}

TEST(JournalTest, OpenWithOtherGenerationStartsFresh) {
  const std::string path = TempPath("gen.journal");
  std::remove(path.c_str());
  {
    auto journal =
        std::move(Journal::OpenForAppend(nullptr, path, 1)).value();
    ASSERT_TRUE(journal->Append(SetAttrRecord(1, 11)).ok());
  }
  // A different generation means "this is some other checkpoint's log":
  // its records must not leak into the new one.
  {
    auto journal =
        std::move(Journal::OpenForAppend(nullptr, path, 2)).value();
    ASSERT_TRUE(journal->Append(SetAttrRecord(9, 99)).ok());
  }
  const auto replay = std::move(Journal::ReadAll(nullptr, path)).value();
  EXPECT_EQ(replay.generation, 2u);
  ASSERT_EQ(replay.records.size(), 1u);
  EXPECT_EQ(replay.records[0].value.AsInt(), 99);
  std::remove(path.c_str());
}

// Satellite policy test: a CRC-corrupt *final* record is the shape of a
// crash (torn sectors in the last append) — recover to the last good
// record. The same corruption mid-file means the medium lied: refuse.
TEST(JournalTest, CorruptFinalRecordIsRecoveredCorruptMiddleRefused) {
  const std::string path = TempPath("corrupt.journal");
  std::remove(path.c_str());
  {
    auto journal =
        std::move(Journal::OpenForAppend(nullptr, path, 1)).value();
    for (int i = 0; i < 5; ++i) {
      ASSERT_TRUE(journal->Append(SetAttrRecord(static_cast<Oid>(i), i)).ok());
    }
  }
  // Locate the final record's payload and flip a byte in it.
  const auto clean = std::move(Journal::ReadAll(nullptr, path)).value();
  ASSERT_EQ(clean.records.size(), 5u);
  {
    std::FILE* f = std::fopen(path.c_str(), "r+b");
    std::fseek(f, static_cast<long>(clean.valid_bytes) - 2, SEEK_SET);
    int c = std::fgetc(f);
    std::fseek(f, static_cast<long>(clean.valid_bytes) - 2, SEEK_SET);
    std::fputc(c ^ 0x55, f);
    std::fclose(f);
  }
  const auto recovered = std::move(Journal::ReadAll(nullptr, path)).value();
  EXPECT_EQ(recovered.records.size(), 4u);  // Last record dropped, rest kept.

  // Now corrupt an *interior* record (the first one, right after the
  // 24-byte header frame): refuse with a diagnostic.
  {
    std::FILE* f = std::fopen(path.c_str(), "r+b");
    std::fseek(f, 24 + 8 + 1, SEEK_SET);
    int c = std::fgetc(f);
    std::fseek(f, 24 + 8 + 1, SEEK_SET);
    std::fputc(c ^ 0x55, f);
    std::fclose(f);
  }
  const Status refused = Journal::ReadAll(nullptr, path).status();
  EXPECT_TRUE(refused.IsCorruption());
  EXPECT_NE(refused.ToString().find("mid-stream"), std::string::npos);
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// The same journal logic on the crashable in-memory file system.
// ---------------------------------------------------------------------------

TEST(JournalFaultTest, SyncOnAppendSurvivesPowerCut) {
  FaultInjectingEnv env;
  const std::string path = "/wal/a.journal";
  auto journal = std::move(Journal::OpenForAppend(&env, path, 1)).value();
  ASSERT_TRUE(journal->Append(SetAttrRecord(1, 11)).ok());
  ASSERT_TRUE(journal->Append(SetAttrRecord(2, 22)).ok());

  env.Reboot();  // Power cut with no crash scheduled: drop unsynced state.
  const auto replay = std::move(Journal::ReadAll(&env, path)).value();
  ASSERT_TRUE(replay.header_valid);
  ASSERT_EQ(replay.records.size(), 2u);  // Both appends were acked durable.
  EXPECT_EQ(replay.records[1].value.AsInt(), 22);
}

TEST(JournalFaultTest, BatchedSyncLosesOnlyUnsyncedTail) {
  FaultInjectingEnv env;
  const std::string path = "/wal/b.journal";
  JournalOptions options;
  options.sync_on_append = false;
  auto journal =
      std::move(Journal::OpenForAppend(&env, path, 1, options)).value();
  ASSERT_TRUE(journal->Append(SetAttrRecord(1, 11)).ok());
  ASSERT_TRUE(journal->Sync().ok());  // Caller's commit point.
  ASSERT_TRUE(journal->Append(SetAttrRecord(2, 22)).ok());  // Never synced.

  env.Reboot();
  const auto replay = std::move(Journal::ReadAll(&env, path)).value();
  ASSERT_EQ(replay.records.size(), 1u);  // Only the synced record survives.
  EXPECT_EQ(replay.records[0].value.AsInt(), 11);
}

TEST(JournalFaultTest, TornWriteRecoversToLastAckedRecord) {
  FaultInjectingEnv env;
  const std::string path = "/wal/c.journal";
  auto journal = std::move(Journal::OpenForAppend(&env, path, 1)).value();
  ASSERT_TRUE(journal->Append(SetAttrRecord(1, 11)).ok());

  // The machine dies mid-write on the next append: half the frame's bytes
  // reach the media.
  env.ScheduleCrashAtKthOpOfKind(FaultInjectingEnv::OpKind::kWrite, 1,
                                 FaultInjectingEnv::CrashOutcome::kPartial);
  EXPECT_FALSE(journal->Append(SetAttrRecord(2, 22)).ok());

  env.Reboot();
  const auto replay = std::move(Journal::ReadAll(&env, path)).value();
  ASSERT_EQ(replay.records.size(), 1u);  // The unacked append is gone...
  EXPECT_EQ(replay.records[0].value.AsInt(), 11);  // ...the acked one isn't.
}

TEST(JournalFaultTest, FailedSyncPoisonsTheJournal) {
  FaultInjectingEnv env;
  const std::string path = "/wal/d.journal";
  auto journal = std::move(Journal::OpenForAppend(&env, path, 1)).value();
  ASSERT_TRUE(journal->Append(SetAttrRecord(1, 11)).ok());

  env.FailKthOpOfKind(FaultInjectingEnv::OpKind::kSync, 1);
  EXPECT_FALSE(journal->Append(SetAttrRecord(2, 22)).ok());
  EXPECT_TRUE(journal->poisoned());
  // The file may end in an unsynced frame; appending after it could bury
  // a torn tail mid-file, so everything later fails fast.
  const Status later = journal->Append(SetAttrRecord(3, 33));
  EXPECT_FALSE(later.ok());
  EXPECT_NE(later.ToString().find("poisoned"), std::string::npos);
}

// ---------------------------------------------------------------------------
// End-to-end durability through Database.
// ---------------------------------------------------------------------------

class DurableDatabaseTest : public ::testing::Test {
 protected:
  DurableDatabaseTest()
      : snapshot_(TempPath("durable.udb")),
        journal_(TempPath("durable.journal")) {
    std::remove(snapshot_.c_str());
    std::remove(journal_.c_str());
  }
  ~DurableDatabaseTest() override {
    std::remove(snapshot_.c_str());
    std::remove(journal_.c_str());
    std::remove((journal_ + ".new").c_str());
  }

  std::string snapshot_, journal_;
};

TEST_F(DurableDatabaseTest, ReplaysJournalFromEmpty) {
  Oid car_oid = kInvalidOid;
  {
    auto db = std::move(Database::OpenDurable(snapshot_, journal_)).value();
    const ClassId vehicle = db->CreateClass("Vehicle").value();
    const ClassId car = db->CreateSubclass("Car", vehicle).value();
    ASSERT_TRUE(db->CreateIndex(PathSpec::ClassHierarchy(
                                    vehicle, "Price", Value::Kind::kInt))
                    .ok());
    car_oid = db->CreateObject(car).value();
    ASSERT_TRUE(db->SetAttr(car_oid, "Price", Value::Int(25)).ok());
    // "Crash": no Save, only the journal survives.
  }
  auto db = std::move(Database::OpenDurable(snapshot_, journal_)).value();
  EXPECT_EQ(db->schema().class_count(), 2u);
  EXPECT_EQ(db->index_count(), 1u);
  Database::Selection sel;
  sel.cls = db->schema().FindClass("Vehicle").value();
  sel.attr = "Price";
  sel.lo = sel.hi = Value::Int(25);
  const auto r = std::move(db->Select(sel)).value();
  EXPECT_TRUE(r.used_index);
  EXPECT_EQ(r.oids, (std::vector<Oid>{car_oid}));
}

TEST_F(DurableDatabaseTest, CheckpointPlusTailReplay) {
  Oid second = kInvalidOid;
  {
    auto db = std::move(Database::OpenDurable(snapshot_, journal_)).value();
    const ClassId thing = db->CreateClass("Thing").value();
    ASSERT_TRUE(db->CreateIndex(PathSpec::ClassHierarchy(
                                    thing, "x", Value::Kind::kInt))
                    .ok());
    const Oid first = db->CreateObject(thing).value();
    ASSERT_TRUE(db->SetAttr(first, "x", Value::Int(1)).ok());
    ASSERT_TRUE(db->Checkpoint(snapshot_).ok());
    // Post-checkpoint tail.
    second = db->CreateObject(thing).value();
    ASSERT_TRUE(db->SetAttr(second, "x", Value::Int(2)).ok());
    ASSERT_TRUE(db->DeleteObject(first).ok());
  }
  auto db = std::move(Database::OpenDurable(snapshot_, journal_)).value();
  EXPECT_EQ(db->store().size(), 1u);
  Database::Selection sel;
  sel.cls = db->schema().FindClass("Thing").value();
  sel.attr = "x";
  sel.lo = Value::Int(0);
  sel.hi = Value::Int(10);
  EXPECT_EQ(std::move(db->Select(sel)).value().oids,
            (std::vector<Oid>{second}));

  // Third generation keeps appending to the same journal.
  const Oid third = db->CreateObject(sel.cls).value();
  ASSERT_TRUE(db->SetAttr(third, "x", Value::Int(3)).ok());
  db.reset();
  auto db3 = std::move(Database::OpenDurable(snapshot_, journal_)).value();
  EXPECT_EQ(db3->store().size(), 2u);
}

TEST_F(DurableDatabaseTest, TornJournalTailIsDiscarded) {
  {
    auto db = std::move(Database::OpenDurable(snapshot_, journal_)).value();
    const ClassId thing = db->CreateClass("Thing").value();
    const Oid a = db->CreateObject(thing).value();
    ASSERT_TRUE(db->SetAttr(a, "x", Value::Int(1)).ok());
  }
  {
    std::FILE* f = std::fopen(journal_.c_str(), "ab");
    const char torn[6] = {42, 0, 0, 0, 1, 2};  // Incomplete frame+payload.
    std::fwrite(torn, 1, sizeof(torn), f);
    std::fclose(f);
  }
  auto db = std::move(Database::OpenDurable(snapshot_, journal_)).value();
  EXPECT_EQ(db->store().size(), 1u);  // The complete prefix replayed.

  // The torn tail was truncated away, so records appended after the
  // reopen survive the *next* reopen too.
  const ClassId thing = db->schema().FindClass("Thing").value();
  const Oid b = db->CreateObject(thing).value();
  ASSERT_TRUE(db->SetAttr(b, "x", Value::Int(2)).ok());
  db.reset();
  auto db2 = std::move(Database::OpenDurable(snapshot_, journal_)).value();
  EXPECT_EQ(db2->store().size(), 2u);
}

TEST_F(DurableDatabaseTest, StaleJournalAfterCheckpointIsNotReplayedTwice) {
  {
    auto db = std::move(Database::OpenDurable(snapshot_, journal_)).value();
    const ClassId thing = db->CreateClass("Thing").value();
    const Oid a = db->CreateObject(thing).value();
    ASSERT_TRUE(db->SetAttr(a, "x", Value::Int(1)).ok());
    ASSERT_TRUE(db->Checkpoint(snapshot_).ok());
  }
  // Regress the journal to its pre-checkpoint (generation-0) content by
  // replaying history: that is what disk looks like if the checkpoint's
  // journal rotation is lost but the snapshot rename survived.
  std::remove(journal_.c_str());
  {
    auto journal =
        std::move(Journal::OpenForAppend(nullptr, journal_, 0)).value();
    JournalRecord r;
    r.op = JournalRecord::Op::kCreateClass;
    r.name = "Thing";
    ASSERT_TRUE(journal->Append(r).ok());
  }
  auto db = std::move(Database::OpenDurable(snapshot_, journal_)).value();
  // Had the stale record replayed, "Thing" would exist twice (or fail);
  // the snapshot alone carries the single class and object.
  EXPECT_EQ(db->schema().class_count(), 1u);
  EXPECT_EQ(db->store().size(), 1u);
}

}  // namespace
}  // namespace uindex
