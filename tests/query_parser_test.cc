#include <gtest/gtest.h>

#include "core/query_parser.h"
#include "workload/paper_schema.h"

namespace uindex {
namespace {

class QueryParserTest : public ::testing::Test {
 protected:
  QueryParserTest() : p_(PaperSchema::Build()) {
    path_spec_.classes = {p_.vehicle, p_.company, p_.employee};
    path_spec_.ref_attrs = {"manufactured-by", "president"};
    path_spec_.indexed_attr = "Age";
    path_spec_.value_kind = Value::Kind::kInt;
    ch_spec_ = PathSpec::ClassHierarchy(p_.vehicle, "Color",
                                        Value::Kind::kString);
  }

  PaperSchema p_;
  PathSpec path_spec_;
  PathSpec ch_spec_;
};

TEST_F(QueryParserTest, ParsesExactIntQuery) {
  const Query q =
      std::move(ParseQuery("(Age=50, Employee, _, Company*, ?, Vehicle*, ?)",
                           path_spec_, p_.schema))
          .value();
  EXPECT_EQ(q.lo.AsInt(), 50);
  EXPECT_EQ(q.hi.AsInt(), 50);
  ASSERT_EQ(q.components.size(), 3u);
  EXPECT_EQ(q.components[0].selector.include[0].cls, p_.employee);
  EXPECT_FALSE(q.components[0].selector.include[0].with_subclasses);
  EXPECT_EQ(q.components[0].slot.kind, ValueSlot::Kind::kAny);
  EXPECT_TRUE(q.components[1].selector.include[0].with_subclasses);
  EXPECT_EQ(q.components[1].slot.kind, ValueSlot::Kind::kWanted);
}

TEST_F(QueryParserTest, ParsesRanges) {
  const Query q = std::move(ParseQuery("Age=45..60, Employee, _",
                                       path_spec_, p_.schema))
                      .value();
  EXPECT_EQ(q.lo.AsInt(), 45);
  EXPECT_EQ(q.hi.AsInt(), 60);
}

TEST_F(QueryParserTest, ParsesStringValuesAndAlternation) {
  const Query q =
      std::move(ParseQuery("(Color='Red', Automobile*|Truck !CompactAutomobile, ?)",
                           ch_spec_, p_.schema))
          .value();
  EXPECT_EQ(q.lo.AsString(), "Red");
  ASSERT_EQ(q.components.size(), 1u);
  const ClassSelector& sel = q.components[0].selector;
  ASSERT_EQ(sel.include.size(), 2u);
  EXPECT_EQ(sel.include[0].cls, p_.automobile);
  EXPECT_TRUE(sel.include[0].with_subclasses);
  EXPECT_EQ(sel.include[1].cls, p_.truck);
  EXPECT_FALSE(sel.include[1].with_subclasses);
  ASSERT_EQ(sel.exclude.size(), 1u);
  EXPECT_EQ(sel.exclude[0].cls, p_.compact_automobile);
}

TEST_F(QueryParserTest, ParsesBoundSlots) {
  const Query q =
      std::move(ParseQuery("(Age=50, Employee, #12+34, Company, ?)",
                           path_spec_, p_.schema))
          .value();
  ASSERT_EQ(q.components.size(), 2u);
  EXPECT_EQ(q.components[0].slot.kind, ValueSlot::Kind::kBound);
  ASSERT_EQ(q.components[0].slot.oids.size(), 2u);
  EXPECT_EQ(q.components[0].slot.oids[0], 12u);
  EXPECT_EQ(q.components[0].slot.oids[1], 34u);
}

TEST_F(QueryParserTest, WildcardSelector) {
  const Query q = std::move(ParseQuery("(Age=50, _, _, Company*, ?)",
                                       path_spec_, p_.schema))
                      .value();
  EXPECT_TRUE(q.components[0].selector.include.empty());
  EXPECT_TRUE(q.components[0].selector.exclude.empty());
}

TEST_F(QueryParserTest, RejectsMalformedQueries) {
  auto bad = [&](const std::string& text) {
    return ParseQuery(text, path_spec_, p_.schema).status();
  };
  EXPECT_TRUE(bad("").IsInvalidArgument());
  EXPECT_TRUE(bad("Age=50, Employee").IsInvalidArgument());  // Odd pair.
  EXPECT_TRUE(bad("Age 50").IsInvalidArgument());            // No '='.
  EXPECT_TRUE(bad("Color=50, _, _").IsInvalidArgument());    // Wrong attr.
  EXPECT_TRUE(bad("Age=abc, _, _").IsInvalidArgument());
  EXPECT_TRUE(bad("Age=50, NoSuchClass, _").IsNotFound());
  EXPECT_TRUE(bad("Age=50, Employee, %").IsInvalidArgument());
  EXPECT_TRUE(bad("Age=50, Employee, #").IsInvalidArgument());
  EXPECT_TRUE(bad("Age=50, _, _, _, _, _, _, _, _").IsInvalidArgument());
  // String value needs quotes under a string-kind spec.
  EXPECT_TRUE(ParseQuery("Color=Red, _, _", ch_spec_, p_.schema)
                  .status()
                  .IsInvalidArgument());
}

}  // namespace
}  // namespace uindex
