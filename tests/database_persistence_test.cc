#include <gtest/gtest.h>

#include <cstdio>

#include "db/database.h"
#include "storage/env/fault_env.h"

namespace uindex {
namespace {

std::string TempPath(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

// Builds a small dealership database with two indexes and some data.
struct Built {
  std::unique_ptr<Database> db;
  ClassId employee, company, vehicle, car;
  Oid president, maker, v1, v2;
};

Built BuildSample(DatabaseOptions options = DatabaseOptions()) {
  Built out;
  out.db = std::make_unique<Database>(options);
  Database& db = *out.db;
  out.employee = db.CreateClass("Employee").value();
  out.company = db.CreateClass("Company").value();
  out.vehicle = db.CreateClass("Vehicle").value();
  out.car = db.CreateSubclass("Car", out.vehicle).value();
  EXPECT_TRUE(db.CreateReference(out.vehicle, out.company, "made-by").ok());
  EXPECT_TRUE(
      db.CreateReference(out.company, out.employee, "president").ok());

  out.president = db.CreateObject(out.employee).value();
  EXPECT_TRUE(db.SetAttr(out.president, "Age", Value::Int(50)).ok());
  out.maker = db.CreateObject(out.company).value();
  EXPECT_TRUE(
      db.SetAttr(out.maker, "president", Value::Ref(out.president)).ok());
  out.v1 = db.CreateObject(out.car).value();
  EXPECT_TRUE(db.SetAttr(out.v1, "Price", Value::Int(10)).ok());
  EXPECT_TRUE(db.SetAttr(out.v1, "made-by", Value::Ref(out.maker)).ok());
  out.v2 = db.CreateObject(out.vehicle).value();
  EXPECT_TRUE(db.SetAttr(out.v2, "Price", Value::Int(30)).ok());
  EXPECT_TRUE(db.SetAttr(out.v2, "made-by", Value::Ref(out.maker)).ok());

  EXPECT_TRUE(db.CreateIndex(PathSpec::ClassHierarchy(
                                 out.vehicle, "Price", Value::Kind::kInt))
                  .ok());
  PathSpec age;
  age.classes = {out.vehicle, out.company, out.employee};
  age.ref_attrs = {"made-by", "president"};
  age.indexed_attr = "Age";
  age.value_kind = Value::Kind::kInt;
  EXPECT_TRUE(db.CreateIndex(age).ok());
  return out;
}

TEST(DatabasePersistenceTest, FullRoundTrip) {
  const std::string path = TempPath("dealership.udb");
  Built built = BuildSample();
  ASSERT_TRUE(built.db->Save(path).ok());

  Result<std::unique_ptr<Database>> reopened = Database::Open(path);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  Database& db = *reopened.value();

  // Schema, codes, and catalog survive.
  EXPECT_EQ(db.schema().class_count(), 4u);
  const ClassId car = db.schema().FindClass("Car").value();
  EXPECT_EQ(db.coder().CodeOf(car),
            built.db->coder().CodeOf(built.car));
  ASSERT_NE(db.catalog(), nullptr);
  EXPECT_EQ(std::move(db.catalog()
                          ->NameOf(Slice(db.coder().CodeOf(car))))
                .value(),
            "Car");

  // Objects survive with attributes and references.
  EXPECT_EQ(db.store().size(), 4u);
  EXPECT_EQ(db.store()
                .Get(built.v1)
                .value()
                ->FindAttr("Price")
                ->AsInt(),
            10);
  EXPECT_EQ(db.store().Deref(built.v1, "made-by").value(), built.maker);
  // Reverse references were rebuilt.
  EXPECT_EQ(db.store().ReferrersOf(built.maker, "made-by").size(), 2u);

  // Indexes answer queries without rebuilding.
  EXPECT_EQ(db.index_count(), 2u);
  Database::Selection sel;
  sel.cls = db.schema().FindClass("Vehicle").value();
  sel.attr = "Price";
  sel.lo = Value::Int(0);
  sel.hi = Value::Int(20);
  auto r = std::move(db.Select(sel)).value();
  EXPECT_TRUE(r.used_index);
  EXPECT_EQ(r.oids, (std::vector<Oid>{built.v1}));

  sel.attr = "Age";
  sel.lo = sel.hi = Value::Int(50);
  r = std::move(db.Select(sel)).value();
  EXPECT_TRUE(r.used_index);
  EXPECT_EQ(r.oids, (std::vector<Oid>{built.v1, built.v2}));

  // The reopened database is fully writable: DML keeps indexes live and
  // oids continue from where they stopped.
  const Oid v3 = db.CreateObject(car).value();
  EXPECT_GT(v3, built.v2);
  ASSERT_TRUE(db.SetAttr(v3, "Price", Value::Int(15)).ok());
  sel.attr = "Price";
  sel.lo = Value::Int(0);
  sel.hi = Value::Int(20);
  r = std::move(db.Select(sel)).value();
  EXPECT_EQ(r.oids, (std::vector<Oid>{built.v1, v3}));

  // DDL continues too (codes keep evolving from the stored state).
  const ClassId bike = db.CreateSubclass("Bike", sel.cls).value();
  EXPECT_EQ(db.coder().CodeOf(bike).substr(0, 2),
            db.coder().CodeOf(sel.cls));

  std::remove(path.c_str());
}

TEST(DatabasePersistenceTest, SaveReopenSaveAgain) {
  const std::string path1 = TempPath("gen1.udb");
  const std::string path2 = TempPath("gen2.udb");
  Built built = BuildSample();
  ASSERT_TRUE(built.db->Save(path1).ok());

  auto gen2 = std::move(Database::Open(path1)).value();
  const ClassId car = gen2->schema().FindClass("Car").value();
  const Oid v3 = gen2->CreateObject(car).value();
  ASSERT_TRUE(gen2->SetAttr(v3, "Price", Value::Int(99)).ok());
  ASSERT_TRUE(gen2->Save(path2).ok());

  auto gen3 = std::move(Database::Open(path2)).value();
  EXPECT_EQ(gen3->store().size(), 5u);
  Database::Selection sel;
  sel.cls = gen3->schema().FindClass("Vehicle").value();
  sel.attr = "Price";
  sel.lo = sel.hi = Value::Int(99);
  EXPECT_EQ(std::move(gen3->Select(sel)).value().oids,
            (std::vector<Oid>{v3}));
  std::remove(path1.c_str());
  std::remove(path2.c_str());
}

// ---------------------------------------------------------------------------
// The same persistence path on the crashable in-memory file system: the
// snapshot layer must behave identically, and a failed sync must leave the
// previously saved file untouched (the failure happens before the commit
// rename).
// ---------------------------------------------------------------------------

TEST(DatabasePersistenceFaultTest, SaveOpenParityOnFaultEnv) {
  FaultInjectingEnv env;
  DatabaseOptions options;
  options.env = &env;
  const std::string path = "/db/dealership.udb";
  Built built = BuildSample(options);
  ASSERT_TRUE(built.db->Save(path).ok());

  auto db = std::move(Database::Open(path, options)).value();
  // Byte-identical object store, same index answers as the live database.
  EXPECT_EQ(db->store().Serialize(), built.db->store().Serialize());
  EXPECT_EQ(db->index_count(), 2u);
  Database::Selection sel;
  sel.cls = db->schema().FindClass("Vehicle").value();
  sel.attr = "Age";
  sel.lo = sel.hi = Value::Int(50);
  const auto r = std::move(db->Select(sel)).value();
  EXPECT_TRUE(r.used_index);
  EXPECT_EQ(r.oids, std::move(built.db->Select(sel)).value().oids);
}

TEST(DatabasePersistenceFaultTest, FailedSyncLeavesOldSnapshotIntact) {
  FaultInjectingEnv env;
  DatabaseOptions options;
  options.env = &env;
  const std::string path = "/db/keep.udb";
  Built built = BuildSample(options);
  ASSERT_TRUE(built.db->Save(path).ok());
  const std::string before = env.ReadFileBytes(path).value();

  ASSERT_TRUE(
      built.db->SetAttr(built.v1, "Price", Value::Int(11)).ok());
  env.FailKthOpOfKind(FaultInjectingEnv::OpKind::kSync, 1);
  EXPECT_FALSE(built.db->Save(path).ok());

  // The failure came before the rename, so `path` still holds the first
  // save, byte for byte, and it still opens.
  EXPECT_EQ(env.ReadFileBytes(path).value(), before);
  EXPECT_TRUE(Database::Open(path, options).ok());
}

TEST(DatabasePersistenceTest, OpenRejectsGarbage) {
  const std::string path = TempPath("garbage.udb");
  std::FILE* f = std::fopen(path.c_str(), "wb");
  std::fwrite("garbage", 1, 7, f);
  std::fclose(f);
  EXPECT_FALSE(Database::Open(path).ok());
  std::remove(path.c_str());
  EXPECT_TRUE(Database::Open(TempPath("nope.udb")).status().IsNotFound());
}

}  // namespace
}  // namespace uindex
