#include <gtest/gtest.h>

#include <tuple>

#include "core/uindex.h"
#include "storage/buffer_manager.h"
#include "util/random.h"
#include "workload/database_generator.h"
#include "workload/query_generator.h"

namespace uindex {
namespace {

// Property test: on randomized class-hierarchy workloads, Parscan returns
// exactly the rows ForwardScan returns, and never reads more pages.
class ParscanPropertyTest
    : public ::testing::TestWithParam<std::tuple<uint32_t, uint64_t>> {};

TEST_P(ParscanPropertyTest, AgreesWithForwardScanAndReadsNoMorePages) {
  const uint32_t num_sets = std::get<0>(GetParam());
  const uint64_t num_keys = std::get<1>(GetParam());

  SetHierarchy hier = std::move(BuildSetHierarchy(num_sets)).value();
  Pager pager(1024);
  BufferManager buffers(&pager);
  PathSpec spec =
      PathSpec::ClassHierarchy(hier.root, "key", Value::Kind::kInt);
  UIndex index(&buffers, &hier.schema, hier.coder.get(), spec);

  SetWorkloadConfig cfg;
  cfg.num_objects = 6000;
  cfg.num_sets = num_sets;
  cfg.num_distinct_keys = num_keys;
  cfg.seed = num_sets * 1000 + num_keys;
  for (const Posting& p : GeneratePostings(cfg)) {
    UIndex::Entry entry;
    entry.path = {{hier.sets[p.set_index], p.oid}};
    entry.key =
        index.key_encoder().EncodeEntry(Value::Int(p.key), entry.path);
    ASSERT_TRUE(index.InsertEntry(entry).ok());
  }
  ASSERT_TRUE(index.btree().Validate().ok());

  Random rng(cfg.seed + 17);
  for (int rep = 0; rep < 40; ++rep) {
    // Mix exact matches and ranges over random near/distant class subsets.
    const size_t m = 1 + static_cast<size_t>(rng.Uniform(num_sets));
    const bool near = rng.Bernoulli(0.5);
    const double fraction = rep % 3 == 0 ? -1.0 : 0.02 * (1 + rep % 5);
    const SetQuerySpec qs =
        fraction < 0 ? MakeExactMatchQuery(cfg, m, near, rng)
                     : MakeRangeQuery(cfg, fraction, m, near, rng);

    Query q = Query::Range(Value::Int(qs.lo), Value::Int(qs.hi));
    ClassSelector sel;
    for (const size_t i : qs.set_indexes) {
      sel.include.push_back({hier.sets[i], false});
    }
    q.With(sel, ValueSlot::Wanted());

    QueryCost forward_cost(&buffers);
    const QueryResult forward = std::move(index.ForwardScan(q)).value();
    const uint64_t forward_pages = forward_cost.PagesRead();

    QueryCost parscan_cost(&buffers);
    const QueryResult parscan = std::move(index.Parscan(q)).value();
    const uint64_t parscan_pages = parscan_cost.PagesRead();

    ASSERT_EQ(parscan.rows, forward.rows) << "rep " << rep;
    // Parscan may pay a couple of extra *internal* nodes (it re-descends
    // per disjoint key range instead of following the leaf chain), but
    // never more than the tree height.
    EXPECT_LE(parscan_pages, forward_pages + 3) << "rep " << rep;
    // Parscan never examines more leaf entries than the forward sweep.
    EXPECT_LE(parscan.entries_scanned, forward.entries_scanned);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Workloads, ParscanPropertyTest,
    ::testing::Combine(::testing::Values(4u, 8u, 40u),
                       ::testing::Values(50ull, 1000ull, 6000ull)));

TEST(ParscanTest, SkipsUnqueriedSubtrees) {
  // With many classes and an exact-match on a single class, Parscan must
  // descend once, not sweep the whole value cluster.
  SetHierarchy hier = std::move(BuildSetHierarchy(40)).value();
  Pager pager(1024);
  BufferManager buffers(&pager);
  PathSpec spec =
      PathSpec::ClassHierarchy(hier.root, "key", Value::Kind::kInt);
  UIndex index(&buffers, &hier.schema, hier.coder.get(), spec);

  SetWorkloadConfig cfg;
  cfg.num_objects = 20000;
  cfg.num_sets = 40;
  cfg.num_distinct_keys = 50;  // Long per-key clusters.
  for (const Posting& p : GeneratePostings(cfg)) {
    UIndex::Entry entry;
    entry.path = {{hier.sets[p.set_index], p.oid}};
    entry.key =
        index.key_encoder().EncodeEntry(Value::Int(p.key), entry.path);
    ASSERT_TRUE(index.InsertEntry(entry).ok());
  }

  // Two dispersed classes: the forward sweep must cross the ~30 classes
  // between them inside the value cluster; Parscan jumps over the gap
  // using the internal nodes (the paper's query-4/5 skipping argument).
  Query q = Query::ExactValue(Value::Int(25));
  ClassSelector sel;
  sel.include.push_back({hier.sets[3], false});
  sel.include.push_back({hier.sets[36], false});
  q.With(sel, ValueSlot::Wanted());

  QueryCost parscan_cost(&buffers);
  const QueryResult parscan = std::move(index.Parscan(q)).value();
  const uint64_t parscan_pages = parscan_cost.PagesRead();

  QueryCost forward_cost(&buffers);
  const QueryResult forward = std::move(index.ForwardScan(q)).value();
  const uint64_t forward_pages = forward_cost.PagesRead();

  EXPECT_EQ(parscan.rows, forward.rows);
  EXPECT_FALSE(parscan.rows.empty());
  // ~400 postings per key: the skipped middle is worth several leaves.
  EXPECT_LT(parscan_pages, forward_pages);
  EXPECT_LT(parscan.entries_scanned, forward.entries_scanned);
}

TEST(ParscanTest, SharesPagesAcrossRangeValues) {
  // A range over every class reads each relevant page exactly once: cost
  // must be close to the pure span size, not span x values.
  SetHierarchy hier = std::move(BuildSetHierarchy(8)).value();
  Pager pager(1024);
  BufferManager buffers(&pager);
  PathSpec spec =
      PathSpec::ClassHierarchy(hier.root, "key", Value::Kind::kInt);
  UIndex index(&buffers, &hier.schema, hier.coder.get(), spec);

  SetWorkloadConfig cfg;
  cfg.num_objects = 20000;
  cfg.num_sets = 8;
  cfg.num_distinct_keys = 1000;
  for (const Posting& p : GeneratePostings(cfg)) {
    UIndex::Entry entry;
    entry.path = {{hier.sets[p.set_index], p.oid}};
    entry.key =
        index.key_encoder().EncodeEntry(Value::Int(p.key), entry.path);
    ASSERT_TRUE(index.InsertEntry(entry).ok());
  }

  Query q = Query::Range(Value::Int(100), Value::Int(199));  // 10% range.
  ClassSelector sel;
  for (const ClassId s : hier.sets) sel.include.push_back({s, false});
  q.With(sel, ValueSlot::Wanted());

  QueryCost parscan_cost(&buffers);
  const QueryResult parscan = std::move(index.Parscan(q)).value();
  const uint64_t parscan_pages = parscan_cost.PagesRead();
  QueryCost forward_cost(&buffers);
  const QueryResult forward = std::move(index.ForwardScan(q)).value();
  const uint64_t forward_pages = forward_cost.PagesRead();
  EXPECT_EQ(parscan.rows, forward.rows);
  // All classes queried: both algorithms sweep the same leaves; Parscan
  // must not multiply reads per enumerated value.
  EXPECT_LE(parscan_pages, forward_pages + 2);
}

}  // namespace
}  // namespace uindex
