#include <gtest/gtest.h>

#include "objects/object_store.h"
#include "workload/paper_schema.h"

namespace uindex {
namespace {

class ObjectStoreTest : public ::testing::Test {
 protected:
  ObjectStoreTest() : p_(PaperSchema::Build()), store_(&p_.schema) {}
  PaperSchema p_;
  ObjectStore store_;
};

TEST_F(ObjectStoreTest, CreateAndGet) {
  const Oid oid = store_.Create(p_.vehicle).value();
  EXPECT_NE(oid, kInvalidOid);
  ASSERT_TRUE(store_.Exists(oid));
  const Object* obj = store_.Get(oid).value();
  EXPECT_EQ(obj->oid, oid);
  EXPECT_EQ(obj->cls, p_.vehicle);
  EXPECT_TRUE(store_.Get(9999).status().IsNotFound());
  EXPECT_EQ(store_.size(), 1u);
}

TEST_F(ObjectStoreTest, AttributesRoundTrip) {
  const Oid oid = store_.Create(p_.employee).value();
  ASSERT_TRUE(store_.SetAttr(oid, "Age", Value::Int(50)).ok());
  ASSERT_TRUE(store_.SetAttr(oid, "Name", Value::Str("Ann")).ok());
  const Object* obj = store_.Get(oid).value();
  EXPECT_EQ(obj->FindAttr("Age")->AsInt(), 50);
  EXPECT_EQ(obj->FindAttr("Name")->AsString(), "Ann");
  EXPECT_EQ(obj->FindAttr("missing"), nullptr);
  // Overwrite.
  ASSERT_TRUE(store_.SetAttr(oid, "Age", Value::Int(51)).ok());
  EXPECT_EQ(store_.Get(oid).value()->FindAttr("Age")->AsInt(), 51);
}

TEST_F(ObjectStoreTest, ExtentsTrackDirectInstances) {
  const Oid v = store_.Create(p_.vehicle).value();
  const Oid a = store_.Create(p_.automobile).value();
  const Oid c = store_.Create(p_.compact_automobile).value();
  EXPECT_EQ(store_.ExtentOf(p_.vehicle).size(), 1u);
  EXPECT_EQ(store_.ExtentOf(p_.automobile).size(), 1u);
  const std::vector<Oid> deep = store_.DeepExtentOf(p_.vehicle);
  EXPECT_EQ(deep.size(), 3u);
  const std::vector<Oid> auto_deep = store_.DeepExtentOf(p_.automobile);
  ASSERT_EQ(auto_deep.size(), 2u);
  EXPECT_EQ(auto_deep[0], a);
  EXPECT_EQ(auto_deep[1], c);
  (void)v;
}

TEST_F(ObjectStoreTest, DerefFollowsSingleReferences) {
  const Oid company = store_.Create(p_.company).value();
  const Oid vehicle = store_.Create(p_.vehicle).value();
  ASSERT_TRUE(
      store_.SetAttr(vehicle, "manufactured-by", Value::Ref(company)).ok());
  EXPECT_EQ(store_.Deref(vehicle, "manufactured-by").value(), company);
  EXPECT_TRUE(store_.Deref(vehicle, "missing").status().IsNotFound());
  ASSERT_TRUE(store_.SetAttr(vehicle, "tags", Value::RefSet({company}))
                  .ok());
  EXPECT_TRUE(store_.Deref(vehicle, "tags").status().IsInvalidArgument());
}

TEST_F(ObjectStoreTest, ReferrersTrackReverseEdges) {
  const Oid company = store_.Create(p_.company).value();
  const Oid v1 = store_.Create(p_.vehicle).value();
  const Oid v2 = store_.Create(p_.vehicle).value();
  ASSERT_TRUE(
      store_.SetAttr(v1, "manufactured-by", Value::Ref(company)).ok());
  ASSERT_TRUE(
      store_.SetAttr(v2, "manufactured-by", Value::Ref(company)).ok());
  auto refs = store_.ReferrersOf(company, "manufactured-by");
  EXPECT_EQ(refs.size(), 2u);

  // Re-pointing v1 somewhere else removes it from the reverse map.
  const Oid other = store_.Create(p_.company).value();
  ASSERT_TRUE(
      store_.SetAttr(v1, "manufactured-by", Value::Ref(other)).ok());
  EXPECT_EQ(store_.ReferrersOf(company, "manufactured-by").size(), 1u);
  EXPECT_EQ(store_.ReferrersOf(other, "manufactured-by").size(), 1u);
}

TEST_F(ObjectStoreTest, MultiValuedReferences) {
  const Oid c1 = store_.Create(p_.company).value();
  const Oid c2 = store_.Create(p_.company).value();
  const Oid v = store_.Create(p_.vehicle).value();
  ASSERT_TRUE(
      store_.SetAttr(v, "manufactured-by", Value::RefSet({c1, c2})).ok());
  EXPECT_EQ(store_.ReferrersOf(c1, "manufactured-by").size(), 1u);
  EXPECT_EQ(store_.ReferrersOf(c2, "manufactured-by").size(), 1u);
  ASSERT_TRUE(store_.SetAttr(v, "manufactured-by", Value::Ref(c1)).ok());
  EXPECT_TRUE(store_.ReferrersOf(c2, "manufactured-by").empty());
}

TEST_F(ObjectStoreTest, DeleteCleansUp) {
  const Oid company = store_.Create(p_.company).value();
  const Oid v = store_.Create(p_.vehicle).value();
  ASSERT_TRUE(
      store_.SetAttr(v, "manufactured-by", Value::Ref(company)).ok());
  ASSERT_TRUE(store_.Delete(v).ok());
  EXPECT_FALSE(store_.Exists(v));
  EXPECT_TRUE(store_.ExtentOf(p_.vehicle).empty());
  EXPECT_TRUE(store_.ReferrersOf(company, "manufactured-by").empty());
  EXPECT_TRUE(store_.Delete(v).IsNotFound());
}

TEST(ValueTest, OrderPreservingIntEncoding) {
  const int64_t values[] = {INT64_MIN, -5, -1, 0, 1, 42, INT64_MAX};
  std::string prev;
  for (const int64_t v : values) {
    std::string enc;
    Value::Int(v).AppendOrderPreserving(&enc);
    if (!prev.empty()) {
      EXPECT_TRUE(Slice(prev) < Slice(enc)) << v;
    }
    prev = enc;
  }
}

TEST(ValueTest, EqualityAndDebug) {
  EXPECT_EQ(Value::Int(5), Value::Int(5));
  EXPECT_FALSE(Value::Int(5) == Value::Int(6));
  EXPECT_FALSE(Value::Int(5) == Value::Str("5"));
  EXPECT_EQ(Value::Str("x"), Value::Str("x"));
  EXPECT_EQ(Value::Ref(3), Value::Ref(3));
  EXPECT_EQ(Value::RefSet({1, 2}), Value::RefSet({1, 2}));
  EXPECT_EQ(Value().DebugString(), "null");
  EXPECT_EQ(Value::Int(7).DebugString(), "7");
  EXPECT_EQ(Value::Str("a").DebugString(), "\"a\"");
  EXPECT_EQ(Value::RefSet({1, 2}).DebugString(), "refs(1,2)");
}

}  // namespace
}  // namespace uindex
