#include <gtest/gtest.h>

#include "btree/node.h"
#include "storage/page.h"
#include "util/random.h"

namespace uindex {
namespace {

NodeEntry LeafEntry(std::string key, std::string value) {
  NodeEntry e;
  e.key = std::move(key);
  e.value = std::move(value);
  return e;
}

NodeEntry InternalEntry(std::string key, PageId child) {
  NodeEntry e;
  e.key = std::move(key);
  e.child = child;
  return e;
}

TEST(NodeTest, LeafRoundTrip) {
  Node node = Node::MakeLeaf();
  node.set_next_leaf(77);
  node.entries().push_back(LeafEntry("apple", "v1"));
  node.entries().push_back(LeafEntry("apricot", "v2"));
  node.entries().push_back(LeafEntry("banana", ""));

  Page page(256);
  BTreeOptions opts;
  ASSERT_TRUE(node.SerializeTo(&page, opts).ok());
  Result<Node> back = Node::Parse(page);
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(back.value().is_leaf());
  EXPECT_EQ(back.value().next_leaf(), 77u);
  ASSERT_EQ(back.value().entry_count(), 3u);
  EXPECT_EQ(back.value().entries()[0].key, "apple");
  EXPECT_EQ(back.value().entries()[1].key, "apricot");
  EXPECT_EQ(back.value().entries()[1].value, "v2");
  EXPECT_EQ(back.value().entries()[2].value, "");
}

TEST(NodeTest, InternalRoundTrip) {
  Node node = Node::MakeInternal();
  node.set_leftmost_child(5);
  node.entries().push_back(InternalEntry("m", 6));
  node.entries().push_back(InternalEntry("t", 7));

  Page page(128);
  BTreeOptions opts;
  ASSERT_TRUE(node.SerializeTo(&page, opts).ok());
  Result<Node> back = Node::Parse(page);
  ASSERT_TRUE(back.ok());
  EXPECT_FALSE(back.value().is_leaf());
  EXPECT_EQ(back.value().leftmost_child(), 5u);
  EXPECT_EQ(back.value().entries()[0].child, 6u);
  EXPECT_EQ(back.value().entries()[1].child, 7u);
}

TEST(NodeTest, FrontCompressionShrinksSharedPrefixes) {
  BTreeOptions with, without;
  without.prefix_compression = false;

  Node node = Node::MakeLeaf();
  for (int i = 0; i < 10; ++i) {
    node.entries().push_back(
        LeafEntry("shared_long_prefix_" + std::to_string(i), "v"));
  }
  const uint32_t compressed = node.SerializedSize(with);
  const uint32_t raw = node.SerializedSize(without);
  EXPECT_LT(compressed + 100, raw);  // Prefix bytes stored once, not 10x.

  // Round trip preserves full keys under compression.
  Page page(512);
  ASSERT_TRUE(node.SerializeTo(&page, with).ok());
  Result<Node> back = Node::Parse(page);
  ASSERT_TRUE(back.ok());
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(back.value().entries()[i].key,
              "shared_long_prefix_" + std::to_string(i));
  }
}

TEST(NodeTest, SerializedSizeMatchesSerializeTo) {
  Random rng(31);
  Node node = Node::MakeLeaf();
  std::string prev = "";
  for (int i = 0; i < 20; ++i) {
    prev += static_cast<char>('a' + (rng.Next() % 26));
    node.entries().push_back(
        LeafEntry(prev, std::string(rng.Next() % 8, 'v')));
  }
  BTreeOptions opts;
  Page page(4096);
  ASSERT_TRUE(node.SerializeTo(&page, opts).ok());
  // Re-parse and confirm the claimed size is consistent (no corruption).
  Result<Node> back = Node::Parse(page);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value().SerializedSize(opts), node.SerializedSize(opts));
}

TEST(NodeTest, LowerAndUpperBound) {
  Node node = Node::MakeLeaf();
  node.entries().push_back(LeafEntry("b", ""));
  node.entries().push_back(LeafEntry("d", ""));
  node.entries().push_back(LeafEntry("f", ""));
  EXPECT_EQ(node.LowerBound(Slice("a")), 0u);
  EXPECT_EQ(node.LowerBound(Slice("b")), 0u);
  EXPECT_EQ(node.LowerBound(Slice("c")), 1u);
  EXPECT_EQ(node.LowerBound(Slice("f")), 2u);
  EXPECT_EQ(node.LowerBound(Slice("g")), 3u);
  EXPECT_EQ(node.UpperBound(Slice("b")), 1u);
  EXPECT_EQ(node.UpperBound(Slice("a")), 0u);
  EXPECT_EQ(node.UpperBound(Slice("f")), 3u);
}

TEST(NodeTest, ChildForRoutesBySeparators) {
  Node node = Node::MakeInternal();
  node.set_leftmost_child(10);
  node.entries().push_back(InternalEntry("m", 11));
  node.entries().push_back(InternalEntry("t", 12));
  EXPECT_EQ(node.ChildFor(Slice("a")), 10u);
  EXPECT_EQ(node.ChildFor(Slice("m")), 11u);  // Separator goes right.
  EXPECT_EQ(node.ChildFor(Slice("p")), 11u);
  EXPECT_EQ(node.ChildFor(Slice("t")), 12u);
  EXPECT_EQ(node.ChildFor(Slice("z")), 12u);
}

TEST(NodeTest, FitsHonoursEntryCap) {
  BTreeOptions opts;
  opts.max_entries_per_node = 3;
  Node node = Node::MakeLeaf();
  for (int i = 0; i < 3; ++i) {
    node.entries().push_back(LeafEntry(std::string(1, 'a' + i), ""));
  }
  EXPECT_TRUE(node.Fits(1024, opts));
  node.entries().push_back(LeafEntry("z", ""));
  EXPECT_FALSE(node.Fits(1024, opts));
}

TEST(NodeTest, ParseRejectsGarbage) {
  Page page(64);
  page.data()[0] = 0x7F;  // Bad tag.
  EXPECT_TRUE(Node::Parse(page).status().IsCorruption());
}

TEST(NodeTest, ParseRejectsOverrunningEntries) {
  Node node = Node::MakeLeaf();
  node.entries().push_back(LeafEntry("abc", "v"));
  Page page(64);
  BTreeOptions opts;
  ASSERT_TRUE(node.SerializeTo(&page, opts).ok());
  // Corrupt the entry count upwards.
  page.data()[2] = 40;
  EXPECT_TRUE(Node::Parse(page).status().IsCorruption());
}

TEST(NodeTest, SerializeFailsWhenTooLarge) {
  Node node = Node::MakeLeaf();
  node.entries().push_back(LeafEntry(std::string(100, 'k'), ""));
  Page page(64);
  BTreeOptions opts;
  EXPECT_TRUE(node.SerializeTo(&page, opts).IsCorruption());
}

}  // namespace
}  // namespace uindex
