#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "btree/node.h"
#include "storage/page.h"
#include "util/random.h"

namespace uindex {
namespace {

NodeEntry LeafEntry(std::string key, std::string value) {
  NodeEntry e;
  e.key = std::move(key);
  e.value = std::move(value);
  return e;
}

NodeEntry InternalEntry(std::string key, PageId child) {
  NodeEntry e;
  e.key = std::move(key);
  e.child = child;
  return e;
}

TEST(NodeTest, LeafRoundTrip) {
  Node node = Node::MakeLeaf();
  node.set_next_leaf(77);
  node.entries().push_back(LeafEntry("apple", "v1"));
  node.entries().push_back(LeafEntry("apricot", "v2"));
  node.entries().push_back(LeafEntry("banana", ""));

  Page page(256);
  BTreeOptions opts;
  ASSERT_TRUE(node.SerializeTo(&page, opts).ok());
  Result<Node> back = Node::Parse(page);
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(back.value().is_leaf());
  EXPECT_EQ(back.value().next_leaf(), 77u);
  ASSERT_EQ(back.value().entry_count(), 3u);
  EXPECT_EQ(back.value().entries()[0].key, "apple");
  EXPECT_EQ(back.value().entries()[1].key, "apricot");
  EXPECT_EQ(back.value().entries()[1].value, "v2");
  EXPECT_EQ(back.value().entries()[2].value, "");
}

TEST(NodeTest, InternalRoundTrip) {
  Node node = Node::MakeInternal();
  node.set_leftmost_child(5);
  node.entries().push_back(InternalEntry("m", 6));
  node.entries().push_back(InternalEntry("t", 7));

  Page page(128);
  BTreeOptions opts;
  ASSERT_TRUE(node.SerializeTo(&page, opts).ok());
  Result<Node> back = Node::Parse(page);
  ASSERT_TRUE(back.ok());
  EXPECT_FALSE(back.value().is_leaf());
  EXPECT_EQ(back.value().leftmost_child(), 5u);
  EXPECT_EQ(back.value().entries()[0].child, 6u);
  EXPECT_EQ(back.value().entries()[1].child, 7u);
}

TEST(NodeTest, FrontCompressionShrinksSharedPrefixes) {
  BTreeOptions with, without;
  without.prefix_compression = false;

  Node node = Node::MakeLeaf();
  for (int i = 0; i < 10; ++i) {
    node.entries().push_back(
        LeafEntry("shared_long_prefix_" + std::to_string(i), "v"));
  }
  const uint32_t compressed = node.SerializedSize(with);
  const uint32_t raw = node.SerializedSize(without);
  EXPECT_LT(compressed + 100, raw);  // Prefix bytes stored once, not 10x.

  // Round trip preserves full keys under compression.
  Page page(512);
  ASSERT_TRUE(node.SerializeTo(&page, with).ok());
  Result<Node> back = Node::Parse(page);
  ASSERT_TRUE(back.ok());
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(back.value().entries()[i].key,
              "shared_long_prefix_" + std::to_string(i));
  }
}

TEST(NodeTest, SerializedSizeMatchesSerializeTo) {
  Random rng(31);
  Node node = Node::MakeLeaf();
  std::string prev = "";
  for (int i = 0; i < 20; ++i) {
    prev += static_cast<char>('a' + (rng.Next() % 26));
    node.entries().push_back(
        LeafEntry(prev, std::string(rng.Next() % 8, 'v')));
  }
  BTreeOptions opts;
  Page page(4096);
  ASSERT_TRUE(node.SerializeTo(&page, opts).ok());
  // Re-parse and confirm the claimed size is consistent (no corruption).
  Result<Node> back = Node::Parse(page);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value().SerializedSize(opts), node.SerializedSize(opts));
}

TEST(NodeTest, LowerAndUpperBound) {
  Node node = Node::MakeLeaf();
  node.entries().push_back(LeafEntry("b", ""));
  node.entries().push_back(LeafEntry("d", ""));
  node.entries().push_back(LeafEntry("f", ""));
  EXPECT_EQ(node.LowerBound(Slice("a")), 0u);
  EXPECT_EQ(node.LowerBound(Slice("b")), 0u);
  EXPECT_EQ(node.LowerBound(Slice("c")), 1u);
  EXPECT_EQ(node.LowerBound(Slice("f")), 2u);
  EXPECT_EQ(node.LowerBound(Slice("g")), 3u);
  EXPECT_EQ(node.UpperBound(Slice("b")), 1u);
  EXPECT_EQ(node.UpperBound(Slice("a")), 0u);
  EXPECT_EQ(node.UpperBound(Slice("f")), 3u);
}

TEST(NodeTest, ChildForRoutesBySeparators) {
  Node node = Node::MakeInternal();
  node.set_leftmost_child(10);
  node.entries().push_back(InternalEntry("m", 11));
  node.entries().push_back(InternalEntry("t", 12));
  EXPECT_EQ(node.ChildFor(Slice("a")), 10u);
  EXPECT_EQ(node.ChildFor(Slice("m")), 11u);  // Separator goes right.
  EXPECT_EQ(node.ChildFor(Slice("p")), 11u);
  EXPECT_EQ(node.ChildFor(Slice("t")), 12u);
  EXPECT_EQ(node.ChildFor(Slice("z")), 12u);
}

TEST(NodeTest, FitsHonoursEntryCap) {
  BTreeOptions opts;
  opts.max_entries_per_node = 3;
  Node node = Node::MakeLeaf();
  for (int i = 0; i < 3; ++i) {
    node.entries().push_back(LeafEntry(std::string(1, 'a' + i), ""));
  }
  EXPECT_TRUE(node.Fits(1024, opts));
  node.entries().push_back(LeafEntry("z", ""));
  EXPECT_FALSE(node.Fits(1024, opts));
}

TEST(NodeTest, ParseRejectsGarbage) {
  Page page(64);
  page.data()[0] = 0x7F;  // Bad tag.
  EXPECT_TRUE(Node::Parse(page).status().IsCorruption());
}

TEST(NodeTest, ParseRejectsOverrunningEntries) {
  Node node = Node::MakeLeaf();
  node.entries().push_back(LeafEntry("abc", "v"));
  Page page(64);
  BTreeOptions opts;
  ASSERT_TRUE(node.SerializeTo(&page, opts).ok());
  // Corrupt the entry count upwards.
  page.data()[2] = 40;
  EXPECT_TRUE(Node::Parse(page).status().IsCorruption());
}

TEST(NodeTest, SerializeFailsWhenTooLarge) {
  Node node = Node::MakeLeaf();
  node.entries().push_back(LeafEntry(std::string(100, 'k'), ""));
  Page page(64);
  BTreeOptions opts;
  EXPECT_TRUE(node.SerializeTo(&page, opts).IsCorruption());
}

// ---- SearchCompressed: the zero-materialization in-node search ----------

// A random sorted key set over a 4-letter alphabet: short alphabet means
// long shared prefixes, the regime front compression (and its search) is
// built for.
std::vector<std::string> RandomSortedKeys(Random* rng, size_t n) {
  std::set<std::string> keys;
  while (keys.size() < n) {
    std::string k;
    const size_t len = 1 + rng->Next() % 12;
    for (size_t i = 0; i < len; ++i) {
      k += static_cast<char>('a' + rng->Next() % 4);
    }
    keys.insert(std::move(k));
  }
  return std::vector<std::string>(keys.begin(), keys.end());
}

// Probes around each key: the key itself, neighbours, and random strings.
std::vector<std::string> Probes(Random* rng, const std::vector<std::string>& keys) {
  std::vector<std::string> probes;
  for (const std::string& k : keys) {
    probes.push_back(k);
    probes.push_back(k + "a");
    if (!k.empty()) {
      std::string below = k;
      below.back() = static_cast<char>(below.back() - 1);
      probes.push_back(below);
      probes.push_back(k.substr(0, k.size() - 1));
    }
  }
  probes.push_back("");
  probes.push_back("zzzz");
  for (int i = 0; i < 32; ++i) {
    std::string p;
    const size_t len = rng->Next() % 10;
    for (size_t j = 0; j < len; ++j) {
      p += static_cast<char>('a' + rng->Next() % 5);
    }
    probes.push_back(std::move(p));
  }
  return probes;
}

// SearchCompressed must agree with Parse + LowerBound/payload on every
// probe, for both serialization modes (its correctness argument does not
// assume maximal prefix lengths, so the uncompressed image must work too).
TEST(NodeTest, SearchCompressedMatchesParseOnLeaves) {
  Random rng(1213);
  for (const bool compressed : {true, false}) {
    BTreeOptions opts;
    opts.prefix_compression = compressed;
    for (int round = 0; round < 20; ++round) {
      Node node = Node::MakeLeaf();
      node.set_next_leaf(321);
      const auto keys = RandomSortedKeys(&rng, 1 + rng.Next() % 30);
      for (const std::string& k : keys) {
        node.entries().push_back(LeafEntry(k, "val_" + k));
      }
      Page page(4096);
      ASSERT_TRUE(node.SerializeTo(&page, opts).ok());
      Result<Node> parsed = Node::Parse(page);
      ASSERT_TRUE(parsed.ok());

      for (const std::string& probe : Probes(&rng, keys)) {
        Result<Node::CompressedSearch> r =
            Node::SearchCompressed(page, Slice(probe));
        ASSERT_TRUE(r.ok()) << r.status().ToString();
        const Node::CompressedSearch& s = r.value();
        EXPECT_TRUE(s.is_leaf);
        EXPECT_EQ(s.count, keys.size());
        EXPECT_EQ(s.aux, 321u);
        const size_t lb = parsed.value().LowerBound(Slice(probe));
        EXPECT_EQ(s.lower_bound, lb) << "probe=" << probe;
        const bool expect_found =
            lb < keys.size() && keys[lb] == probe;
        EXPECT_EQ(s.found, expect_found) << "probe=" << probe;
        if (expect_found) {
          EXPECT_EQ(s.value, "val_" + probe);
        }
      }
    }
  }
}

TEST(NodeTest, SearchCompressedMatchesParseOnInternals) {
  Random rng(77);
  for (const bool compressed : {true, false}) {
    BTreeOptions opts;
    opts.prefix_compression = compressed;
    for (int round = 0; round < 20; ++round) {
      Node node = Node::MakeInternal();
      node.set_leftmost_child(1000);
      const auto keys = RandomSortedKeys(&rng, 1 + rng.Next() % 30);
      for (size_t i = 0; i < keys.size(); ++i) {
        node.entries().push_back(
            InternalEntry(keys[i], static_cast<PageId>(1001 + i)));
      }
      Page page(4096);
      ASSERT_TRUE(node.SerializeTo(&page, opts).ok());
      Result<Node> parsed = Node::Parse(page);
      ASSERT_TRUE(parsed.ok());

      for (const std::string& probe : Probes(&rng, keys)) {
        Result<Node::CompressedSearch> r =
            Node::SearchCompressed(page, Slice(probe));
        ASSERT_TRUE(r.ok()) << r.status().ToString();
        const Node::CompressedSearch& s = r.value();
        EXPECT_FALSE(s.is_leaf);
        EXPECT_EQ(s.aux, 1000u);
        EXPECT_EQ(s.child, parsed.value().ChildFor(Slice(probe)))
            << "probe=" << probe;
        EXPECT_EQ(s.lower_bound, parsed.value().LowerBound(Slice(probe)));
      }
    }
  }
}

TEST(NodeTest, SearchCompressedEmptyNode) {
  Node node = Node::MakeLeaf();
  Page page(128);
  BTreeOptions opts;
  ASSERT_TRUE(node.SerializeTo(&page, opts).ok());
  Result<Node::CompressedSearch> r =
      Node::SearchCompressed(page, Slice("anything"));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().count, 0u);
  EXPECT_FALSE(r.value().found);
  EXPECT_EQ(r.value().lower_bound, 0u);
}

TEST(NodeTest, SearchCompressedRejectsGarbageTag) {
  Page page(64);
  page.data()[0] = 0x7F;
  EXPECT_TRUE(
      Node::SearchCompressed(page, Slice("x")).status().IsCorruption());
}

TEST(NodeTest, SearchCompressedRejectsTinyPage) {
  Page page(4);
  EXPECT_TRUE(
      Node::SearchCompressed(page, Slice("x")).status().IsCorruption());
}

TEST(NodeTest, SearchCompressedRejectsOverrunningEntries) {
  Node node = Node::MakeLeaf();
  node.entries().push_back(LeafEntry("abc", "v"));
  Page page(64);
  BTreeOptions opts;
  ASSERT_TRUE(node.SerializeTo(&page, opts).ok());
  page.data()[2] = 40;  // Count overrun: the scan must hit the page limit.
  EXPECT_TRUE(
      Node::SearchCompressed(page, Slice("zzz")).status().IsCorruption());
}

TEST(NodeTest, SearchCompressedRejectsBadPrefixLength) {
  Node node = Node::MakeLeaf();
  node.entries().push_back(LeafEntry("aa", "1"));
  node.entries().push_back(LeafEntry("ab", "2"));
  Page page(128);
  BTreeOptions opts;
  ASSERT_TRUE(node.SerializeTo(&page, opts).ok());
  // Entry 1's prefix_len claims more than entry 0's key length.
  // Layout: header(12) + entry0 (6 overhead + 2 key + 1 value) = 21.
  page.data()[Node::kHeaderSize + 9] = 9;
  EXPECT_TRUE(Node::Parse(page).status().IsCorruption());
  EXPECT_TRUE(
      Node::SearchCompressed(page, Slice("zz")).status().IsCorruption());
}

// Corruption fuzz: random garbage and randomly flipped bytes of valid
// images must never crash the compressed search, and whenever the full
// Parse still accepts the image the search must agree with it. (The search
// is allowed to succeed where Parse rejects: it stops validating at its
// answer, just as it stops decompressing.)
TEST(NodeTest, SearchCompressedCorruptionFuzz) {
  Random rng(20260806);
  for (int round = 0; round < 400; ++round) {
    Page page(256);
    if (round % 2 == 0) {
      for (uint32_t i = 0; i < page.size(); ++i) {
        page.data()[i] = static_cast<char>(rng.Next() & 0xFF);
      }
    } else {
      Node node = round % 4 == 1 ? Node::MakeLeaf() : Node::MakeInternal();
      const auto keys = RandomSortedKeys(&rng, 1 + rng.Next() % 12);
      for (size_t i = 0; i < keys.size(); ++i) {
        node.entries().push_back(node.is_leaf()
                                     ? LeafEntry(keys[i], "v")
                                     : InternalEntry(keys[i], i));
      }
      BTreeOptions opts;
      opts.prefix_compression = (rng.Next() % 2 == 0);
      ASSERT_TRUE(node.SerializeTo(&page, opts).ok());
      const int flips = 1 + rng.Next() % 8;
      for (int f = 0; f < flips; ++f) {
        page.data()[rng.Next() % page.size()] =
            static_cast<char>(rng.Next() & 0xFF);
      }
    }
    std::string probe;
    const size_t len = rng.Next() % 8;
    for (size_t j = 0; j < len; ++j) {
      probe += static_cast<char>(rng.Next() & 0xFF);
    }

    Result<Node::CompressedSearch> r =
        Node::SearchCompressed(page, Slice(probe));
    Result<Node> parsed = Node::Parse(page);
    if (parsed.ok()) {
      ASSERT_TRUE(r.ok()) << r.status().ToString();
      const Node& node = parsed.value();
      EXPECT_EQ(r.value().is_leaf, node.is_leaf());
      // Equivalence with LowerBound/ChildFor additionally needs the node
      // invariant (strictly increasing keys), which Parse does not check —
      // flipped suffix bytes can silently reorder decoded keys, and on an
      // unsorted array both searches return arbitrary (different) answers.
      bool sorted = true;
      for (size_t i = 1; i < node.entry_count(); ++i) {
        if (!(Slice(node.entries()[i - 1].key) <
              Slice(node.entries()[i].key))) {
          sorted = false;
          break;
        }
      }
      if (sorted) {
        EXPECT_EQ(r.value().lower_bound, node.LowerBound(Slice(probe)));
        if (!node.is_leaf()) {
          EXPECT_EQ(r.value().child, node.ChildFor(Slice(probe)));
        }
      }
    }
  }
}

TEST(NodeTest, DecodedBytesTracksContent) {
  Node small = Node::MakeLeaf();
  small.entries().push_back(LeafEntry("k", "v"));
  Node big = Node::MakeLeaf();
  for (int i = 0; i < 50; ++i) {
    big.entries().push_back(
        LeafEntry("key_" + std::to_string(i), std::string(32, 'v')));
  }
  EXPECT_GE(small.DecodedBytes(), sizeof(Node) + 2);
  EXPECT_GT(big.DecodedBytes(), small.DecodedBytes() + 50 * 32);
}

}  // namespace
}  // namespace uindex
