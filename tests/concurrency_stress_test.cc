#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "db/database.h"
#include "db/session.h"
#include "exec/execution_context.h"
#include "net/client.h"
#include "net/server.h"

namespace uindex {
namespace {

// Concurrency stress over the Database façade. Build with
// -DUINDEX_SANITIZE=thread to run these under TSan (the CI matrix does);
// without a sanitizer they still exercise the latching and assert result
// sanity.
class ConcurrencyStressTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = std::make_unique<Database>();
    root_ = db_->CreateClass("Item").value();
    for (int i = 0; i < 4; ++i) {
      subs_.push_back(
          db_->CreateSubclass("Item" + std::to_string(i), root_).value());
    }
    ASSERT_TRUE(db_->CreateIndex(PathSpec::ClassHierarchy(
                                     root_, "price", Value::Kind::kInt))
                    .ok());
    // Mutate: create, price, and delete some objects so the index has seen
    // real maintenance before the concurrent phase begins.
    std::vector<Oid> victims;
    for (int i = 0; i < kObjects; ++i) {
      const Oid oid = db_->CreateObject(subs_[i % subs_.size()]).value();
      ASSERT_TRUE(db_->SetAttr(oid, "price", Value::Int(i % kPrices)).ok());
      if (i % 17 == 0) victims.push_back(oid);
    }
    for (const Oid oid : victims) {
      ASSERT_TRUE(db_->DeleteObject(oid).ok());
    }
    live_ = kObjects - victims.size();
  }

  Database::Selection PriceRange(int64_t lo, int64_t hi,
                                 bool subclasses = true) const {
    Database::Selection sel;
    sel.cls = root_;
    sel.with_subclasses = subclasses;
    sel.attr = "price";
    sel.lo = Value::Int(lo);
    sel.hi = Value::Int(hi);
    return sel;
  }

  static constexpr int kObjects = 2000;
  static constexpr int kPrices = 97;
  std::unique_ptr<Database> db_;
  ClassId root_ = kInvalidClassId;
  std::vector<ClassId> subs_;
  size_t live_ = 0;
};

TEST_F(ConcurrencyStressTest, ReadersOverQuiescedDatabase) {
  // N reader threads x M queries over the mutated-then-quiesced database.
  // Every query must succeed and agree with the single-threaded answer.
  constexpr int kReaders = 8;
  constexpr int kQueriesPerReader = 40;

  std::vector<size_t> expected;
  for (int q = 0; q < kQueriesPerReader; ++q) {
    Result<Database::SelectResult> r =
        db_->Select(PriceRange(q % kPrices, (q % kPrices) + 10));
    ASSERT_TRUE(r.ok());
    expected.push_back(r.value().oids.size());
  }

  exec::ExecutionContext ctx(static_cast<size_t>(4));
  std::atomic<int> failures{0};
  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int t = 0; t < kReaders; ++t) {
    readers.emplace_back([&, t] {
      // Odd readers share the parallel execution context, even readers run
      // serial sessions; both classes hammer the same latch and buffers.
      Session session(db_.get(), t % 2 == 1 ? &ctx : nullptr);
      for (int q = 0; q < kQueriesPerReader; ++q) {
        Result<Database::SelectResult> r =
            session.Select(PriceRange(q % kPrices, (q % kPrices) + 10));
        if (!r.ok() || r.value().oids.size() != expected[q]) {
          failures.fetch_add(1);
        }
      }
      if (session.stats().queries !=
          static_cast<uint64_t>(kQueriesPerReader)) {
        failures.fetch_add(1);
      }
    });
  }
  for (std::thread& t : readers) t.join();
  EXPECT_EQ(failures.load(), 0);
}

TEST_F(ConcurrencyStressTest, ReadersRacingOneWriter) {
  // Readers query while one writer mutates. The latch serializes writer
  // against readers; every read sees a consistent database (the result
  // size is bounded by the live population, queries never error).
  constexpr int kReaders = 4;
  constexpr int kWrites = 300;
  constexpr int kQueriesPerReader = 60;

  std::atomic<int> failures{0};
  std::atomic<bool> writer_done{false};

  std::thread writer([&] {
    for (int i = 0; i < kWrites; ++i) {
      Result<Oid> oid = db_->CreateObject(subs_[i % subs_.size()]);
      if (!oid.ok() ||
          !db_->SetAttr(oid.value(), "price", Value::Int(i % kPrices))
               .ok()) {
        failures.fetch_add(1);
        continue;
      }
      if (i % 3 == 0 && !db_->DeleteObject(oid.value()).ok()) {
        failures.fetch_add(1);
      }
    }
    writer_done.store(true);
  });

  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int t = 0; t < kReaders; ++t) {
    readers.emplace_back([&, t] {
      Session session(db_.get());
      const size_t upper_bound = live_ + kWrites;
      for (int q = 0; q < kQueriesPerReader; ++q) {
        Result<Database::SelectResult> r =
            session.Select(PriceRange(0, kPrices, t % 2 == 0));
        if (!r.ok() || r.value().oids.size() > upper_bound) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& t : readers) t.join();
  writer.join();
  EXPECT_TRUE(writer_done.load());
  EXPECT_EQ(failures.load(), 0);

  // Quiesced again: the index still validates and serves exact answers.
  Result<Database::SelectResult> final_read =
      db_->Select(PriceRange(0, kPrices));
  ASSERT_TRUE(final_read.ok());
  EXPECT_TRUE(final_read.value().used_index);
}

TEST_F(ConcurrencyStressTest, OqlAndRawQueriesInterleaved) {
  constexpr int kReaders = 6;
  std::atomic<int> failures{0};
  exec::ExecutionContext ctx(static_cast<size_t>(3));

  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int t = 0; t < kReaders; ++t) {
    readers.emplace_back([&, t] {
      Session session(db_.get(), &ctx);
      for (int q = 0; q < 30; ++q) {
        if ((t + q) % 2 == 0) {
          Result<Database::OqlResult> r = session.ExecuteOql(
              "SELECT i FROM Item* i WHERE i.price = " +
              std::to_string(q % kPrices));
          if (!r.ok()) failures.fetch_add(1);
        } else {
          Query raw = Query::Range(Value::Int(0), Value::Int(q % kPrices));
          ClassSelector sel;
          sel.include.push_back({subs_[q % subs_.size()], true});
          raw.With(std::move(sel), ValueSlot::Wanted());
          Result<QueryResult> r = session.Execute(0, raw);
          if (!r.ok()) failures.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& t : readers) t.join();
  EXPECT_EQ(failures.load(), 0);
}

TEST_F(ConcurrencyStressTest, RemoteClientsRacingOneWriter) {
  // The same reader/writer race, but readers go through the full server
  // path: TCP, framing, admission control, pool execution, per-connection
  // sessions. Under TSan this covers the whole net/ stack against
  // concurrent DML.
  constexpr int kClients = 6;
  constexpr int kWrites = 200;
  constexpr int kQueriesPerClient = 30;

  Result<std::unique_ptr<net::Server>> started =
      net::Server::Start(db_.get(), net::ServerOptions());
  ASSERT_TRUE(started.ok()) << started.status().ToString();
  std::unique_ptr<net::Server> server = std::move(started).value();

  std::atomic<int> failures{0};
  std::thread writer([&] {
    for (int i = 0; i < kWrites; ++i) {
      Result<Oid> oid = db_->CreateObject(subs_[i % subs_.size()]);
      if (!oid.ok() ||
          !db_->SetAttr(oid.value(), "price", Value::Int(i % kPrices))
               .ok()) {
        failures.fetch_add(1);
        continue;
      }
      if (i % 3 == 0 && !db_->DeleteObject(oid.value()).ok()) {
        failures.fetch_add(1);
      }
    }
  });

  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int t = 0; t < kClients; ++t) {
    clients.emplace_back([&, t] {
      Result<std::unique_ptr<net::Client>> client =
          net::Client::Connect("127.0.0.1", server->port());
      if (!client.ok()) {
        failures.fetch_add(1);
        return;
      }
      const size_t upper_bound = live_ + kWrites;
      for (int q = 0; q < kQueriesPerClient; ++q) {
        Result<net::Client::QueryResult> r = client.value()->Query(
            "SELECT i FROM Item* i WHERE i.price = " +
            std::to_string((t * 13 + q) % kPrices));
        // Busy is a legitimate shed under load; anything else must be a
        // consistent answer.
        if (!r.ok()) {
          if (!r.status().IsResourceExhausted()) failures.fetch_add(1);
          continue;
        }
        if (r.value().oids.size() > upper_bound) failures.fetch_add(1);
      }
      Result<Session::Stats> stats = client.value()->SessionStats();
      if (!stats.ok() ||
          stats.value().queries + stats.value().failed >
              static_cast<uint64_t>(kQueriesPerClient)) {
        failures.fetch_add(1);
      }
    });
  }
  for (std::thread& t : clients) t.join();
  writer.join();
  EXPECT_EQ(failures.load(), 0);

  // Graceful shutdown with the database still alive, then a quiesced
  // in-process read must still validate.
  server->Shutdown();
  EXPECT_EQ(server->active_connections(), 0u);
  Result<Database::SelectResult> final_read =
      db_->Select(PriceRange(0, kPrices));
  ASSERT_TRUE(final_read.ok());
  EXPECT_TRUE(final_read.value().used_index);
}

}  // namespace
}  // namespace uindex
