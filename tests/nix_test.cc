#include <gtest/gtest.h>

#include <algorithm>

#include "baselines/nix/nix_index.h"
#include "tests/example_database.h"

namespace uindex {
namespace {

class NixIndexTest : public ::testing::Test {
 protected:
  NixIndexTest() : pager_(1024), buffers_(&pager_) {
    index_ = std::make_unique<NixIndex>(&buffers_, &db_.ids.schema,
                                        db_.AgePathSpec());
    Status s = index_->BuildFrom(*db_.store);
    EXPECT_TRUE(s.ok()) << s.ToString();
  }

  std::vector<Oid> Look(int64_t lo, int64_t hi, ClassId cls,
                        bool subtree) {
    Result<std::vector<Oid>> r =
        index_->Lookup(Value::Int(lo), Value::Int(hi), cls, subtree);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return std::move(r).value();
  }

  ExampleDatabase db_;
  Pager pager_;
  BufferManager buffers_;
  std::unique_ptr<NixIndex> index_;
};

TEST_F(NixIndexTest, IndexesEveryClassAlongThePath) {
  // §2: "(Age, 50) ... will index all vehicles ..., companies ... whose
  // president's age is 50".
  EXPECT_EQ(Look(50, 50, db_.ids.vehicle, true),
            (std::vector<Oid>{db_.v2, db_.v3, db_.v6}));
  EXPECT_EQ(Look(50, 50, db_.ids.company, true),
            (std::vector<Oid>{db_.c2}));
  EXPECT_EQ(Look(50, 50, db_.ids.employee, false),
            (std::vector<Oid>{db_.e1}));
}

TEST_F(NixIndexTest, SubclassQueries) {
  // Compact automobiles whose president's age is 45 (made by c1).
  EXPECT_EQ(Look(45, 45, db_.ids.compact_automobile, true),
            (std::vector<Oid>{db_.v5}));
  // Japanese auto companies at any age.
  EXPECT_EQ(Look(0, 100, db_.ids.japanese_auto_company, true),
            (std::vector<Oid>{db_.c1}));
  // Exact class Vehicle only.
  EXPECT_EQ(Look(0, 100, db_.ids.vehicle, false),
            (std::vector<Oid>{db_.v1}));
}

TEST_F(NixIndexTest, RangeQueries) {
  EXPECT_EQ(Look(51, 100, db_.ids.vehicle, true),
            (std::vector<Oid>{db_.v4}));
  EXPECT_EQ(Look(0, 100, db_.ids.vehicle, true).size(), 6u);
  EXPECT_EQ(Look(0, 100, db_.ids.company, true).size(), 3u);
}

TEST_F(NixIndexTest, AuxiliaryParentChains) {
  // Companies' parents (position 1) are the vehicles they manufacture.
  const auto parents_c2 =
      std::move(index_->ParentsOf(1, db_.c2)).value();
  std::vector<Oid> sorted = parents_c2;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, (std::vector<Oid>{db_.v2, db_.v3, db_.v6}));
  // Employees' parents (position 2) are the companies they preside over.
  EXPECT_EQ(std::move(index_->ParentsOf(2, db_.e1)).value(),
            (std::vector<Oid>{db_.c2}));
  EXPECT_TRUE(std::move(index_->ParentsOf(2, 9999)).value().empty());
}

TEST_F(NixIndexTest, RestrictedLookupChasesAuxTrees) {
  // Vehicles with president age 45 made by company c1 specifically: the
  // §4.4 case where NIX must consult the auxiliary structures.
  const auto got = std::move(index_->LookupRestricted(
                                 Value::Int(45), Value::Int(45),
                                 db_.ids.vehicle, true, 1, {db_.c1}))
                       .value();
  EXPECT_EQ(got, (std::vector<Oid>{db_.v1, db_.v5}));
  // Restricting to a company whose president is not 45: empty.
  EXPECT_TRUE(std::move(index_->LookupRestricted(
                            Value::Int(45), Value::Int(45),
                            db_.ids.vehicle, true, 1, {db_.c2}))
                  .value()
                  .empty());
}

TEST_F(NixIndexTest, RefcountsSurviveSharedMidPathObjects) {
  // c2 serves three vehicles; removing one instantiation must keep c2 (and
  // e1) indexed under 50 until the last one goes.
  auto path = [&](Oid v) {
    return std::vector<std::pair<ClassId, Oid>>{
        {db_.store->Get(v).value()->cls, v},
        {db_.ids.auto_company, db_.c2},
        {db_.ids.employee, db_.e1}};
  };
  ASSERT_TRUE(index_->Remove(Value::Int(50), path(db_.v2)).ok());
  EXPECT_EQ(Look(50, 50, db_.ids.vehicle, true),
            (std::vector<Oid>{db_.v3, db_.v6}));
  EXPECT_EQ(Look(50, 50, db_.ids.company, true),
            (std::vector<Oid>{db_.c2}));  // Still referenced twice.
  ASSERT_TRUE(index_->Remove(Value::Int(50), path(db_.v3)).ok());
  ASSERT_TRUE(index_->Remove(Value::Int(50), path(db_.v6)).ok());
  EXPECT_TRUE(Look(50, 50, db_.ids.company, true).empty());
  EXPECT_TRUE(Look(50, 50, db_.ids.employee, false).empty());
  // Re-insert works after full drain.
  ASSERT_TRUE(index_->Insert(Value::Int(50), path(db_.v2)).ok());
  EXPECT_EQ(Look(50, 50, db_.ids.vehicle, true),
            (std::vector<Oid>{db_.v2}));
}

TEST_F(NixIndexTest, ArityValidation) {
  EXPECT_TRUE(index_->Insert(Value::Int(1), {{db_.ids.vehicle, db_.v1}})
                  .IsInvalidArgument());
  EXPECT_TRUE(index_->Remove(Value::Int(1), {{db_.ids.vehicle, db_.v1}})
                  .IsInvalidArgument());
}

TEST_F(NixIndexTest, KeyGroupingReadsWholeDirectories) {
  // Load many postings under one key; a single-class lookup still reads
  // the whole spilled directory (key grouping, like CH-trees).
  for (Oid v = 1000; v < 1400; ++v) {
    ASSERT_TRUE(index_->Insert(Value::Int(33),
                               {{db_.ids.truck, v},
                                {db_.ids.truck_company, db_.c3},
                                {db_.ids.employee, db_.e2}})
                    .ok());
  }
  QueryCost cost(&buffers_);
  EXPECT_EQ(Look(33, 33, db_.ids.truck, true).size(), 400u);
  const uint64_t full = cost.PagesRead();
  QueryCost cost2(&buffers_);
  EXPECT_EQ(Look(33, 33, db_.ids.employee, false).size(), 1u);
  // Asking for one employee costs as much as asking for all trucks.
  EXPECT_GE(cost2.PagesRead() + 1, full);
}

}  // namespace
}  // namespace uindex
