#ifndef UINDEX_TESTS_EXAMPLE_DATABASE_H_
#define UINDEX_TESTS_EXAMPLE_DATABASE_H_

#include <memory>

#include "objects/object_store.h"
#include "schema/encoder.h"
#include "workload/paper_schema.h"

namespace uindex {

/// The paper's Example 1 instance database over the Fig. 1 schema:
///
///   v1 Vehicle(Legacy, White, c1)     c1 JapaneseAutoCompany(Subaru, e3)
///   v2 Automobile(Tipo, White, c2)    c2 AutoCompany(Fiat, e1)
///   v3 Automobile(Panda, Red, c2)     c3 AutoCompany(Renault, e2)
///   v4 Compact(R5, Red, c3)           e1 Employee(50)
///   v5 Compact(Justy, Blue, c1)       e2 Employee(60)
///   v6 Compact(Uno, White, c2)        e3 Employee(45)
struct ExampleDatabase {
  PaperSchema ids;
  std::unique_ptr<ClassCoder> coder;
  std::unique_ptr<ObjectStore> store;
  Oid e1, e2, e3;
  Oid c1, c2, c3;
  Oid v1, v2, v3, v4, v5, v6;

  // Non-movable: `store` and `coder` point into `ids.schema`.
  ExampleDatabase(const ExampleDatabase&) = delete;
  ExampleDatabase& operator=(const ExampleDatabase&) = delete;

  ExampleDatabase() {
    ExampleDatabase& db = *this;
    db.ids = PaperSchema::Build();
    db.coder = std::make_unique<ClassCoder>(
        std::move(ClassCoder::Assign(db.ids.schema)).value());
    db.store = std::make_unique<ObjectStore>(&db.ids.schema);
    ObjectStore& s = *db.store;

    auto employee = [&s, &db](int64_t age) {
      const Oid oid = s.Create(db.ids.employee).value();
      Status st = s.SetAttr(oid, "Age", Value::Int(age));
      assert(st.ok());
      (void)st;
      return oid;
    };
    db.e1 = employee(50);
    db.e2 = employee(60);
    db.e3 = employee(45);

    auto company = [&s](ClassId cls, const char* name, Oid president) {
      const Oid oid = s.Create(cls).value();
      Status st = s.SetAttr(oid, "Name", Value::Str(name));
      assert(st.ok());
      st = s.SetAttr(oid, "president", Value::Ref(president));
      assert(st.ok());
      (void)st;
      return oid;
    };
    db.c1 = company(db.ids.japanese_auto_company, "Subaru", db.e3);
    db.c2 = company(db.ids.auto_company, "Fiat", db.e1);
    db.c3 = company(db.ids.auto_company, "Renault", db.e2);

    auto vehicle = [&s](ClassId cls, const char* name, const char* color,
                        Oid maker) {
      const Oid oid = s.Create(cls).value();
      Status st = s.SetAttr(oid, "Name", Value::Str(name));
      assert(st.ok());
      st = s.SetAttr(oid, "Color", Value::Str(color));
      assert(st.ok());
      st = s.SetAttr(oid, "manufactured-by", Value::Ref(maker));
      assert(st.ok());
      (void)st;
      return oid;
    };
    db.v1 = vehicle(db.ids.vehicle, "Legacy", "White", db.c1);
    db.v2 = vehicle(db.ids.automobile, "Tipo", "White", db.c2);
    db.v3 = vehicle(db.ids.automobile, "Panda", "Red", db.c2);
    db.v4 = vehicle(db.ids.compact_automobile, "R5", "Red", db.c3);
    db.v5 = vehicle(db.ids.compact_automobile, "Justy", "Blue", db.c1);
    db.v6 = vehicle(db.ids.compact_automobile, "Uno", "White", db.c2);
  }

  /// Path spec Vehicle/Company/Employee indexing Age (combined variant).
  PathSpec AgePathSpec() const {
    PathSpec spec;
    spec.classes = {ids.vehicle, ids.company, ids.employee};
    spec.ref_attrs = {"manufactured-by", "president"};
    spec.indexed_attr = "Age";
    spec.value_kind = Value::Kind::kInt;
    spec.include_subclasses = true;
    return spec;
  }

  /// Class-hierarchy spec over Vehicle indexing Color.
  PathSpec ColorSpec() const {
    return PathSpec::ClassHierarchy(ids.vehicle, "Color",
                                    Value::Kind::kString);
  }
};

}  // namespace uindex

#endif  // UINDEX_TESTS_EXAMPLE_DATABASE_H_
