#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <tuple>
#include <vector>

#include "btree/btree.h"
#include "util/random.h"

namespace uindex {
namespace {

class BTreeTest : public ::testing::Test {
 protected:
  BTreeTest() : pager_(1024), buffers_(&pager_) {}
  Pager pager_;
  BufferManager buffers_;
};

TEST_F(BTreeTest, EmptyTree) {
  BTree tree(&buffers_);
  EXPECT_TRUE(tree.empty());
  EXPECT_EQ(tree.size(), 0u);
  EXPECT_TRUE(tree.Get(Slice("x")).status().IsNotFound());
  EXPECT_TRUE(tree.Delete(Slice("x")).IsNotFound());
  auto it = tree.NewIterator();
  it.SeekToFirst();
  EXPECT_FALSE(it.Valid());
  EXPECT_TRUE(tree.Validate().ok());
}

TEST_F(BTreeTest, InsertGetDelete) {
  BTree tree(&buffers_);
  ASSERT_TRUE(tree.Insert(Slice("k1"), Slice("v1")).ok());
  ASSERT_TRUE(tree.Insert(Slice("k2"), Slice("v2")).ok());
  EXPECT_EQ(tree.size(), 2u);
  EXPECT_EQ(tree.Get(Slice("k1")).value(), "v1");
  EXPECT_EQ(tree.Get(Slice("k2")).value(), "v2");
  EXPECT_TRUE(tree.Contains(Slice("k1")));
  EXPECT_FALSE(tree.Contains(Slice("k3")));

  EXPECT_TRUE(tree.Insert(Slice("k1"), Slice("x")).IsAlreadyExists());
  ASSERT_TRUE(tree.Put(Slice("k1"), Slice("v1b")).ok());
  EXPECT_EQ(tree.Get(Slice("k1")).value(), "v1b");
  EXPECT_EQ(tree.size(), 2u);

  ASSERT_TRUE(tree.Delete(Slice("k1")).ok());
  EXPECT_FALSE(tree.Contains(Slice("k1")));
  EXPECT_EQ(tree.size(), 1u);
}

TEST_F(BTreeTest, SplitsGrowTheTree) {
  BTree tree(&buffers_);
  for (int i = 0; i < 2000; ++i) {
    char key[16];
    std::snprintf(key, sizeof(key), "key%06d", i);
    ASSERT_TRUE(tree.Insert(Slice(key), Slice("value")).ok());
  }
  EXPECT_EQ(tree.size(), 2000u);
  ASSERT_TRUE(tree.Validate().ok());
  auto stats = tree.ComputeStats();
  ASSERT_TRUE(stats.ok());
  EXPECT_GT(stats.value().height, 1u);
  EXPECT_GT(stats.value().leaf_nodes, 1u);
  EXPECT_EQ(stats.value().entries, 2000u);
  for (int i = 0; i < 2000; i += 37) {
    char key[16];
    std::snprintf(key, sizeof(key), "key%06d", i);
    EXPECT_TRUE(tree.Contains(Slice(key)));
  }
}

TEST_F(BTreeTest, IteratorScansInOrder) {
  BTree tree(&buffers_);
  for (int i = 999; i >= 0; --i) {
    char key[16];
    std::snprintf(key, sizeof(key), "k%04d", i);
    ASSERT_TRUE(tree.Insert(Slice(key), Slice(key)).ok());
  }
  auto it = tree.NewIterator();
  int count = 0;
  std::string prev;
  for (it.SeekToFirst(); it.Valid(); it.Next()) {
    EXPECT_TRUE(prev.empty() || Slice(prev) < it.key());
    prev = it.key().ToString();
    ++count;
  }
  EXPECT_EQ(count, 1000);
}

TEST_F(BTreeTest, SeekFindsLowerBound) {
  BTree tree(&buffers_);
  for (int i = 0; i < 100; i += 2) {
    char key[16];
    std::snprintf(key, sizeof(key), "k%04d", i);
    ASSERT_TRUE(tree.Insert(Slice(key), Slice()).ok());
  }
  auto it = tree.NewIterator();
  it.Seek(Slice("k0013"));
  ASSERT_TRUE(it.Valid());
  EXPECT_EQ(it.key().ToString(), "k0014");
  it.Seek(Slice("k0014"));
  ASSERT_TRUE(it.Valid());
  EXPECT_EQ(it.key().ToString(), "k0014");
  it.Seek(Slice("k9999"));
  EXPECT_FALSE(it.Valid());
}

TEST_F(BTreeTest, DeleteEverythingCollapsesToEmptyRoot) {
  BTree tree(&buffers_);
  const uint64_t base_pages = pager_.live_page_count();
  for (int i = 0; i < 1500; ++i) {
    char key[16];
    std::snprintf(key, sizeof(key), "k%06d", i);
    ASSERT_TRUE(tree.Insert(Slice(key), Slice("payload-xyz")).ok());
  }
  for (int i = 0; i < 1500; ++i) {
    char key[16];
    std::snprintf(key, sizeof(key), "k%06d", i);
    ASSERT_TRUE(tree.Delete(Slice(key)).ok());
  }
  EXPECT_EQ(tree.size(), 0u);
  ASSERT_TRUE(tree.Validate().ok());
  auto stats = tree.ComputeStats();
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats.value().height, 1u);  // Root collapsed back to a leaf.
  EXPECT_EQ(pager_.live_page_count(), base_pages);  // All pages reclaimed.
}

TEST_F(BTreeTest, ClearFreesEverythingAndStaysUsable) {
  BTree tree(&buffers_);
  const uint64_t empty_pages = pager_.live_page_count();
  for (int i = 0; i < 3000; ++i) {
    char key[16];
    std::snprintf(key, sizeof(key), "k%06d", i);
    ASSERT_TRUE(tree.Insert(Slice(key), Slice("payload")).ok());
  }
  EXPECT_GT(pager_.live_page_count(), empty_pages);
  ASSERT_TRUE(tree.Clear().ok());
  EXPECT_EQ(pager_.live_page_count(), empty_pages);
  EXPECT_EQ(tree.size(), 0u);
  ASSERT_TRUE(tree.Validate().ok());
  // Fully usable again.
  ASSERT_TRUE(tree.Insert(Slice("after"), Slice("clear")).ok());
  EXPECT_EQ(tree.Get(Slice("after")).value(), "clear");
}

TEST_F(BTreeTest, RejectsEntryLargerThanPage) {
  BTree tree(&buffers_);
  const std::string huge(2000, 'x');
  EXPECT_TRUE(tree.Insert(Slice(huge), Slice()).IsInvalidArgument());
}

TEST_F(BTreeTest, MaxEntriesPerNodeCapsFanout) {
  BTreeOptions opts;
  opts.max_entries_per_node = 10;  // Paper Table 1: "small node size m=10".
  BTree tree(&buffers_, opts);
  for (int i = 0; i < 500; ++i) {
    char key[16];
    std::snprintf(key, sizeof(key), "k%04d", i);
    ASSERT_TRUE(tree.Insert(Slice(key), Slice()).ok());
  }
  ASSERT_TRUE(tree.Validate().ok());
  auto stats = tree.ComputeStats();
  ASSERT_TRUE(stats.ok());
  // 500 entries at <= 10 per leaf: at least 50 leaves and a real hierarchy.
  EXPECT_GE(stats.value().leaf_nodes, 50u);
  EXPECT_GE(stats.value().height, 3u);
}

TEST_F(BTreeTest, IteratorCountsPageReads) {
  BTree tree(&buffers_);
  for (int i = 0; i < 3000; ++i) {
    char key[16];
    std::snprintf(key, sizeof(key), "k%06d", i);
    ASSERT_TRUE(tree.Insert(Slice(key), Slice("0123456789")).ok());
  }
  auto stats = tree.ComputeStats().value();
  QueryCost cost(&buffers_);
  auto it = tree.NewIterator();
  int n = 0;
  for (it.SeekToFirst(); it.Valid(); it.Next()) ++n;
  EXPECT_EQ(n, 3000);
  // Full scan reads every leaf once plus the descent to the first leaf.
  EXPECT_GE(cost.PagesRead(), stats.leaf_nodes);
  EXPECT_LE(cost.PagesRead(), stats.leaf_nodes + stats.height);
}

// Delete-rebalance borrow replaces a parent separator with a sibling
// boundary key that can be LONGER than the one it displaced; a full
// parent must then split, not fail serialization ("node does not fit in
// page"). Needs wildly variable key lengths at a small page — uniform
// keys never grow a separator. Distilled from deep-path churn at 10
// hops (bench_paths), which hit this in the original borrow path.
TEST(BTreeBorrowTest, BorrowGrowsSeparatorInFullParent) {
  // When a merge is impossible, RebalanceAfterDelete borrows one entry
  // across the sibling pair and replaces their separator with a sibling
  // boundary key that can be *longer* than the one it displaced.  With a
  // full parent the grown separator no longer fits the page; the parent
  // must go through the insert-side split path.  Key lengths here swing
  // between 1 and 104 bytes on a 256-byte page so that merges routinely
  // fail and separators grow by close to a page.  Seed and pattern are
  // pinned: before the fix this exact sequence died at delete step 347
  // with Corruption("node does not fit in page").
  Pager pager(256);
  BufferManager buffers(&pager);
  BTree tree(&buffers, BTreeOptions());
  Random rng(0);

  auto make_key = [](uint32_t id) {
    const uint32_t h = (id * 2654435761u) ^ 40503u;
    const size_t len = 1 + h % 104;
    std::string key(len, static_cast<char>('A' + id % 52));
    char tail[16];
    std::snprintf(tail, sizeof(tail), "%08u", id);
    if (key.size() < 9) key.resize(9);
    std::memcpy(&key[key.size() - 8], tail, 8);
    return key;
  };

  std::vector<uint32_t> ids;
  for (uint32_t id = 0; id < 400; ++id) ids.push_back(id);
  for (uint32_t id : ids) {
    ASSERT_TRUE(tree.Insert(Slice(make_key(id)), Slice("v")).ok()) << id;
  }
  rng.Shuffle(ids);
  size_t step = 0;
  for (uint32_t id : ids) {
    ASSERT_TRUE(tree.Delete(Slice(make_key(id))).ok())
        << "step " << step << " id " << id;
    if (++step % 37 == 0) {
      ASSERT_TRUE(tree.Validate().ok()) << "step " << step;
    }
  }
  ASSERT_TRUE(tree.Validate().ok());
  EXPECT_EQ(tree.size(), 0u);
  EXPECT_TRUE(tree.empty());
}

// ---------------------------------------------------------------------------
// Randomized differential test against std::map across page sizes,
// compression settings, and value shapes.
// ---------------------------------------------------------------------------

class BTreeFuzzTest
    : public ::testing::TestWithParam<std::tuple<uint32_t, bool, uint32_t>> {
};

TEST_P(BTreeFuzzTest, MatchesStdMap) {
  const uint32_t page_size = std::get<0>(GetParam());
  const bool compression = std::get<1>(GetParam());
  const uint32_t max_value = std::get<2>(GetParam());

  Pager pager(page_size);
  BufferManager buffers(&pager);
  BTreeOptions opts;
  opts.prefix_compression = compression;
  BTree tree(&buffers, opts);
  std::map<std::string, std::string> model;
  Random rng(page_size * 31 + compression * 7 + max_value);

  for (int op = 0; op < 8000; ++op) {
    const uint64_t k = rng.Uniform(700);
    // Heavily shared prefixes exercise the front compression.
    std::string key = "prefix/shared/" + std::to_string(k % 13) + "/" +
                      std::to_string(k);
    const int action = static_cast<int>(rng.Uniform(10));
    if (action < 5) {
      std::string value(rng.Uniform(max_value + 1), 'v');
      ASSERT_TRUE(tree.Put(Slice(key), Slice(value)).ok());
      model[key] = value;
    } else if (action < 8) {
      Status s = tree.Delete(Slice(key));
      if (model.erase(key) > 0) {
        ASSERT_TRUE(s.ok());
      } else {
        ASSERT_TRUE(s.IsNotFound());
      }
    } else {
      Result<std::string> got = tree.Get(Slice(key));
      auto it = model.find(key);
      if (it == model.end()) {
        ASSERT_TRUE(got.status().IsNotFound());
      } else {
        ASSERT_TRUE(got.ok());
        ASSERT_EQ(got.value(), it->second);
      }
    }
    if (op % 1000 == 999) {
      ASSERT_TRUE(tree.Validate().ok()) << "op " << op;
    }
  }
  ASSERT_TRUE(tree.Validate().ok());
  ASSERT_EQ(tree.size(), model.size());

  // Final full-scan equivalence.
  auto it = tree.NewIterator();
  auto mit = model.begin();
  for (it.SeekToFirst(); it.Valid(); it.Next(), ++mit) {
    ASSERT_NE(mit, model.end());
    EXPECT_EQ(it.key().ToString(), mit->first);
    EXPECT_EQ(it.value().ToString(), mit->second);
  }
  EXPECT_EQ(mit, model.end());
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, BTreeFuzzTest,
    ::testing::Combine(::testing::Values(256u, 512u, 1024u),
                       ::testing::Bool(), ::testing::Values(0u, 24u)));

}  // namespace
}  // namespace uindex
