#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "btree/btree.h"
#include "core/uindex.h"
#include "exec/thread_pool.h"
#include "storage/prefetch.h"
#include "workload/database_generator.h"

namespace uindex {
namespace {

// Regression tests for the iterator error contract: a FetchNode failure
// mid-scan used to silently end the iteration (Valid() false, no way to
// distinguish "end of data" from "corrupt page"). The iterator now parks
// the failure in `status()` and ForwardScan checks it after the sweep.

// Scribbles garbage over the page, going through FetchForWrite so the page
// version bumps and any decoded-node cache entry is dropped — exactly what
// a torn write by a buggy writer would look like to a reader.
void CorruptPage(BufferManager* buffers, PageId id) {
  PageRef page = buffers->FetchForWrite(id);
  ASSERT_NE(page, nullptr);
  std::memset(page->data(), 0xFF, page->size());
}

// Finds the leaf whose smallest key is largest — the *last* leaf in key
// order, so a forward scan must traverse the healthy prefix of the chain
// before it trips over the corruption.
PageId FindLastLeaf(const Pager& pager) {
  PageId best = kInvalidPageId;
  std::string best_key;
  for (PageId id = 1; id <= pager.max_page_id(); ++id) {
    const Page* page = pager.GetPage(id);
    if (page == nullptr) continue;
    Result<Node> node = Node::Parse(*page);
    if (!node.ok() || !node.value().is_leaf()) continue;
    if (node.value().entries().empty()) continue;
    const std::string& first = node.value().entries().front().key;
    if (best == kInvalidPageId || first > best_key) {
      best = id;
      best_key = first;
    }
  }
  return best;
}

class CursorStatusTest : public ::testing::Test {
 protected:
  CursorStatusTest() : pager_(1024), buffers_(&pager_) {}

  void BuildTree(BTree* tree, int keys) {
    for (int i = 0; i < keys; ++i) {
      char key[16];
      std::snprintf(key, sizeof(key), "key%06d", i);
      ASSERT_TRUE(tree->Insert(Slice(key), Slice("v")).ok());
    }
  }

  Pager pager_;
  BufferManager buffers_;
};

TEST_F(CursorStatusTest, CleanScanHasOkStatus) {
  BTree tree(&buffers_);
  BuildTree(&tree, 500);
  auto it = tree.NewIterator();
  size_t n = 0;
  for (it.SeekToFirst(); it.Valid(); it.Next()) ++n;
  EXPECT_EQ(n, 500u);
  EXPECT_TRUE(it.status().ok());
}

TEST_F(CursorStatusTest, MidScanCorruptionSurfacesInStatus) {
  BTree tree(&buffers_);
  BuildTree(&tree, 2000);
  const PageId victim = FindLastLeaf(pager_);
  ASSERT_NE(victim, kInvalidPageId);
  CorruptPage(&buffers_, victim);

  auto it = tree.NewIterator();
  size_t n = 0;
  for (it.SeekToFirst(); it.Valid(); it.Next()) ++n;
  EXPECT_FALSE(it.Valid());
  EXPECT_FALSE(it.status().ok());
  EXPECT_TRUE(it.status().IsCorruption()) << it.status().ToString();
  // The healthy prefix was scanned; the corrupt tail was not invented.
  EXPECT_GT(n, 0u);
  EXPECT_LT(n, 2000u);
}

TEST_F(CursorStatusTest, SeekIntoCorruptLeafSetsStatus) {
  BTree tree(&buffers_);
  BuildTree(&tree, 2000);
  const PageId victim = FindLastLeaf(pager_);
  ASSERT_NE(victim, kInvalidPageId);
  const Page* page = pager_.GetPage(victim);
  const std::string target =
      Node::Parse(*page).value().entries().front().key;
  CorruptPage(&buffers_, victim);

  auto it = tree.NewIterator();
  it.Seek(Slice(target));
  EXPECT_FALSE(it.Valid());
  EXPECT_FALSE(it.status().ok());
  EXPECT_TRUE(it.status().IsCorruption()) << it.status().ToString();
}

TEST_F(CursorStatusTest, CorruptionSurfacesWithReadaheadActive) {
  BTree tree(&buffers_);
  BuildTree(&tree, 2000);
  const PageId victim = FindLastLeaf(pager_);
  ASSERT_NE(victim, kInvalidPageId);
  CorruptPage(&buffers_, victim);

  // Readahead warms corrupt bytes tolerantly (WarmNode drops parse
  // failures); the *demand* load must still report the corruption.
  exec::ThreadPool pool(2);
  PrefetchScheduler scheduler(&buffers_, &pool);
  buffers_.SetPrefetcher(&scheduler);
  auto it = tree.NewIterator();
  size_t n = 0;
  for (it.SeekToFirst(); it.Valid(); it.Next()) ++n;
  EXPECT_FALSE(it.status().ok());
  EXPECT_TRUE(it.status().IsCorruption()) << it.status().ToString();
  EXPECT_LT(n, 2000u);
  buffers_.SetPrefetcher(nullptr);
  scheduler.Drain();
}

TEST_F(CursorStatusTest, ForwardScanReturnsTheIteratorError) {
  SetHierarchy hier = std::move(BuildSetHierarchy(4)).value();
  PathSpec spec =
      PathSpec::ClassHierarchy(hier.root, "key", Value::Kind::kInt);
  UIndex index(&buffers_, &hier.schema, hier.coder.get(), spec);

  SetWorkloadConfig cfg;
  cfg.num_objects = 4000;
  cfg.num_sets = 4;
  cfg.num_distinct_keys = 100;
  for (const Posting& p : GeneratePostings(cfg)) {
    UIndex::Entry entry;
    entry.path = {{hier.sets[p.set_index], p.oid}};
    entry.key =
        index.key_encoder().EncodeEntry(Value::Int(p.key), entry.path);
    ASSERT_TRUE(index.InsertEntry(entry).ok());
  }

  Query query = Query::Range(Value::Int(0), Value::Int(99));
  ClassSelector sel;
  for (size_t i = 0; i < 4; ++i) {
    sel.include.push_back({hier.sets[i], false});
  }
  query.With(std::move(sel), ValueSlot::Wanted());
  ASSERT_TRUE(index.ForwardScan(query).ok());  // Healthy baseline.

  const PageId victim = FindLastLeaf(pager_);
  ASSERT_NE(victim, kInvalidPageId);
  CorruptPage(&buffers_, victim);

  Result<QueryResult> r = index.ForwardScan(query);
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsCorruption()) << r.status().ToString();
}

}  // namespace
}  // namespace uindex
