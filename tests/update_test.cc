#include <gtest/gtest.h>

#include "core/update.h"
#include "tests/example_database.h"
#include "util/random.h"

namespace uindex {
namespace {

class UpdateTest : public ::testing::Test {
 protected:
  UpdateTest()
      : pager_(1024),
        buffers_(&pager_),
        color_index_(&buffers_, &db_.ids.schema, db_.coder.get(),
                     db_.ColorSpec()),
        age_index_(&buffers_, &db_.ids.schema, db_.coder.get(),
                   db_.AgePathSpec()),
        idb_(&db_.ids.schema, db_.store.get()) {
    EXPECT_TRUE(color_index_.BuildFrom(*db_.store).ok());
    EXPECT_TRUE(age_index_.BuildFrom(*db_.store).ok());
    idb_.RegisterIndex(&color_index_);
    idb_.RegisterIndex(&age_index_);
  }

  std::vector<Oid> RedVehicles() {
    Query q = Query::ExactValue(Value::Str("Red"));
    q.With(ClassSelector::Subtree(db_.ids.vehicle), ValueSlot::Wanted());
    return std::move(color_index_.Parscan(q)).value().Distinct(0);
  }

  std::vector<Oid> VehiclesByPresidentAge(int64_t age) {
    Query q = Query::ExactValue(Value::Int(age));
    q.With(ClassSelector::Exactly(db_.ids.employee))
        .With(ClassSelector::Subtree(db_.ids.company))
        .With(ClassSelector::Subtree(db_.ids.vehicle), ValueSlot::Wanted());
    return std::move(age_index_.Parscan(q)).value().Distinct(2);
  }

  ExampleDatabase db_;
  Pager pager_;
  BufferManager buffers_;
  UIndex color_index_;
  UIndex age_index_;
  IndexedDatabase idb_;
};

TEST_F(UpdateTest, CreateThenSetAttrsIndexesNewObject) {
  const Oid truck = idb_.CreateObject(db_.ids.truck).value();
  EXPECT_EQ(color_index_.entry_count(), 6u);  // Not yet indexed.
  ASSERT_TRUE(idb_.SetAttr(truck, "Color", Value::Str("Red")).ok());
  EXPECT_EQ(color_index_.entry_count(), 7u);
  EXPECT_EQ(RedVehicles(), (std::vector<Oid>{db_.v3, db_.v4, truck}));
  // The age path index gains an entry once the manufacturer is set.
  EXPECT_EQ(age_index_.entry_count(), 6u);
  ASSERT_TRUE(
      idb_.SetAttr(truck, "manufactured-by", Value::Ref(db_.c2)).ok());
  EXPECT_EQ(age_index_.entry_count(), 7u);
  EXPECT_EQ(VehiclesByPresidentAge(50),
            (std::vector<Oid>{db_.v2, db_.v3, db_.v6, truck}));
}

TEST_F(UpdateTest, AttributeValueChangeMovesEntry) {
  ASSERT_TRUE(idb_.SetAttr(db_.v3, "Color", Value::Str("Blue")).ok());
  EXPECT_EQ(color_index_.entry_count(), 6u);
  EXPECT_EQ(RedVehicles(), (std::vector<Oid>{db_.v4}));
}

TEST_F(UpdateTest, PresidentSwitchRebatchesPathEntries) {
  // §3.5 / §4.2: "a company replaces its president" — all entries under
  // the old (president, company) cluster move to the new one.
  EXPECT_EQ(VehiclesByPresidentAge(50),
            (std::vector<Oid>{db_.v2, db_.v3, db_.v6}));
  ASSERT_TRUE(idb_.SetAttr(db_.c2, "president", Value::Ref(db_.e2)).ok());
  EXPECT_TRUE(VehiclesByPresidentAge(50).empty());
  EXPECT_EQ(VehiclesByPresidentAge(60),
            (std::vector<Oid>{db_.v2, db_.v3, db_.v4, db_.v6}));
  EXPECT_EQ(age_index_.entry_count(), 6u);
  EXPECT_TRUE(age_index_.btree().Validate().ok());
}

TEST_F(UpdateTest, MidPathAgeChangeRekeysDependentVehicles) {
  // e1 (president of c2) has a birthday: every vehicle through c2 re-keys.
  ASSERT_TRUE(idb_.SetAttr(db_.e1, "Age", Value::Int(51)).ok());
  EXPECT_TRUE(VehiclesByPresidentAge(50).empty());
  EXPECT_EQ(VehiclesByPresidentAge(51),
            (std::vector<Oid>{db_.v2, db_.v3, db_.v6}));
}

TEST_F(UpdateTest, RepointManufacturerMovesOneEntry) {
  ASSERT_TRUE(
      idb_.SetAttr(db_.v6, "manufactured-by", Value::Ref(db_.c3)).ok());
  EXPECT_EQ(VehiclesByPresidentAge(50), (std::vector<Oid>{db_.v2, db_.v3}));
  EXPECT_EQ(VehiclesByPresidentAge(60), (std::vector<Oid>{db_.v4, db_.v6}));
}

TEST_F(UpdateTest, DeleteObjectRemovesAllItsEntries) {
  ASSERT_TRUE(idb_.DeleteObject(db_.v3).ok());
  EXPECT_EQ(color_index_.entry_count(), 5u);
  EXPECT_EQ(age_index_.entry_count(), 5u);
  EXPECT_EQ(RedVehicles(), (std::vector<Oid>{db_.v4}));

  // Deleting a mid-path object removes every entry through it.
  ASSERT_TRUE(idb_.DeleteObject(db_.c2).ok());
  EXPECT_EQ(age_index_.entry_count(), 3u);  // v2, v6 lost their paths.
  EXPECT_EQ(color_index_.entry_count(), 5u);  // Color entries unaffected.
  EXPECT_TRUE(VehiclesByPresidentAge(50).empty());
}

TEST_F(UpdateTest, DeleteTailEmployeeRemovesDependentPaths) {
  ASSERT_TRUE(idb_.DeleteObject(db_.e1).ok());
  EXPECT_EQ(age_index_.entry_count(), 3u);
  EXPECT_TRUE(VehiclesByPresidentAge(50).empty());
  EXPECT_TRUE(age_index_.btree().Validate().ok());
}

TEST_F(UpdateTest, RandomizedMaintenanceStaysConsistent) {
  // Apply random mutations through IndexedDatabase, then verify the index
  // matches a freshly built one entry-for-entry.
  Random rng(2024);
  std::vector<Oid> vehicles = {db_.v1, db_.v2, db_.v3, db_.v4, db_.v5,
                               db_.v6};
  const std::vector<Oid> companies = {db_.c1, db_.c2, db_.c3};
  const std::vector<Oid> employees = {db_.e1, db_.e2, db_.e3};
  const char* colors[] = {"Red", "Blue", "Green", "White"};

  for (int op = 0; op < 300; ++op) {
    const int action = static_cast<int>(rng.Uniform(5));
    if (action == 0) {
      const Oid v = vehicles[rng.Uniform(vehicles.size())];
      ASSERT_TRUE(
          idb_.SetAttr(v, "Color", Value::Str(colors[rng.Uniform(4)])).ok());
    } else if (action == 1) {
      const Oid v = vehicles[rng.Uniform(vehicles.size())];
      ASSERT_TRUE(idb_.SetAttr(v, "manufactured-by",
                               Value::Ref(companies[rng.Uniform(3)]))
                      .ok());
    } else if (action == 2) {
      const Oid c = companies[rng.Uniform(3)];
      ASSERT_TRUE(
          idb_.SetAttr(c, "president", Value::Ref(employees[rng.Uniform(3)]))
              .ok());
    } else if (action == 3) {
      const Oid e = employees[rng.Uniform(3)];
      ASSERT_TRUE(idb_.SetAttr(e, "Age",
                               Value::Int(static_cast<int64_t>(
                                   rng.UniformRange(20, 70))))
                      .ok());
    } else {
      const Oid v = idb_.CreateObject(db_.ids.truck).value();
      ASSERT_TRUE(
          idb_.SetAttr(v, "Color", Value::Str(colors[rng.Uniform(4)])).ok());
      ASSERT_TRUE(idb_.SetAttr(v, "manufactured-by",
                               Value::Ref(companies[rng.Uniform(3)]))
                      .ok());
      vehicles.push_back(v);
    }
  }
  ASSERT_TRUE(color_index_.btree().Validate().ok());
  ASSERT_TRUE(age_index_.btree().Validate().ok());

  // Rebuild from scratch and compare full key sequences.
  Pager fresh_pager(1024);
  BufferManager fresh_buffers(&fresh_pager);
  UIndex fresh_color(&fresh_buffers, &db_.ids.schema, db_.coder.get(),
                     db_.ColorSpec());
  UIndex fresh_age(&fresh_buffers, &db_.ids.schema, db_.coder.get(),
                   db_.AgePathSpec());
  ASSERT_TRUE(fresh_color.BuildFrom(*db_.store).ok());
  ASSERT_TRUE(fresh_age.BuildFrom(*db_.store).ok());

  auto keys_of = [](const UIndex& index) {
    std::vector<std::string> keys;
    auto it = index.btree().NewIterator();
    for (it.SeekToFirst(); it.Valid(); it.Next()) {
      keys.push_back(it.key().ToString());
    }
    return keys;
  };
  EXPECT_EQ(keys_of(color_index_), keys_of(fresh_color));
  EXPECT_EQ(keys_of(age_index_), keys_of(fresh_age));
}

}  // namespace
}  // namespace uindex
