#include <gtest/gtest.h>

#include "db/database.h"
#include "util/random.h"

namespace uindex {
namespace {

// ---------------------------------------------------------------------------
// Parser unit tests.
// ---------------------------------------------------------------------------

TEST(OqlParserTest, ParsesSimpleQuery) {
  const OqlQuery q = std::move(ParseOql(
                                   "SELECT v FROM Vehicle* v WHERE "
                                   "v.Color = 'Red'"))
                         .value();
  EXPECT_EQ(q.var, "v");
  EXPECT_EQ(q.from.name, "Vehicle");
  EXPECT_TRUE(q.from.with_subclasses);
  ASSERT_EQ(q.conditions.size(), 1u);
  EXPECT_EQ(q.conditions[0].kind, OqlCondition::Kind::kCompare);
  EXPECT_EQ(q.conditions[0].op, "=");
  EXPECT_EQ(q.conditions[0].path.steps,
            (std::vector<std::string>{"Color"}));
  EXPECT_EQ(q.conditions[0].value1.AsString(), "Red");
}

TEST(OqlParserTest, ParsesPathBetweenAndIs) {
  const OqlQuery q =
      std::move(ParseOql("select v from Truck v where "
                         "v.made-by.president.Age BETWEEN 50 AND 60 "
                         "and v.made-by IS JapaneseAutoCompany*"))
          .value();
  EXPECT_FALSE(q.from.with_subclasses);
  ASSERT_EQ(q.conditions.size(), 2u);
  EXPECT_EQ(q.conditions[0].kind, OqlCondition::Kind::kBetween);
  EXPECT_EQ(q.conditions[0].path.steps,
            (std::vector<std::string>{"made-by", "president", "Age"}));
  EXPECT_EQ(q.conditions[0].value1.AsInt(), 50);
  EXPECT_EQ(q.conditions[0].value2.AsInt(), 60);
  EXPECT_EQ(q.conditions[1].kind, OqlCondition::Kind::kIs);
  EXPECT_EQ(q.conditions[1].class_ref.name, "JapaneseAutoCompany");
  EXPECT_TRUE(q.conditions[1].class_ref.with_subclasses);
}

TEST(OqlParserTest, ParsesInListsAndComparisons) {
  const OqlQuery q =
      std::move(ParseOql("SELECT x FROM Thing x WHERE "
                         "x.size >= -3 AND x.Color IN ('Red', 'Blue')"))
          .value();
  ASSERT_EQ(q.conditions.size(), 2u);
  EXPECT_EQ(q.conditions[0].op, ">=");
  EXPECT_EQ(q.conditions[0].value1.AsInt(), -3);
  EXPECT_EQ(q.conditions[1].kind, OqlCondition::Kind::kIn);
  ASSERT_EQ(q.conditions[1].values.size(), 2u);
  EXPECT_EQ(q.conditions[1].values[1].AsString(), "Blue");
}

TEST(OqlParserTest, RejectsMalformedInput) {
  EXPECT_TRUE(ParseOql("").status().IsInvalidArgument());
  EXPECT_TRUE(ParseOql("SELECT v").status().IsInvalidArgument());
  EXPECT_TRUE(ParseOql("SELECT v FROM X w WHERE v.a = 1")
                  .status()
                  .IsInvalidArgument());  // Variable mismatch.
  EXPECT_TRUE(ParseOql("SELECT v FROM X v WHERE w.a = 1")
                  .status()
                  .IsInvalidArgument());  // Unknown variable.
  EXPECT_TRUE(ParseOql("SELECT v FROM X v WHERE v.a ! 1")
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(ParseOql("SELECT v FROM X v WHERE v.a = 'unterminated")
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(ParseOql("SELECT v FROM X v WHERE v.a = 1 garbage")
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(ParseOql("SELECT v FROM X v WHERE v.a IN ()")
                  .status()
                  .IsInvalidArgument());
}

TEST(OqlParserTest, ErrorsCarryByteOffsetAndCaret) {
  // A misspelled keyword points at the offending token...
  //   SELECT v FORM Vehicle* v WHERE v.Color = 'Red'
  //            ^ byte 9
  const std::string text =
      "SELECT v FORM Vehicle* v WHERE v.Color = 'Red'";
  const Status s = ParseOql(text).status();
  ASSERT_TRUE(s.IsInvalidArgument());
  EXPECT_NE(s.message().find("expected FROM at byte 9"), std::string::npos)
      << s.message();
  // ...and the caret sits under that byte in the echoed line.
  const size_t line_at = s.message().find("  " + text);
  ASSERT_NE(line_at, std::string::npos) << s.message();
  const size_t caret_line = s.message().find('\n', line_at) + 1;
  EXPECT_EQ(s.message().substr(caret_line, 2 + 9 + 1),
            "  " + std::string(9, ' ') + "^");
}

TEST(OqlParserTest, ErrorOffsetsPointAtTheRightToken) {
  struct Case {
    const char* text;
    size_t offset;
  };
  const Case cases[] = {
      // Unknown variable 'w' in the WHERE clause.
      {"SELECT v FROM X v WHERE w.a = 1", 24},
      // FROM variable mismatch points at the FROM variable.
      {"SELECT v FROM X w WHERE v.a = 1", 16},
      // Unexpected character mid-input.
      {"SELECT v FROM X v WHERE v.a ! 1", 28},
      // Unterminated string points at its opening quote.
      {"SELECT v FROM X v WHERE v.a = 'oops", 30},
      // Trailing garbage after a complete query.
      {"SELECT v FROM X v WHERE v.a = 1 garbage", 32},
      // Errors at end-of-input point one past the last byte.
      {"SELECT v FROM X v WHERE", 23},
  };
  for (const Case& c : cases) {
    const Status s = ParseOql(c.text).status();
    ASSERT_TRUE(s.IsInvalidArgument()) << c.text;
    EXPECT_NE(
        s.message().find("at byte " + std::to_string(c.offset) + "\n"),
        std::string::npos)
        << c.text << " -> " << s.message();
    EXPECT_NE(s.message().find('^'), std::string::npos) << c.text;
  }
}

// ---------------------------------------------------------------------------
// Planner/executor tests over a real database.
// ---------------------------------------------------------------------------

class OqlExecutionTest : public ::testing::Test {
 protected:
  OqlExecutionTest() {
    employee_ = db_.CreateClass("Employee").value();
    company_ = db_.CreateClass("Company").value();
    japanese_ = db_.CreateSubclass("JapaneseCompany", company_).value();
    vehicle_ = db_.CreateClass("Vehicle").value();
    car_ = db_.CreateSubclass("Car", vehicle_).value();
    truck_ = db_.CreateSubclass("Truck", vehicle_).value();
    EXPECT_TRUE(db_.CreateReference(vehicle_, company_, "made-by").ok());
    EXPECT_TRUE(db_.CreateReference(company_, employee_, "president").ok());

    e50_ = NewEmployee(50);
    e60_ = NewEmployee(60);
    subaru_ = NewCompany(japanese_, e50_);
    fiat_ = NewCompany(company_, e60_);
    v_red_car_ = NewVehicle(car_, "Red", 20, subaru_);
    v_blue_car_ = NewVehicle(car_, "Blue", 35, fiat_);
    v_red_truck_ = NewVehicle(truck_, "Red", 50, fiat_);
    v_plain_ = NewVehicle(vehicle_, "Green", 10, subaru_);
  }

  Oid NewEmployee(int64_t age) {
    const Oid oid = db_.CreateObject(employee_).value();
    EXPECT_TRUE(db_.SetAttr(oid, "Age", Value::Int(age)).ok());
    return oid;
  }
  Oid NewCompany(ClassId cls, Oid president) {
    const Oid oid = db_.CreateObject(cls).value();
    EXPECT_TRUE(db_.SetAttr(oid, "president", Value::Ref(president)).ok());
    return oid;
  }
  Oid NewVehicle(ClassId cls, const char* color, int64_t price, Oid maker) {
    const Oid oid = db_.CreateObject(cls).value();
    EXPECT_TRUE(db_.SetAttr(oid, "Color", Value::Str(color)).ok());
    EXPECT_TRUE(db_.SetAttr(oid, "Price", Value::Int(price)).ok());
    EXPECT_TRUE(db_.SetAttr(oid, "made-by", Value::Ref(maker)).ok());
    return oid;
  }

  Database::OqlResult Run(const std::string& text) {
    Result<Database::OqlResult> r = db_.ExecuteOql(text);
    EXPECT_TRUE(r.ok()) << text << ": " << r.status().ToString();
    return r.ok() ? std::move(r).value() : Database::OqlResult{};
  }

  Database db_;
  ClassId employee_, company_, japanese_, vehicle_, car_, truck_;
  Oid e50_, e60_, subaru_, fiat_;
  Oid v_red_car_, v_blue_car_, v_red_truck_, v_plain_;
};

TEST_F(OqlExecutionTest, TraversalFallbackWithoutIndexes) {
  auto r = Run("SELECT v FROM Vehicle* v WHERE v.Color = 'Red'");
  EXPECT_FALSE(r.used_index);
  EXPECT_EQ(r.oids, (std::vector<Oid>{v_red_car_, v_red_truck_}));

  r = Run("SELECT v FROM Car v WHERE v.Price < 30");
  EXPECT_EQ(r.oids, (std::vector<Oid>{v_red_car_}));

  r = Run("SELECT v FROM Vehicle* v WHERE "
          "v.made-by.president.Age >= 60");
  EXPECT_EQ(r.oids, (std::vector<Oid>{v_blue_car_, v_red_truck_}));

  r = Run("SELECT v FROM Vehicle* v WHERE v.made-by IS JapaneseCompany");
  EXPECT_EQ(r.oids, (std::vector<Oid>{v_red_car_, v_plain_}));
}

TEST_F(OqlExecutionTest, UsesClassHierarchyIndex) {
  ASSERT_TRUE(db_.CreateIndex(PathSpec::ClassHierarchy(
                                  vehicle_, "Price", Value::Kind::kInt))
                  .ok());
  auto r = Run("SELECT v FROM Vehicle* v WHERE v.Price BETWEEN 15 AND 40");
  EXPECT_TRUE(r.used_index) << r.plan;
  EXPECT_EQ(r.oids, (std::vector<Oid>{v_red_car_, v_blue_car_}));

  // Mixed: Price via index, Color post-filtered by traversal.
  r = Run("SELECT v FROM Vehicle* v WHERE v.Price BETWEEN 15 AND 40 "
          "AND v.Color = 'Blue'");
  EXPECT_TRUE(r.used_index);
  EXPECT_EQ(r.oids, (std::vector<Oid>{v_blue_car_}));

  // Subclass targets narrow inside the index.
  r = Run("SELECT v FROM Truck v WHERE v.Price > 15");
  EXPECT_TRUE(r.used_index);
  EXPECT_EQ(r.oids, (std::vector<Oid>{v_red_truck_}));
}

TEST_F(OqlExecutionTest, UsesPathIndexWithIsPushdown) {
  PathSpec spec;
  spec.classes = {vehicle_, company_, employee_};
  spec.ref_attrs = {"made-by", "president"};
  spec.indexed_attr = "Age";
  spec.value_kind = Value::Kind::kInt;
  ASSERT_TRUE(db_.CreateIndex(spec).ok());

  auto r = Run("SELECT v FROM Vehicle* v WHERE "
               "v.made-by.president.Age = 50");
  EXPECT_TRUE(r.used_index) << r.plan;
  EXPECT_EQ(r.oids, (std::vector<Oid>{v_red_car_, v_plain_}));

  // IS restriction on the company position is pushed into the index.
  r = Run("SELECT v FROM Vehicle* v WHERE "
          "v.made-by.president.Age <= 60 AND v.made-by IS "
          "JapaneseCompany*");
  EXPECT_TRUE(r.used_index);
  EXPECT_EQ(r.oids, (std::vector<Oid>{v_red_car_, v_plain_}));

  // Combined: subclass target + in-path IS + value range.
  r = Run("SELECT v FROM Car* v WHERE "
          "v.made-by.president.Age BETWEEN 40 AND 70 AND "
          "v.made-by IS Company");
  EXPECT_TRUE(r.used_index);
  EXPECT_EQ(r.oids, (std::vector<Oid>{v_blue_car_}));  // fiat is exact.
}

TEST_F(OqlExecutionTest, InListUsesIndexValueSets) {
  ASSERT_TRUE(db_.CreateIndex(PathSpec::ClassHierarchy(
                                  vehicle_, "Color", Value::Kind::kString))
                  .ok());
  auto r = Run("SELECT v FROM Vehicle* v WHERE v.Color IN ('Red', 'Green')");
  EXPECT_TRUE(r.used_index) << r.plan;
  EXPECT_EQ(r.oids,
            (std::vector<Oid>{v_red_car_, v_red_truck_, v_plain_}));
}

TEST_F(OqlExecutionTest, MultiValuedReferencesUseAnySemantics) {
  // A joint venture: one car made by both companies.
  const Oid joint = db_.CreateObject(car_).value();
  ASSERT_TRUE(db_.SetAttr(joint, "Color", Value::Str("White")).ok());
  ASSERT_TRUE(
      db_.SetAttr(joint, "made-by", Value::RefSet({subaru_, fiat_})).ok());
  auto r = Run("SELECT v FROM Vehicle* v WHERE "
               "v.made-by.president.Age = 60");
  EXPECT_TRUE(std::find(r.oids.begin(), r.oids.end(), joint) !=
              r.oids.end());
  r = Run("SELECT v FROM Vehicle* v WHERE v.made-by IS JapaneseCompany");
  EXPECT_TRUE(std::find(r.oids.begin(), r.oids.end(), joint) !=
              r.oids.end());
}

TEST_F(OqlExecutionTest, PlannerAgreesWithTraversalOracle) {
  // Build more data, then compare indexed OQL execution against the
  // traversal fallback (a second, index-less database would be identical;
  // here we just re-run each query before and after index creation).
  for (int i = 0; i < 300; ++i) {
    const Oid maker = i % 2 == 0 ? subaru_ : fiat_;
    NewVehicle(i % 3 == 0 ? car_ : truck_,
               i % 2 == 0 ? "Red" : "Blue", i % 97, maker);
  }
  const std::vector<std::string> queries = {
      "SELECT v FROM Vehicle* v WHERE v.Price BETWEEN 10 AND 30",
      "SELECT v FROM Car* v WHERE v.Price >= 80",
      "SELECT v FROM Truck v WHERE v.Price < 5",
      "SELECT v FROM Vehicle* v WHERE v.made-by.president.Age = 50",
      "SELECT v FROM Vehicle* v WHERE v.made-by.president.Age "
      "BETWEEN 55 AND 65 AND v.made-by IS Company",
      "SELECT v FROM Vehicle* v WHERE v.Price IN (7, 13, 42)",
  };
  std::vector<std::vector<Oid>> before;
  for (const std::string& q : queries) {
    auto r = Run(q);
    EXPECT_FALSE(r.used_index);
    before.push_back(r.oids);
  }
  ASSERT_TRUE(db_.CreateIndex(PathSpec::ClassHierarchy(
                                  vehicle_, "Price", Value::Kind::kInt))
                  .ok());
  PathSpec spec;
  spec.classes = {vehicle_, company_, employee_};
  spec.ref_attrs = {"made-by", "president"};
  spec.indexed_attr = "Age";
  spec.value_kind = Value::Kind::kInt;
  ASSERT_TRUE(db_.CreateIndex(spec).ok());

  for (size_t i = 0; i < queries.size(); ++i) {
    auto r = Run(queries[i]);
    EXPECT_TRUE(r.used_index) << queries[i];
    EXPECT_EQ(r.oids, before[i]) << queries[i];
  }
}

TEST_F(OqlExecutionTest, CountAndLimit) {
  auto r = Run("SELECT COUNT(v) FROM Vehicle* v WHERE v.Price >= 0");
  EXPECT_EQ(r.count, 4u);
  EXPECT_TRUE(r.oids.empty());

  r = Run("SELECT v FROM Vehicle* v WHERE v.Price >= 0 LIMIT 2");
  EXPECT_EQ(r.count, 4u);
  EXPECT_EQ(r.oids.size(), 2u);

  EXPECT_TRUE(db_.ExecuteOql("SELECT v FROM Vehicle* v WHERE v.Price >= 0 "
                             "LIMIT 0")
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(ParseOql("SELECT COUNT v FROM X v WHERE v.a = 1")
                  .status()
                  .IsInvalidArgument());
}

TEST(OqlFuzzTest, ParserNeverCrashesOnGarbage) {
  Random rng(8888);
  const char charset[] =
      "SELECT FROM WHERE AND IS IN BETWEEN LIMIT COUNT v.x'()*,=<>0123 _-";
  for (int rep = 0; rep < 2000; ++rep) {
    std::string text;
    const size_t len = rng.Uniform(80);
    for (size_t i = 0; i < len; ++i) {
      text.push_back(charset[rng.Uniform(sizeof(charset) - 1)]);
    }
    // Must never crash; status may be anything.
    (void)ParseOql(text);
  }
  // Pure binary garbage too.
  for (int rep = 0; rep < 500; ++rep) {
    std::string text;
    const size_t len = rng.Uniform(60);
    for (size_t i = 0; i < len; ++i) {
      text.push_back(static_cast<char>(rng.Next() & 0xFF));
    }
    (void)ParseOql(text);
  }
}

TEST_F(OqlExecutionTest, SemanticValidation) {
  EXPECT_TRUE(db_.ExecuteOql("SELECT v FROM NoSuchClass v WHERE v.a = 1")
                  .status()
                  .IsNotFound());
  EXPECT_TRUE(db_.ExecuteOql("SELECT v FROM Vehicle v WHERE "
                        "v.nonsense.deeper = 1")
                  .status()
                  .IsInvalidArgument());
  // IS on an attribute path is rejected.
  EXPECT_TRUE(db_.ExecuteOql("SELECT v FROM Vehicle v WHERE v.Color IS Car")
                  .status()
                  .IsInvalidArgument());
}

}  // namespace
}  // namespace uindex
