#include <gtest/gtest.h>

#include "core/query.h"
#include "workload/paper_schema.h"

namespace uindex {
namespace {

class QueryCompileTest : public ::testing::Test {
 protected:
  QueryCompileTest()
      : p_(PaperSchema::Build()),
        coder_(std::move(ClassCoder::Assign(p_.schema)).value()),
        ch_spec_(PathSpec::ClassHierarchy(p_.vehicle, "Color",
                                          Value::Kind::kString)),
        ch_enc_(&ch_spec_, &coder_) {
    path_spec_.classes = {p_.vehicle, p_.company, p_.employee};
    path_spec_.ref_attrs = {"manufactured-by", "president"};
    path_spec_.indexed_attr = "Age";
    path_spec_.value_kind = Value::Kind::kInt;
  }

  PaperSchema p_;
  ClassCoder coder_;
  PathSpec ch_spec_;
  KeyEncoder ch_enc_;
  PathSpec path_spec_;
};

TEST_F(QueryCompileTest, ExactValueSubtreeSelectorIsOneInterval) {
  Query q = Query::ExactValue(Value::Str("Red"));
  q.With(ClassSelector::Subtree(p_.vehicle), ValueSlot::Wanted());
  const CompiledQuery cq =
      std::move(CompiledQuery::Compile(q, ch_enc_, p_.schema)).value();
  ASSERT_EQ(cq.intervals().size(), 1u);
  // Interval is enc("Red") + "C5" .. enc("Red") + "C6".
  const std::string prefix = ch_enc_.EncodeAttrValue(Value::Str("Red"));
  EXPECT_EQ(cq.intervals()[0].lo, prefix + "C5");
  EXPECT_EQ(cq.intervals()[0].hi, prefix + "C6");
}

TEST_F(QueryCompileTest, AlternationYieldsDisjointIntervals) {
  // The paper's query 5: Automobiles or Trucks (with sub-classes).
  Query q = Query::ExactValue(Value::Str("Red"));
  ClassSelector sel;
  sel.include.push_back({p_.automobile, true});
  sel.include.push_back({p_.truck, true});
  q.With(sel, ValueSlot::Wanted());
  const CompiledQuery cq =
      std::move(CompiledQuery::Compile(q, ch_enc_, p_.schema)).value();
  ASSERT_EQ(cq.intervals().size(), 1u);  // C5A..C5B and C5B..C5C merge.
  const std::string prefix = ch_enc_.EncodeAttrValue(Value::Str("Red"));
  EXPECT_EQ(cq.intervals()[0].lo, prefix + "C5A");
  EXPECT_EQ(cq.intervals()[0].hi, prefix + "C5C");

  // Non-adjacent alternation stays split.
  Query q2 = Query::ExactValue(Value::Str("Red"));
  ClassSelector sel2;
  sel2.include.push_back({p_.automobile, true});
  sel2.include.push_back({p_.bus, true});
  q2.With(sel2, ValueSlot::Wanted());
  const CompiledQuery cq2 =
      std::move(CompiledQuery::Compile(q2, ch_enc_, p_.schema)).value();
  EXPECT_EQ(cq2.intervals().size(), 2u);
}

TEST_F(QueryCompileTest, ExclusionSubtractsSubtreeRange) {
  // The paper's query 4: vehicles that are not compact automobiles.
  Query q = Query::ExactValue(Value::Str("Red"));
  ClassSelector sel = ClassSelector::Subtree(p_.vehicle);
  sel.exclude.push_back({p_.compact_automobile, true});
  q.With(sel, ValueSlot::Wanted());
  const CompiledQuery cq =
      std::move(CompiledQuery::Compile(q, ch_enc_, p_.schema)).value();
  ASSERT_EQ(cq.intervals().size(), 2u);
  const std::string prefix = ch_enc_.EncodeAttrValue(Value::Str("Red"));
  EXPECT_EQ(cq.intervals()[0].lo, prefix + "C5");
  EXPECT_EQ(cq.intervals()[0].hi, prefix + "C5AA");
  EXPECT_EQ(cq.intervals()[1].lo, prefix + "C5AB");
  EXPECT_EQ(cq.intervals()[1].hi, prefix + "C6");
}

TEST_F(QueryCompileTest, IntRangeEnumeratesValues) {
  PathSpec spec = PathSpec::ClassHierarchy(p_.vehicle, "Size",
                                           Value::Kind::kInt);
  const KeyEncoder enc(&spec, &coder_);
  Query q = Query::Range(Value::Int(10), Value::Int(13));
  q.With(ClassSelector::Subtree(p_.truck), ValueSlot::Wanted());
  const CompiledQuery cq =
      std::move(CompiledQuery::Compile(q, enc, p_.schema)).value();
  // One interval per enumerated value (paper Algorithm 1's partial keys).
  EXPECT_EQ(cq.intervals().size(), 4u);
  for (const ByteInterval& iv : cq.intervals()) {
    EXPECT_TRUE(Slice(iv.lo) < Slice(iv.hi));
  }
  EXPECT_TRUE(Slice(cq.full_span().lo) < Slice(cq.full_span().hi));
}

TEST_F(QueryCompileTest, HugeRangeFallsBackToOneInterval) {
  PathSpec spec = PathSpec::ClassHierarchy(p_.vehicle, "Size",
                                           Value::Kind::kInt);
  const KeyEncoder enc(&spec, &coder_);
  Query q = Query::Range(Value::Int(0), Value::Int(INT64_MAX));
  q.With(ClassSelector::Subtree(p_.vehicle), ValueSlot::Wanted());
  const CompiledQuery cq =
      std::move(CompiledQuery::Compile(q, enc, p_.schema)).value();
  EXPECT_EQ(cq.intervals().size(), 1u);
}

TEST_F(QueryCompileTest, BoundSlotsExtendPartialKeys) {
  const KeyEncoder enc(&path_spec_, &coder_);
  // Exact employee with a bound oid, then a company sub-tree: the partial
  // key reaches through C1$oid into the company component.
  Query q = Query::ExactValue(Value::Int(50));
  q.With(ClassSelector::Exactly(p_.employee), ValueSlot::Bound({7}))
      .With(ClassSelector::Subtree(p_.company), ValueSlot::Wanted());
  const CompiledQuery cq =
      std::move(CompiledQuery::Compile(q, enc, p_.schema)).value();
  ASSERT_EQ(cq.intervals().size(), 1u);
  std::string expected = enc.EncodeAttrValue(Value::Int(50));
  expected += "C1$";
  expected += std::string("\x00\x00\x00\x07", 4);
  expected += "C2";
  EXPECT_EQ(cq.intervals()[0].lo, expected);
}

TEST_F(QueryCompileTest, ValidationErrors) {
  const KeyEncoder enc(&path_spec_, &coder_);
  // Too many components.
  Query q = Query::ExactValue(Value::Int(1));
  for (int i = 0; i < 4; ++i) q.With(ClassSelector::Any());
  EXPECT_TRUE(CompiledQuery::Compile(q, enc, p_.schema)
                  .status()
                  .IsInvalidArgument());
  // Kind mismatch.
  Query q2 = Query::ExactValue(Value::Str("x"));
  EXPECT_TRUE(CompiledQuery::Compile(q2, enc, p_.schema)
                  .status()
                  .IsInvalidArgument());
  // Empty bound slot.
  Query q3 = Query::ExactValue(Value::Int(1));
  q3.With(ClassSelector::Exactly(p_.employee), ValueSlot::Bound({}));
  EXPECT_TRUE(CompiledQuery::Compile(q3, enc, p_.schema)
                  .status()
                  .IsInvalidArgument());
  // Inverted range.
  Query q4 = Query::Range(Value::Int(10), Value::Int(5));
  EXPECT_TRUE(CompiledQuery::Compile(q4, enc, p_.schema)
                  .status()
                  .IsInvalidArgument());
}

TEST_F(QueryCompileTest, MatchesChecksEverything) {
  const KeyEncoder enc(&path_spec_, &coder_);
  const std::string key = enc.EncodeEntry(
      Value::Int(50),
      {{p_.employee, 1}, {p_.japanese_auto_company, 2}, {p_.truck, 3}});

  auto matches = [&](Query q) {
    const CompiledQuery cq =
        std::move(CompiledQuery::Compile(q, enc, p_.schema)).value();
    return cq.Matches(Slice(key), nullptr);
  };

  // Attribute range.
  EXPECT_TRUE(matches(Query::Range(Value::Int(40), Value::Int(60))));
  EXPECT_TRUE(matches(Query::ExactValue(Value::Int(50))));
  EXPECT_FALSE(matches(Query::ExactValue(Value::Int(51))));

  // Class selectors at each position.
  Query q = Query::ExactValue(Value::Int(50));
  q.With(ClassSelector::Exactly(p_.employee))
      .With(ClassSelector::Subtree(p_.auto_company))
      .With(ClassSelector::Subtree(p_.truck));
  EXPECT_TRUE(matches(q));

  Query q2 = Query::ExactValue(Value::Int(50));
  q2.With(ClassSelector::Any()).With(ClassSelector::Exactly(p_.company));
  EXPECT_FALSE(matches(q2));  // Actual class is a strict subclass.

  // Exclusion.
  Query q3 = Query::ExactValue(Value::Int(50));
  ClassSelector sel = ClassSelector::Subtree(p_.employee);
  q3.With(sel);
  ClassSelector sel2 = ClassSelector::Subtree(p_.company);
  sel2.exclude.push_back({p_.japanese_auto_company, false});
  q3.With(sel2);
  EXPECT_FALSE(matches(q3));

  // Bound slots.
  Query q4 = Query::ExactValue(Value::Int(50));
  q4.With(ClassSelector::Any(), ValueSlot::Bound({1, 9}));
  EXPECT_TRUE(matches(q4));
  Query q5 = Query::ExactValue(Value::Int(50));
  q5.With(ClassSelector::Any(), ValueSlot::Bound({8, 9}));
  EXPECT_FALSE(matches(q5));
}

TEST_F(QueryCompileTest, DistinctProjectsAndDedupes) {
  QueryResult r;
  r.rows = {{1, 10}, {2, 10}, {1, 20}};
  const std::vector<Oid> d0 = r.Distinct(0);
  ASSERT_EQ(d0.size(), 2u);
  EXPECT_EQ(d0[0], 1u);
  EXPECT_EQ(d0[1], 2u);
  const std::vector<Oid> d1 = r.Distinct(1);
  EXPECT_EQ(d1.size(), 2u);
  EXPECT_TRUE(r.Distinct(5).empty());
}

}  // namespace
}  // namespace uindex
