#include <gtest/gtest.h>

#include "core/schema_catalog.h"
#include "workload/paper_schema.h"

namespace uindex {
namespace {

class SchemaCatalogTest : public ::testing::Test {
 protected:
  SchemaCatalogTest()
      : p_(PaperSchema::Build()),
        coder_(std::move(ClassCoder::Assign(p_.schema)).value()),
        pager_(1024),
        buffers_(&pager_),
        catalog_(&buffers_) {
    Status s = catalog_.Store(p_.schema, coder_);
    EXPECT_TRUE(s.ok()) << s.ToString();
  }

  PaperSchema p_;
  ClassCoder coder_;
  Pager pager_;
  BufferManager buffers_;
  SchemaCatalog catalog_;
};

TEST_F(SchemaCatalogTest, NameLookupByCode) {
  EXPECT_EQ(std::move(catalog_.NameOf(Slice("C5"))).value(), "Vehicle");
  EXPECT_EQ(std::move(catalog_.NameOf(Slice("C5AA"))).value(),
            "CompactAutomobile");
  EXPECT_EQ(std::move(catalog_.NameOf(Slice("C2AA"))).value(),
            "JapaneseAutoCompany");
  EXPECT_TRUE(catalog_.NameOf(Slice("C9")).status().IsNotFound());
}

TEST_F(SchemaCatalogTest, SubtreeCodesAreOneClusteredScan) {
  // §4.1: schema information is clustered like everything else.
  QueryCost cost(&buffers_);
  const auto codes = std::move(catalog_.SubtreeCodes(Slice("C2"))).value();
  EXPECT_EQ(codes,
            (std::vector<std::string>{"C2", "C2A", "C2AA", "C2B"}));
  EXPECT_LE(cost.PagesRead(), 3u);  // One descent, clustered leaves.

  const auto vehicle = std::move(catalog_.SubtreeCodes(Slice("C5"))).value();
  EXPECT_EQ(vehicle.size(), 12u);
  EXPECT_EQ(vehicle.front(), "C5");
  // Preorder: every code preceded by its prefix ancestors.
  for (size_t i = 1; i < vehicle.size(); ++i) {
    EXPECT_TRUE(Slice(vehicle[i - 1]) < Slice(vehicle[i]));
  }
}

TEST_F(SchemaCatalogTest, ReferencesOfClass) {
  const auto refs = std::move(catalog_.ReferencesOf(Slice("C4"))).value();
  ASSERT_EQ(refs.size(), 2u);  // Division: belongs, located-in.
  EXPECT_EQ(refs[0].attribute, "belongs");
  EXPECT_EQ(refs[0].target_code, "C2");
  EXPECT_FALSE(refs[0].multi_valued);
  EXPECT_EQ(refs[1].attribute, "located-in");
  EXPECT_EQ(refs[1].target_code, "C3");
  EXPECT_TRUE(
      std::move(catalog_.ReferencesOf(Slice("C3"))).value().empty());
}

TEST_F(SchemaCatalogTest, RoundTripsSchemaAndCoder) {
  Schema reloaded;
  ClassCoder recoder;
  ASSERT_TRUE(catalog_.Load(&reloaded, &recoder).ok());

  ASSERT_EQ(reloaded.class_count(), p_.schema.class_count());
  for (ClassId cls = 0; cls < p_.schema.class_count(); ++cls) {
    const ClassId found =
        reloaded.FindClass(p_.schema.NameOf(cls)).value();
    EXPECT_EQ(recoder.CodeOf(found), coder_.CodeOf(cls))
        << p_.schema.NameOf(cls);
    // Hierarchy preserved.
    const ClassId parent = p_.schema.SuperclassOf(cls);
    if (parent == kInvalidClassId) {
      EXPECT_EQ(reloaded.SuperclassOf(found), kInvalidClassId);
    } else {
      EXPECT_EQ(reloaded.NameOf(reloaded.SuperclassOf(found)),
                p_.schema.NameOf(parent));
    }
  }
  EXPECT_EQ(reloaded.references().size(), p_.schema.references().size());
  EXPECT_TRUE(recoder.Verify(reloaded).ok());

  // Evolution continues where the stored coder left off.
  const ClassId scooter =
      reloaded.AddSubclass("Scooter",
                           reloaded.FindClass("Vehicle").value())
          .value();
  ASSERT_TRUE(recoder.AssignNewClass(reloaded, scooter).ok());
  EXPECT_EQ(recoder.CodeOf(scooter), "C5D");  // After C5A, C5B, C5C.
}

TEST_F(SchemaCatalogTest, IncrementalAdditions) {
  ASSERT_TRUE(catalog_.AddClass(Slice("C5D"), "Motorbike").ok());
  EXPECT_EQ(std::move(catalog_.NameOf(Slice("C5D"))).value(), "Motorbike");
  EXPECT_TRUE(catalog_.AddClass(Slice("C5D"), "Dup").IsAlreadyExists());
  ASSERT_TRUE(
      catalog_.AddReference(Slice("C5D"), "garaged-at", Slice("C3"), true)
          .ok());
  const auto refs = std::move(catalog_.ReferencesOf(Slice("C5D"))).value();
  ASSERT_EQ(refs.size(), 1u);
  EXPECT_TRUE(refs[0].multi_valued);
  EXPECT_EQ(refs[0].target_code, "C3");
}

TEST_F(SchemaCatalogTest, StoreRejectsNonEmptyCatalog) {
  EXPECT_TRUE(catalog_.Store(p_.schema, coder_).IsInvalidArgument());
}

TEST(ClassCoderFromAssignmentsTest, RejectsMalformedInput) {
  EXPECT_TRUE(ClassCoder::FromAssignments({{0, "X5"}})
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(ClassCoder::FromAssignments({{0, "C1"}, {1, "C1"}})
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(ClassCoder::FromAssignments({{0, "C1"}, {1, "C2A"}})
                  .status()
                  .IsInvalidArgument());  // Orphan child.
}

TEST(TokenInverseTest, RoundTrips) {
  for (size_t i = 0; i < 300; ++i) {
    EXPECT_EQ(IndexForToken(Slice(TokenForIndex(i))), i);
  }
  EXPECT_EQ(IndexForToken(Slice("")), SIZE_MAX);
  EXPECT_EQ(IndexForToken(Slice("Z")), SIZE_MAX);
  EXPECT_EQ(IndexForToken(Slice("$")), SIZE_MAX);
  EXPECT_EQ(IndexForToken(Slice("1A")), SIZE_MAX);  // Two tokens.
}

}  // namespace
}  // namespace uindex
