#include <gtest/gtest.h>

#include "schema/encoder.h"
#include "workload/paper_schema.h"

namespace uindex {
namespace {

TEST(ClassCoderTest, ReproducesThePapersCodTable) {
  const PaperSchema p = PaperSchema::Build();
  Result<ClassCoder> coder = ClassCoder::Assign(p.schema);
  ASSERT_TRUE(coder.ok());
  const ClassCoder& c = coder.value();
  // §3: the COD relation, including the §5 experimental additions.
  EXPECT_EQ(c.CodeOf(p.employee), "C1");
  EXPECT_EQ(c.CodeOf(p.company), "C2");
  EXPECT_EQ(c.CodeOf(p.city), "C3");
  EXPECT_EQ(c.CodeOf(p.division), "C4");
  EXPECT_EQ(c.CodeOf(p.vehicle), "C5");
  EXPECT_EQ(c.CodeOf(p.automobile), "C5A");
  EXPECT_EQ(c.CodeOf(p.compact_automobile), "C5AA");
  EXPECT_EQ(c.CodeOf(p.foreign_auto), "C5AB");
  EXPECT_EQ(c.CodeOf(p.service_auto), "C5AC");
  EXPECT_EQ(c.CodeOf(p.truck), "C5B");
  EXPECT_EQ(c.CodeOf(p.heavy_truck), "C5BA");
  EXPECT_EQ(c.CodeOf(p.light_truck), "C5BB");
  EXPECT_EQ(c.CodeOf(p.bus), "C5C");
  EXPECT_EQ(c.CodeOf(p.military_bus), "C5CA");
  EXPECT_EQ(c.CodeOf(p.tourist_bus), "C5CB");
  EXPECT_EQ(c.CodeOf(p.passenger_bus), "C5CC");
  EXPECT_EQ(c.CodeOf(p.auto_company), "C2A");
  EXPECT_EQ(c.CodeOf(p.japanese_auto_company), "C2AA");
  EXPECT_EQ(c.CodeOf(p.truck_company), "C2B");
  EXPECT_TRUE(c.Verify(p.schema).ok());
}

TEST(ClassCoderTest, ClassOfInvertsCodeOf) {
  const PaperSchema p = PaperSchema::Build();
  const ClassCoder c = std::move(ClassCoder::Assign(p.schema)).value();
  for (ClassId cls = 0; cls < p.schema.class_count(); ++cls) {
    EXPECT_EQ(c.ClassOf(Slice(c.CodeOf(cls))).value(), cls);
  }
  EXPECT_TRUE(c.ClassOf(Slice("C9")).status().IsNotFound());
}

TEST(ClassCoderTest, SubtreeUpperBoundsIsolateSubtrees) {
  const PaperSchema p = PaperSchema::Build();
  const ClassCoder c = std::move(ClassCoder::Assign(p.schema)).value();
  // §3: "scanning all classes beginning with C2 upto (not including) C3
  // results exactly with the class-hierarchy of C2 in preorder sequence".
  EXPECT_EQ(c.SubtreeUpperBoundOf(p.company), "C3");
  const std::string lo = c.CodeOf(p.company);
  const std::string hi = c.SubtreeUpperBoundOf(p.company);
  for (const ClassId cls : p.schema.SubtreeOf(p.company)) {
    const std::string& code = c.CodeOf(cls);
    EXPECT_FALSE(Slice(code) < Slice(lo)) << code;
    EXPECT_TRUE(Slice(code) < Slice(hi)) << code;
  }
  // Non-members fall outside.
  EXPECT_TRUE(Slice(c.CodeOf(p.employee)) < Slice(lo));
  EXPECT_FALSE(Slice(c.CodeOf(p.city)) < Slice(hi));
}

TEST(ClassCoderTest, PreorderEqualsCodeOrder) {
  const PaperSchema p = PaperSchema::Build();
  const ClassCoder c = std::move(ClassCoder::Assign(p.schema)).value();
  const std::vector<ClassId> preorder = p.schema.SubtreeOf(p.vehicle);
  for (size_t i = 1; i < preorder.size(); ++i) {
    EXPECT_TRUE(Slice(c.CodeOf(preorder[i - 1])) <
                Slice(c.CodeOf(preorder[i])))
        << p.schema.NameOf(preorder[i - 1]) << " vs "
        << p.schema.NameOf(preorder[i]);
  }
}

TEST(ClassCoderTest, EvolutionAddsSubclassWithinHierarchy) {
  // Paper Fig. 4a: a new class within an existing hierarchy extends the
  // parent's code with the next free token.
  PaperSchema p = PaperSchema::Build();
  ClassCoder c = std::move(ClassCoder::Assign(p.schema)).value();
  const ClassId sports =
      p.schema.AddSubclass("SportsCar", p.automobile).value();
  ASSERT_TRUE(c.AssignNewClass(p.schema, sports).ok());
  EXPECT_EQ(c.CodeOf(sports), "C5AD");  // After C5AA, C5AB, C5AC.
  EXPECT_TRUE(c.Verify(p.schema).ok());
  EXPECT_TRUE(c.AssignNewClass(p.schema, sports).IsAlreadyExists());
}

TEST(ClassCoderTest, EvolutionAddsNewHierarchy) {
  // Paper Fig. 4b: a new hierarchy is appended after existing roots.
  PaperSchema p = PaperSchema::Build();
  ClassCoder c = std::move(ClassCoder::Assign(p.schema)).value();
  const ClassId dealer = p.schema.AddClass("Dealer").value();
  ASSERT_TRUE(c.AssignNewClass(p.schema, dealer).ok());
  EXPECT_EQ(c.CodeOf(dealer), "C6");
  // A REF from Dealer to Company is fine (C2 < C6)...
  ASSERT_TRUE(p.schema.AddReference(dealer, p.company, "franchise").ok());
  EXPECT_TRUE(c.Verify(p.schema).ok());
  // ...but a REF from Employee to Dealer breaks the order: re-encode.
  ASSERT_TRUE(p.schema.AddReference(p.employee, dealer, "works-at").ok());
  EXPECT_TRUE(c.Verify(p.schema).IsInvalidArgument());
}

TEST(ClassCoderTest, ParentMustBeCodedBeforeChild) {
  PaperSchema p = PaperSchema::Build();
  ClassCoder c = std::move(ClassCoder::Assign(p.schema)).value();
  const ClassId x = p.schema.AddClass("X").value();
  const ClassId y = p.schema.AddSubclass("Y", x).value();
  EXPECT_TRUE(c.AssignNewClass(p.schema, y).IsInvalidArgument());
  ASSERT_TRUE(c.AssignNewClass(p.schema, x).ok());
  ASSERT_TRUE(c.AssignNewClass(p.schema, y).ok());
  EXPECT_TRUE(CodeIsSelfOrDescendant(Slice(c.CodeOf(y)),
                                     Slice(c.CodeOf(x))));
}

TEST(ClassCoderTest, ManyRootsAndChildrenStayOrdered) {
  // Stress the token generator past the single-character alphabet.
  Schema s;
  std::vector<ClassId> roots;
  for (int i = 0; i < 50; ++i) {
    std::string name = "R";
    name += std::to_string(i);
    roots.push_back(s.AddClass(name).value());
  }
  std::vector<ClassId> kids;
  for (int i = 0; i < 40; ++i) {
    std::string name = "K";
    name += std::to_string(i);
    kids.push_back(s.AddSubclass(name, roots[0]).value());
  }
  const ClassCoder c = std::move(ClassCoder::Assign(s)).value();
  for (size_t i = 1; i < roots.size(); ++i) {
    EXPECT_TRUE(Slice(c.CodeOf(roots[i - 1])) < Slice(c.CodeOf(roots[i])));
  }
  for (size_t i = 1; i < kids.size(); ++i) {
    EXPECT_TRUE(Slice(c.CodeOf(kids[i - 1])) < Slice(c.CodeOf(kids[i])));
    EXPECT_TRUE(CodeIsSelfOrDescendant(Slice(c.CodeOf(kids[i])),
                                       Slice(c.CodeOf(roots[0]))));
  }
  // All 40 children precede root #1's code? No — they must stay inside
  // root 0's subtree range.
  const std::string bound = c.SubtreeUpperBoundOf(roots[0]);
  for (const ClassId kid : kids) {
    EXPECT_TRUE(Slice(c.CodeOf(kid)) < Slice(bound));
  }
}

TEST(ClassCoderTest, CycleBreakingEnablesSeparateEncoding) {
  Schema s;
  const ClassId employee = s.AddClass("Employee").value();
  const ClassId vehicle = s.AddClass("Vehicle").value();
  ASSERT_TRUE(s.AddReference(employee, vehicle, "OWN").ok());
  ASSERT_TRUE(s.AddReference(vehicle, employee, "USE").ok());
  ASSERT_TRUE(ClassCoder::Assign(s).status().IsInvalidArgument());
  const std::vector<size_t> dropped = s.FindCycleBreakingEdges();
  Result<ClassCoder> coder = ClassCoder::Assign(s, dropped);
  ASSERT_TRUE(coder.ok());
  EXPECT_TRUE(coder.value().Verify(s, dropped).ok());
}

}  // namespace
}  // namespace uindex
