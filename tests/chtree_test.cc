#include <gtest/gtest.h>

#include <algorithm>

#include "baselines/chtree/chtree.h"
#include "util/random.h"

namespace uindex {
namespace {

class ChTreeTest : public ::testing::Test {
 protected:
  ChTreeTest()
      : pager_(1024),
        buffers_(&pager_),
        tree_(&buffers_, Value::Kind::kInt) {}

  std::vector<Oid> Sorted(Result<std::vector<Oid>> r) {
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    std::vector<Oid> v = std::move(r).value();
    std::sort(v.begin(), v.end());
    return v;
  }

  Pager pager_;
  BufferManager buffers_;
  ChTree tree_;
};

TEST_F(ChTreeTest, InsertAndExactSearch) {
  ASSERT_TRUE(tree_.Insert(Value::Int(5), 1, 100).ok());
  ASSERT_TRUE(tree_.Insert(Value::Int(5), 2, 200).ok());
  ASSERT_TRUE(tree_.Insert(Value::Int(7), 1, 300).ok());
  EXPECT_EQ(Sorted(tree_.Search(Value::Int(5), Value::Int(5), {1, 2})),
            (std::vector<Oid>{100, 200}));
  EXPECT_EQ(Sorted(tree_.Search(Value::Int(5), Value::Int(5), {1})),
            (std::vector<Oid>{100}));
  EXPECT_TRUE(Sorted(tree_.Search(Value::Int(6), Value::Int(6), {1})).empty());
}

TEST_F(ChTreeTest, RangeSearchSpansKeys) {
  for (int k = 0; k < 50; ++k) {
    ASSERT_TRUE(tree_.Insert(Value::Int(k), k % 3,
                             static_cast<Oid>(k + 1))
                    .ok());
  }
  const auto got = Sorted(tree_.Search(Value::Int(10), Value::Int(19),
                                       {0, 1, 2}));
  EXPECT_EQ(got.size(), 10u);
  const auto set0 = Sorted(tree_.Search(Value::Int(10), Value::Int(19), {0}));
  for (const Oid oid : set0) EXPECT_EQ((oid - 1) % 3, 0u);
}

TEST_F(ChTreeTest, RemovePostings) {
  ASSERT_TRUE(tree_.Insert(Value::Int(5), 1, 100).ok());
  ASSERT_TRUE(tree_.Insert(Value::Int(5), 1, 101).ok());
  ASSERT_TRUE(tree_.Remove(Value::Int(5), 1, 100).ok());
  EXPECT_EQ(Sorted(tree_.Search(Value::Int(5), Value::Int(5), {1})),
            (std::vector<Oid>{101}));
  ASSERT_TRUE(tree_.Remove(Value::Int(5), 1, 101).ok());
  EXPECT_TRUE(
      Sorted(tree_.Search(Value::Int(5), Value::Int(5), {1})).empty());
  EXPECT_TRUE(tree_.Remove(Value::Int(5), 1, 101).IsNotFound());
  EXPECT_TRUE(tree_.Remove(Value::Int(9), 1, 1).IsNotFound());
}

TEST_F(ChTreeTest, LongDirectoriesSpillToOverflowChains) {
  // 1500 oids under one key: far beyond one 1 KiB page.
  for (Oid oid = 1; oid <= 1500; ++oid) {
    ASSERT_TRUE(tree_.Insert(Value::Int(42), oid % 8, oid).ok());
  }
  const uint64_t pages_before_query = pager_.live_page_count();
  EXPECT_GT(pages_before_query, 6u);  // Chain pages materialized.

  QueryCost cost(&buffers_);
  const auto got = Sorted(tree_.Search(Value::Int(42), Value::Int(42), {3}));
  size_t expected = 0;
  for (Oid oid = 1; oid <= 1500; ++oid) expected += (oid % 8 == 3) ? 1 : 0;
  EXPECT_EQ(got.size(), expected);
  // Key grouping: the whole directory chain is read even for one set.
  EXPECT_GT(cost.PagesRead(), 6u);

  // Removing everything frees the chains.
  for (Oid oid = 1; oid <= 1500; ++oid) {
    ASSERT_TRUE(tree_.Remove(Value::Int(42), oid % 8, oid).ok());
  }
  EXPECT_LT(pager_.live_page_count(), pages_before_query);
}

TEST_F(ChTreeTest, DifferentialAgainstNaiveModel) {
  Random rng(77);
  // model[key] -> vector of (set, oid)
  std::map<int64_t, std::vector<std::pair<ClassId, Oid>>> model;
  Oid next_oid = 1;
  for (int op = 0; op < 3000; ++op) {
    const int64_t key = static_cast<int64_t>(rng.Uniform(40));
    const ClassId set = static_cast<ClassId>(rng.Uniform(5));
    if (rng.Bernoulli(0.7) || model[key].empty()) {
      const Oid oid = next_oid++;
      ASSERT_TRUE(tree_.Insert(Value::Int(key), set, oid).ok());
      model[key].push_back({set, oid});
    } else {
      auto& postings = model[key];
      const size_t pick = rng.Uniform(postings.size());
      ASSERT_TRUE(tree_.Remove(Value::Int(key), postings[pick].first,
                               postings[pick].second)
                      .ok());
      postings.erase(postings.begin() + static_cast<ptrdiff_t>(pick));
    }
  }
  for (int64_t lo = 0; lo < 40; lo += 7) {
    const int64_t hi = lo + 6;
    for (ClassId set = 0; set < 5; ++set) {
      std::vector<Oid> expected;
      for (const auto& [key, postings] : model) {
        if (key < lo || key > hi) continue;
        for (const auto& [s, oid] : postings) {
          if (s == set) expected.push_back(oid);
        }
      }
      std::sort(expected.begin(), expected.end());
      EXPECT_EQ(Sorted(tree_.Search(Value::Int(lo), Value::Int(hi), {set})),
                expected);
    }
  }
}

}  // namespace
}  // namespace uindex
