#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "storage/env/env.h"
#include "storage/env/fault_env.h"
#include "storage/file_pager.h"

namespace uindex {
namespace {

// ------------------------------------------------- PosixEnv RandomRWFile

std::string TempPath(const char* name) {
  return ::testing::TempDir() + "uindex_file_pager_test_" + name;
}

TEST(PosixRandomRWTest, WriteReadRoundtrip) {
  const std::string path = TempPath("roundtrip");
  Result<std::unique_ptr<RandomRWFile>> file =
      Env::Default()->NewRandomRWFile(path, /*truncate=*/true);
  ASSERT_TRUE(file.ok()) << file.status().ToString();
  RandomRWFile* f = file.value().get();

  ASSERT_TRUE(f->WriteAt(0, Slice("hello")).ok());
  ASSERT_TRUE(f->WriteAt(100, Slice("world")).ok());

  char buf[16];
  Result<size_t> n = f->ReadAt(0, 5, buf);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(n.value(), 5u);
  EXPECT_EQ(std::string(buf, 5), "hello");

  // The gap between the two writes reads as zeros.
  n = f->ReadAt(5, 5, buf);
  ASSERT_TRUE(n.ok());
  ASSERT_EQ(n.value(), 5u);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(buf[i], '\0') << i;

  // A read crossing end of file returns a short count...
  n = f->ReadAt(102, 16, buf);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(n.value(), 3u);
  EXPECT_EQ(std::string(buf, 3), "rld");

  // ...and a read entirely past it returns 0, not an error.
  n = f->ReadAt(4096, 8, buf);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(n.value(), 0u);

  ASSERT_TRUE(f->Sync().ok());
  ASSERT_TRUE(f->Close().ok());
  Env::Default()->RemoveFile(path);
}

TEST(PosixRandomRWTest, ReopenWithoutTruncateKeepsContent) {
  const std::string path = TempPath("reopen");
  {
    Result<std::unique_ptr<RandomRWFile>> file =
        Env::Default()->NewRandomRWFile(path, /*truncate=*/true);
    ASSERT_TRUE(file.ok());
    ASSERT_TRUE(file.value()->WriteAt(0, Slice("persist")).ok());
    ASSERT_TRUE(file.value()->Close().ok());
  }
  {
    Result<std::unique_ptr<RandomRWFile>> file =
        Env::Default()->NewRandomRWFile(path, /*truncate=*/false);
    ASSERT_TRUE(file.ok());
    char buf[8];
    Result<size_t> n = file.value()->ReadAt(0, 7, buf);
    ASSERT_TRUE(n.ok());
    EXPECT_EQ(std::string(buf, n.value()), "persist");
  }
  {
    // truncate=true discards it.
    Result<std::unique_ptr<RandomRWFile>> file =
        Env::Default()->NewRandomRWFile(path, /*truncate=*/true);
    ASSERT_TRUE(file.ok());
    char buf[8];
    Result<size_t> n = file.value()->ReadAt(0, 7, buf);
    ASSERT_TRUE(n.ok());
    EXPECT_EQ(n.value(), 0u);
  }
  Env::Default()->RemoveFile(path);
}

// Caps every pread/pwrite to a few bytes so the short-count retry loops
// must iterate; the data must come through intact anyway.
TEST(PosixRandomRWTest, ShortCountLoopsCoverLargeIo) {
  const std::string path = TempPath("chunked");
  std::string payload;
  for (int i = 0; i < 1000; ++i) payload.push_back(static_cast<char>(i));

  SetPosixIoChunkForTesting(7);
  {
    Result<std::unique_ptr<RandomRWFile>> file =
        Env::Default()->NewRandomRWFile(path, /*truncate=*/true);
    ASSERT_TRUE(file.ok());
    ASSERT_TRUE(file.value()->WriteAt(3, Slice(payload)).ok());
    std::vector<char> buf(payload.size());
    Result<size_t> n = file.value()->ReadAt(3, payload.size(), buf.data());
    ASSERT_TRUE(n.ok());
    EXPECT_EQ(n.value(), payload.size());
    EXPECT_EQ(std::string(buf.data(), n.value()), payload);
    ASSERT_TRUE(file.value()->Close().ok());
  }
  SetPosixIoChunkForTesting(0);
  Env::Default()->RemoveFile(path);
}

TEST(PosixRandomRWTest, SequentialWriterAlsoLoopsOnShortWrites) {
  const std::string path = TempPath("chunked_append");
  std::string payload(4096, 'x');
  SetPosixIoChunkForTesting(11);
  {
    Result<std::unique_ptr<WritableFile>> file =
        Env::Default()->NewWritableFile(path, Env::WriteMode::kTruncate);
    ASSERT_TRUE(file.ok());
    ASSERT_TRUE(file.value()->Append(Slice(payload)).ok());
    ASSERT_TRUE(file.value()->Close().ok());
  }
  SetPosixIoChunkForTesting(0);
  Result<uint64_t> size = Env::Default()->FileSize(path);
  ASSERT_TRUE(size.ok());
  EXPECT_EQ(size.value(), payload.size());
  Env::Default()->RemoveFile(path);
}

// ------------------------------------------ FaultInjectingEnv positioned IO

TEST(FaultRandomRWTest, UnsyncedWriteAtRollsBackAtReboot) {
  FaultInjectingEnv env;
  Result<std::unique_ptr<RandomRWFile>> file =
      env.NewRandomRWFile("/f", /*truncate=*/true);
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE(env.SyncDir("/").ok());  // The file's creation itself.
  ASSERT_TRUE(file.value()->WriteAt(0, Slice("AAAA")).ok());
  ASSERT_TRUE(file.value()->Sync().ok());
  // An overwrite *below* the synced length that is never synced: a
  // watermark model could not express its rollback, the dual-image one
  // must.
  ASSERT_TRUE(file.value()->WriteAt(0, Slice("BB")).ok());
  env.Reboot();
  Result<std::string> bytes = env.ReadFileBytes("/f");
  ASSERT_TRUE(bytes.ok());
  EXPECT_EQ(bytes.value(), "AAAA");
}

TEST(FaultRandomRWTest, CrashOutcomesAtWriteAt) {
  struct Case {
    FaultInjectingEnv::CrashOutcome outcome;
    std::string expect;
  };
  const std::vector<Case> cases = {
      {FaultInjectingEnv::CrashOutcome::kNone, "AAAA"},
      {FaultInjectingEnv::CrashOutcome::kPartial, "BBAA"},  // torn: half
      {FaultInjectingEnv::CrashOutcome::kFull, "BBBB"},
  };
  for (const Case& c : cases) {
    FaultInjectingEnv env;
    Result<std::unique_ptr<RandomRWFile>> file =
        env.NewRandomRWFile("/f", /*truncate=*/true);
    ASSERT_TRUE(file.ok());
    ASSERT_TRUE(env.SyncDir("/").ok());  // The file's creation itself.
    ASSERT_TRUE(file.value()->WriteAt(0, Slice("AAAA")).ok());
    ASSERT_TRUE(file.value()->Sync().ok());
    env.ScheduleCrashAtKthOpOfKind(FaultInjectingEnv::OpKind::kWriteAt, 1,
                                   c.outcome);
    EXPECT_FALSE(file.value()->WriteAt(0, Slice("BBBB")).ok());
    EXPECT_TRUE(env.powered_off());
    // Powered off: every further op fails.
    EXPECT_FALSE(file.value()->Sync().ok());
    env.Reboot();
    Result<std::string> bytes = env.ReadFileBytes("/f");
    ASSERT_TRUE(bytes.ok());
    EXPECT_EQ(bytes.value(), c.expect)
        << "outcome " << static_cast<int>(c.outcome);
  }
}

TEST(FaultRandomRWTest, StaleHandleFailsAfterReboot) {
  FaultInjectingEnv env;
  Result<std::unique_ptr<RandomRWFile>> file =
      env.NewRandomRWFile("/f", /*truncate=*/true);
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE(file.value()->WriteAt(0, Slice("x")).ok());
  env.Reboot();
  EXPECT_FALSE(file.value()->WriteAt(0, Slice("y")).ok());
  char c;
  EXPECT_FALSE(file.value()->ReadAt(0, 1, &c).ok());
}

// ----------------------------------------------------------- FilePager

constexpr uint32_t kPage = 128;

std::vector<char> PagePattern(PageId id) {
  std::vector<char> buf(kPage);
  for (uint32_t i = 0; i < kPage; ++i) {
    buf[i] = static_cast<char>((id * 31 + i) & 0xff);
  }
  return buf;
}

TEST(FilePagerTest, AllocateWriteReadFree) {
  FaultInjectingEnv env;
  Result<std::unique_ptr<FilePager>> created =
      FilePager::Create(&env, "/data", kPage);
  ASSERT_TRUE(created.ok()) << created.status().ToString();
  FilePager& pager = *created.value();
  EXPECT_EQ(pager.page_size(), kPage);
  EXPECT_EQ(pager.live_page_count(), 0u);
  EXPECT_FALSE(pager.backs_memory());
  EXPECT_EQ(pager.DirectPage(1), nullptr);

  const PageId a = pager.Allocate();
  const PageId b = pager.Allocate();
  EXPECT_NE(a, kInvalidPageId);
  EXPECT_NE(b, a);
  EXPECT_TRUE(pager.IsLive(a));
  EXPECT_EQ(pager.live_page_count(), 2u);

  ASSERT_TRUE(pager.WritePage(a, PagePattern(a).data()).ok());
  std::vector<char> buf(kPage);
  ASSERT_TRUE(pager.ReadPage(a, buf.data()).ok());
  EXPECT_EQ(buf, PagePattern(a));

  // Allocated but never written: reads as zeros (zero-fill past EOF).
  ASSERT_TRUE(pager.ReadPage(b, buf.data()).ok());
  for (uint32_t i = 0; i < kPage; ++i) EXPECT_EQ(buf[i], '\0');

  pager.Free(a);
  EXPECT_FALSE(pager.IsLive(a));
  EXPECT_EQ(pager.live_page_count(), 1u);
  // Next-fit recycles the freed slot eventually.
  const PageId c = pager.Allocate();
  EXPECT_TRUE(pager.IsLive(c));
}

TEST(FilePagerTest, SyncThenOpenRoundtrip) {
  FaultInjectingEnv env;
  std::vector<PageId> ids;
  {
    Result<std::unique_ptr<FilePager>> created =
        FilePager::Create(&env, "/data", kPage);
    ASSERT_TRUE(created.ok());
    FilePager& pager = *created.value();
    for (int i = 0; i < 20; ++i) {
      const PageId id = pager.Allocate();
      ASSERT_TRUE(pager.WritePage(id, PagePattern(id).data()).ok());
      ids.push_back(id);
    }
    pager.Free(ids[3]);
    pager.Free(ids[7]);
    ASSERT_TRUE(pager.Sync().ok());
  }
  Result<std::unique_ptr<FilePager>> opened = FilePager::Open(&env, "/data");
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  FilePager& pager = *opened.value();
  EXPECT_EQ(pager.page_size(), kPage);
  EXPECT_EQ(pager.live_page_count(), 18u);
  EXPECT_FALSE(pager.IsLive(ids[3]));
  EXPECT_FALSE(pager.IsLive(ids[7]));
  std::vector<char> buf(kPage);
  for (const PageId id : ids) {
    if (id == ids[3] || id == ids[7]) continue;
    ASSERT_TRUE(pager.ReadPage(id, buf.data()).ok());
    EXPECT_EQ(buf, PagePattern(id)) << "page " << id;
  }
  // Allocation still works after a reopen.
  const PageId recycled = pager.Allocate();
  EXPECT_TRUE(pager.IsLive(recycled));
  EXPECT_EQ(pager.live_page_count(), 19u);
}

TEST(FilePagerTest, OpenRejectsGarbage) {
  FaultInjectingEnv env;
  // Not a pager file at all.
  {
    Result<std::unique_ptr<WritableFile>> f =
        env.NewWritableFile("/junk", Env::WriteMode::kTruncate);
    ASSERT_TRUE(f.ok());
    ASSERT_TRUE(f.value()->Append(Slice("this is not a page file")).ok());
    ASSERT_TRUE(f.value()->Close().ok());
  }
  EXPECT_FALSE(FilePager::Open(&env, "/junk").ok());
  // Absent file.
  EXPECT_FALSE(FilePager::Open(&env, "/missing").ok());
  // Created but never synced: no header yet.
  {
    Result<std::unique_ptr<FilePager>> created =
        FilePager::Create(&env, "/unsynced", kPage);
    ASSERT_TRUE(created.ok());
    created.value()->Allocate();
  }
  EXPECT_FALSE(FilePager::Open(&env, "/unsynced").ok());
}

TEST(FilePagerTest, OpenRejectsCorruptedHeader) {
  FaultInjectingEnv env;
  {
    Result<std::unique_ptr<FilePager>> created =
        FilePager::Create(&env, "/data", kPage);
    ASSERT_TRUE(created.ok());
    const PageId id = created.value()->Allocate();
    ASSERT_TRUE(
        created.value()->WritePage(id, PagePattern(id).data()).ok());
    ASSERT_TRUE(created.value()->Sync().ok());
  }
  // Flip one magic byte.
  Result<std::string> bytes = env.ReadFileBytes("/data");
  ASSERT_TRUE(bytes.ok());
  std::string corrupted = bytes.value();
  corrupted[0] ^= 0x01;
  {
    Result<std::unique_ptr<RandomRWFile>> f =
        env.NewRandomRWFile("/data", /*truncate=*/true);
    ASSERT_TRUE(f.ok());
    ASSERT_TRUE(f.value()->WriteAt(0, Slice(corrupted)).ok());
  }
  Result<std::unique_ptr<FilePager>> opened = FilePager::Open(&env, "/data");
  EXPECT_FALSE(opened.ok());
}

TEST(FilePagerTest, RestoreRebuildsFromScratch) {
  FaultInjectingEnv env;
  Result<std::unique_ptr<FilePager>> created =
      FilePager::Create(&env, "/data", kPage);
  ASSERT_TRUE(created.ok());
  FilePager& pager = *created.value();
  for (int i = 0; i < 5; ++i) {
    const PageId id = pager.Allocate();
    ASSERT_TRUE(pager.WritePage(id, PagePattern(id).data()).ok());
  }

  // Restore a different shape: pages {2, 4} live up to max id 4.
  ASSERT_TRUE(pager.BeginRestore(4).ok());
  EXPECT_EQ(pager.live_page_count(), 0u);
  ASSERT_TRUE(
      pager.RestorePage(2, Slice(PagePattern(2).data(), kPage)).ok());
  ASSERT_TRUE(
      pager.RestorePage(4, Slice(PagePattern(4).data(), kPage)).ok());
  EXPECT_EQ(pager.live_page_count(), 2u);
  EXPECT_TRUE(pager.IsLive(2));
  EXPECT_FALSE(pager.IsLive(1));
  EXPECT_FALSE(pager.IsLive(3));
  std::vector<char> buf(kPage);
  ASSERT_TRUE(pager.ReadPage(4, buf.data()).ok());
  EXPECT_EQ(buf, PagePattern(4));
}

TEST(FilePagerTest, RejectsTinyPageSize) {
  FaultInjectingEnv env;
  EXPECT_FALSE(FilePager::Create(&env, "/data", 32).ok());
}

TEST(FilePagerTest, WorksOnPosixEnvToo) {
  const std::string path = TempPath("pager_posix");
  {
    Result<std::unique_ptr<FilePager>> created =
        FilePager::Create(Env::Default(), path, kPage);
    ASSERT_TRUE(created.ok()) << created.status().ToString();
    FilePager& pager = *created.value();
    const PageId id = pager.Allocate();
    ASSERT_TRUE(pager.WritePage(id, PagePattern(id).data()).ok());
    ASSERT_TRUE(pager.Sync().ok());
  }
  Result<std::unique_ptr<FilePager>> opened =
      FilePager::Open(Env::Default(), path);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  EXPECT_EQ(opened.value()->live_page_count(), 1u);
  Env::Default()->RemoveFile(path);
}

}  // namespace
}  // namespace uindex
