#include <gtest/gtest.h>

#include "storage/buffer_manager.h"
#include "storage/overflow.h"
#include "storage/pager.h"
#include "util/random.h"

namespace uindex {
namespace {

TEST(PagerTest, AllocateAndAccess) {
  Pager pager(1024);
  EXPECT_EQ(pager.page_size(), 1024u);
  const PageId a = pager.Allocate();
  const PageId b = pager.Allocate();
  EXPECT_NE(a, kInvalidPageId);
  EXPECT_NE(a, b);
  EXPECT_EQ(pager.live_page_count(), 2u);
  ASSERT_NE(pager.GetPage(a), nullptr);
  EXPECT_EQ(pager.GetPage(a)->size(), 1024u);
  EXPECT_EQ(pager.GetPage(kInvalidPageId), nullptr);
  EXPECT_EQ(pager.GetPage(999), nullptr);
}

TEST(PagerTest, FreeAndReuse) {
  Pager pager(256);
  const PageId a = pager.Allocate();
  pager.Allocate();
  pager.Free(a);
  EXPECT_FALSE(pager.IsLive(a));
  EXPECT_EQ(pager.live_page_count(), 1u);
  const PageId c = pager.Allocate();
  EXPECT_EQ(c, a);  // Freed ids are recycled.
  EXPECT_TRUE(pager.IsLive(c));
}

TEST(PagerTest, PagesAreZeroedOnAllocation) {
  Pager pager(64);
  const PageId a = pager.Allocate();
  Page* p = pager.GetPage(a);
  p->data()[0] = 'x';
  pager.Free(a);
  const PageId b = pager.Allocate();
  ASSERT_EQ(a, b);
  EXPECT_EQ(pager.GetPage(b)->data()[0], 0);
}

TEST(BufferManagerTest, CountsDistinctReadsPerQueryEpoch) {
  Pager pager(128);
  BufferManager buffers(&pager);
  const PageId a = buffers.Allocate();
  const PageId b = buffers.Allocate();
  buffers.ResetStats();

  buffers.BeginQuery();
  buffers.Fetch(a);
  buffers.Fetch(a);  // Same page, same query: free.
  buffers.Fetch(b);
  EXPECT_EQ(buffers.stats().pages_read, 2u);
  EXPECT_EQ(buffers.stats().cache_hits, 1u);

  buffers.BeginQuery();  // New query: pages cost again.
  buffers.Fetch(a);
  EXPECT_EQ(buffers.stats().pages_read, 3u);
}

TEST(BufferManagerTest, QueryCostMeasuresDelta) {
  Pager pager(128);
  BufferManager buffers(&pager);
  const PageId a = buffers.Allocate();
  buffers.Fetch(a);
  {
    QueryCost cost(&buffers);
    EXPECT_EQ(cost.PagesRead(), 0u);
    buffers.Fetch(a);
    buffers.Fetch(a);
    EXPECT_EQ(cost.PagesRead(), 1u);
  }
}

TEST(BufferManagerTest, AllocateIsResidentAndWriteCounts) {
  Pager pager(128);
  BufferManager buffers(&pager);
  buffers.BeginQuery();
  const PageId a = buffers.Allocate();
  EXPECT_EQ(buffers.stats().pages_written, 1u);
  buffers.Fetch(a);  // Already resident: no read charged.
  EXPECT_EQ(buffers.stats().pages_read, 0u);
  buffers.FetchForWrite(a);
  EXPECT_EQ(buffers.stats().pages_written, 2u);
  EXPECT_EQ(buffers.stats().pages_read, 0u);
}

TEST(BufferManagerTest, FetchMissingPageReturnsNull) {
  Pager pager(128);
  BufferManager buffers(&pager);
  EXPECT_EQ(buffers.Fetch(42), nullptr);
  EXPECT_EQ(buffers.stats().pages_read, 0u);
}

TEST(BufferManagerTest, BoundedLruEvictsLeastRecentlyUsed) {
  Pager pager(128);
  BufferManager buffers(&pager);
  const PageId a = buffers.Allocate();
  const PageId b = buffers.Allocate();
  const PageId c = buffers.Allocate();
  buffers.SetCapacity(2);
  buffers.ResetStats();

  buffers.Fetch(a);  // miss
  buffers.Fetch(b);  // miss
  buffers.Fetch(a);  // hit (a most recent)
  buffers.Fetch(c);  // miss, evicts b
  EXPECT_EQ(buffers.stats().pages_read, 3u);
  EXPECT_EQ(buffers.stats().cache_hits, 1u);
  buffers.Fetch(b);  // miss again (was evicted)
  EXPECT_EQ(buffers.stats().pages_read, 4u);
  buffers.Fetch(a);  // evicted by b's re-entry? LRU order: c, b -> a miss.
  EXPECT_EQ(buffers.stats().pages_read, 5u);
}

TEST(BufferManagerTest, BoundedPoolPersistsAcrossQueries) {
  Pager pager(128);
  BufferManager buffers(&pager);
  const PageId a = buffers.Allocate();
  buffers.SetCapacity(4);
  buffers.ResetStats();
  buffers.Fetch(a);
  EXPECT_EQ(buffers.stats().pages_read, 1u);
  buffers.BeginQuery();  // No-op in bounded mode.
  buffers.Fetch(a);
  EXPECT_EQ(buffers.stats().pages_read, 1u);
  EXPECT_EQ(buffers.stats().cache_hits, 1u);
  // Switching back to unbounded restores epoch semantics.
  buffers.SetCapacity(0);
  buffers.BeginQuery();
  buffers.Fetch(a);
  EXPECT_EQ(buffers.stats().pages_read, 2u);
}

TEST(BufferManagerTest, CapacityOneStillWorks) {
  Pager pager(128);
  BufferManager buffers(&pager);
  const PageId a = buffers.Allocate();
  const PageId b = buffers.Allocate();
  buffers.SetCapacity(1);
  buffers.ResetStats();
  buffers.Fetch(a);
  buffers.Fetch(a);
  EXPECT_EQ(buffers.stats().cache_hits, 1u);
  buffers.Fetch(b);  // Evicts a.
  buffers.Fetch(a);  // Miss again.
  EXPECT_EQ(buffers.stats().pages_read, 3u);
}

TEST(BufferManagerTest, FreeDropsFromLru) {
  Pager pager(128);
  BufferManager buffers(&pager);
  const PageId a = buffers.Allocate();
  buffers.SetCapacity(2);
  buffers.ResetStats();
  buffers.Fetch(a);
  buffers.Free(a);
  const PageId b = buffers.Allocate();  // Likely reuses a's id.
  buffers.ResetStats();
  buffers.Fetch(b);
  // b was inserted at Allocate time, so this is a hit, not a stale one.
  EXPECT_EQ(buffers.stats().cache_hits, 1u);
}

TEST(IoStatsTest, DeltaArithmetic) {
  IoStats a, b;
  a.pages_read = 10;
  a.pages_written = 4;
  b.pages_read = 3;
  b.pages_written = 1;
  const IoStats d = a - b;
  EXPECT_EQ(d.pages_read, 7u);
  EXPECT_EQ(d.pages_written, 3u);
  EXPECT_NE(a.ToString().find("reads=10"), std::string::npos);
}

class OverflowChainTest : public ::testing::TestWithParam<size_t> {};

TEST_P(OverflowChainTest, RoundTripsPayloads) {
  Pager pager(256);
  BufferManager buffers(&pager);
  Random rng(GetParam());
  std::string payload;
  for (size_t i = 0; i < GetParam(); ++i) {
    payload.push_back(static_cast<char>(rng.Next() & 0xFF));
  }
  Result<PageId> head = OverflowChain::Write(&buffers, Slice(payload));
  ASSERT_TRUE(head.ok());
  if (payload.empty()) {
    EXPECT_EQ(head.value(), kInvalidPageId);
    return;
  }
  Result<std::string> back = OverflowChain::Read(&buffers, head.value());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value(), payload);

  const uint64_t live_before = pager.live_page_count();
  ASSERT_TRUE(OverflowChain::Free(&buffers, head.value()).ok());
  const uint64_t expected_links =
      (payload.size() + OverflowChain::PayloadPerPage(buffers) - 1) /
      OverflowChain::PayloadPerPage(buffers);
  EXPECT_EQ(live_before - pager.live_page_count(), expected_links);
}

INSTANTIATE_TEST_SUITE_P(Sizes, OverflowChainTest,
                         ::testing::Values(0, 1, 249, 250, 251, 500, 4096,
                                           100000));

TEST(OverflowChainTest, ReadChargesOnePageReadPerLink) {
  Pager pager(256);
  BufferManager buffers(&pager);
  const std::string payload(1000, 'x');  // 4 links at 250 B payload each.
  const PageId head =
      OverflowChain::Write(&buffers, Slice(payload)).value();
  QueryCost cost(&buffers);
  ASSERT_TRUE(OverflowChain::Read(&buffers, head).ok());
  EXPECT_EQ(cost.PagesRead(), 4u);
}

}  // namespace
}  // namespace uindex
