// End-to-end and hostility tests for the HTTP/JSON gateway (src/http/)
// plus unit coverage of the strict JSON parser (src/util/json.h) it is
// built on. Mirrors the protocol-v4 hostility suite's style
// (net_server_test.cc): every attack is driven through a real socket, and
// the assertion is always a *typed* rejection plus a still-healthy server.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "db/database.h"
#include "exec/thread_pool.h"
#include "http/backend.h"
#include "http/gateway.h"
#include "http/http_client.h"
#include "net/client.h"
#include "net/router.h"
#include "net/router_server.h"
#include "net/server.h"
#include "util/json.h"

namespace uindex {
namespace http {
namespace {

// The net_server_test database: Item root with 4 subclasses, int
// hierarchy index on "price", 400 objects over 97 keys — behind a
// net::Server with the gateway mounted on top.
class HttpGatewayTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = std::make_unique<Database>();
    root_ = db_->CreateClass("Item").value();
    for (int i = 0; i < 4; ++i) {
      subs_.push_back(
          db_->CreateSubclass("Item" + std::to_string(i), root_).value());
    }
    ASSERT_TRUE(db_->CreateIndex(PathSpec::ClassHierarchy(
                                     root_, "price", Value::Kind::kInt))
                    .ok());
    for (int i = 0; i < kObjects; ++i) {
      const Oid oid = db_->CreateObject(subs_[i % subs_.size()]).value();
      ASSERT_TRUE(db_->SetAttr(oid, "price", Value::Int(i % kPrices)).ok());
    }
  }

  void StartStack(net::ServerOptions server_options = net::ServerOptions(),
                  exec::ThreadPool* pool = nullptr,
                  GatewayOptions gateway_options = GatewayOptions()) {
    Result<std::unique_ptr<net::Server>> server =
        net::Server::Start(db_.get(), server_options, pool);
    ASSERT_TRUE(server.ok()) << server.status().ToString();
    server_ = std::move(server).value();
    backend_ = std::make_unique<ServerBackend>(server_.get());
    Result<std::unique_ptr<HttpGateway>> gateway =
        HttpGateway::Start(backend_.get(), gateway_options);
    ASSERT_TRUE(gateway.ok()) << gateway.status().ToString();
    gateway_ = std::move(gateway).value();
  }

  std::unique_ptr<HttpClient> MustConnect() {
    Result<std::unique_ptr<HttpClient>> client =
        HttpClient::Connect("127.0.0.1", gateway_->port());
    EXPECT_TRUE(client.ok()) << client.status().ToString();
    return client.ok() ? std::move(client).value() : nullptr;
  }

  static std::string PriceQuery(int key) {
    return "SELECT i FROM Item* i WHERE i.price = " + std::to_string(key);
  }
  static std::string QueryBody(int key) {
    return "{\"oql\": \"" + PriceQuery(key) + "\"}";
  }

  static constexpr int kObjects = 400;
  static constexpr int kPrices = 97;
  std::unique_ptr<Database> db_;
  ClassId root_ = kInvalidClassId;
  std::vector<ClassId> subs_;
  std::unique_ptr<net::Server> server_;
  std::unique_ptr<ServerBackend> backend_;
  std::unique_ptr<HttpGateway> gateway_;  // Torn down first (decl order).
};

// Parses a response body that must be a JSON object.
json::Value MustParse(const std::string& body) {
  Result<json::Value> doc = json::Parse(body);
  EXPECT_TRUE(doc.ok()) << doc.status().ToString() << "\nbody: " << body;
  return doc.ok() ? std::move(doc).value() : json::Value();
}

std::vector<Oid> OidsOf(const json::Value& doc) {
  std::vector<Oid> out;
  const json::Value* oids = doc.Find("oids");
  if (oids == nullptr) return out;
  for (const json::Value& v : oids->items()) {
    out.push_back(static_cast<Oid>(v.AsInt()));
  }
  return out;
}

// ------------------------------------------------------------ functional

TEST_F(HttpGatewayTest, QueryRowsMatchInProcessExecution) {
  StartStack();
  std::unique_ptr<HttpClient> client = MustConnect();
  ASSERT_NE(client, nullptr);
  for (int key = 0; key < 20; ++key) {
    Result<Database::OqlResult> local = db_->ExecuteOql(PriceQuery(key));
    ASSERT_TRUE(local.ok());
    Result<HttpClient::Response> response =
        client->Post("/v1/query", QueryBody(key));
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    ASSERT_EQ(response.value().status, 200) << response.value().body;
    const json::Value doc = MustParse(response.value().body);
    EXPECT_EQ(OidsOf(doc), local.value().oids);
    ASSERT_NE(doc.Find("count"), nullptr);
    EXPECT_EQ(doc.Find("count")->AsInt(),
              static_cast<int64_t>(local.value().count));
    ASSERT_NE(doc.Find("used_index"), nullptr);
    EXPECT_EQ(doc.Find("used_index")->AsBool(), local.value().used_index);
    ASSERT_NE(doc.Find("plan"), nullptr);
    EXPECT_EQ(doc.Find("plan")->AsString(), local.value().plan);
    // Per-query IoStats ride along, exactly like a binary kRows response.
    const json::Value* stats = doc.Find("stats");
    ASSERT_NE(stats, nullptr);
    EXPECT_TRUE(stats->is_object());
    EXPECT_NE(stats->Find("pages_read"), nullptr);
    EXPECT_NE(stats->Find("node_cache_hits"), nullptr);
    EXPECT_NE(stats->Find("epochs_published"), nullptr);
  }
}

TEST_F(HttpGatewayTest, DmlMutationsAreVisibleToQueries) {
  StartStack();
  std::unique_ptr<HttpClient> client = MustConnect();
  ASSERT_NE(client, nullptr);

  const std::vector<Oid> before =
      db_->ExecuteOql(PriceQuery(3)).value().oids;

  Result<HttpClient::Response> created = client->Post(
      "/v1/dml", "{\"op\": \"create_object\", \"class\": \"Item0\"}");
  ASSERT_TRUE(created.ok());
  ASSERT_EQ(created.value().status, 200) << created.value().body;
  const json::Value created_doc = MustParse(created.value().body);
  ASSERT_NE(created_doc.Find("oid"), nullptr);
  const Oid oid = static_cast<Oid>(created_doc.Find("oid")->AsInt());

  Result<HttpClient::Response> set = client->Post(
      "/v1/dml", "{\"op\": \"set_attr\", \"oid\": " + std::to_string(oid) +
                     ", \"attr\": \"price\", \"value\": 3}");
  ASSERT_TRUE(set.ok());
  ASSERT_EQ(set.value().status, 200) << set.value().body;

  Result<HttpClient::Response> after =
      client->Post("/v1/query", QueryBody(3));
  ASSERT_TRUE(after.ok());
  std::vector<Oid> expected = before;
  expected.push_back(oid);
  EXPECT_EQ(OidsOf(MustParse(after.value().body)), expected);

  Result<HttpClient::Response> removed = client->Post(
      "/v1/dml",
      "{\"op\": \"delete_object\", \"oid\": " + std::to_string(oid) + "}");
  ASSERT_TRUE(removed.ok());
  ASSERT_EQ(removed.value().status, 200) << removed.value().body;
  Result<HttpClient::Response> back =
      client->Post("/v1/query", QueryBody(3));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(OidsOf(MustParse(back.value().body)), before);
}

TEST_F(HttpGatewayTest, HealthzTracksTheBackendDrain) {
  StartStack();
  std::unique_ptr<HttpClient> client = MustConnect();
  ASSERT_NE(client, nullptr);
  Result<HttpClient::Response> healthy = client->Get("/healthz");
  ASSERT_TRUE(healthy.ok());
  EXPECT_EQ(healthy.value().status, 200);
  EXPECT_NE(healthy.value().body.find("\"ok\""), std::string::npos);

  // Drain the binary server; the gateway itself keeps serving, but
  // advertises the backend as draining so load balancers stop routing.
  server_->Shutdown();
  Result<HttpClient::Response> draining = client->Get("/healthz");
  ASSERT_TRUE(draining.ok());
  EXPECT_EQ(draining.value().status, 503);
  EXPECT_NE(draining.value().body.find("draining"), std::string::npos);
}

TEST_F(HttpGatewayTest, MetricsExposeTheWholeStack) {
  StartStack();
  std::unique_ptr<HttpClient> client = MustConnect();
  ASSERT_NE(client, nullptr);
  // One query so the counters are provably live, not just present.
  ASSERT_TRUE(client->Post("/v1/query", QueryBody(1)).ok());

  Result<HttpClient::Response> metrics = client->Get("/metrics");
  ASSERT_TRUE(metrics.ok());
  ASSERT_EQ(metrics.value().status, 200);
  const std::string& text = metrics.value().body;
  for (const char* name :
       {"uindex_admission_inflight", "uindex_admission_admitted_total",
        "uindex_admission_shed_total", "uindex_server_queries_ok_total",
        "uindex_io_pages_read_total", "uindex_io_pool_hit_rate",
        "uindex_mvcc_epochs_published_total", "uindex_commit_batches_total",
        "uindex_shard_active", "uindex_http_requests_total",
        "uindex_http_qps"}) {
    EXPECT_NE(text.find(name), std::string::npos) << name;
  }
  // The admitted counter reflects the query we just ran.
  EXPECT_NE(text.find("uindex_admission_admitted_total"), std::string::npos);
  EXPECT_EQ(server_->admission().admitted_total(), 1u);
}

// The tentpole invariant: HTTP and binary clients compete for the SAME
// admission budget, so saturation caused on one protocol is observable
// from the other.
TEST_F(HttpGatewayTest, ShedOnOneProtocolIsObservableOnTheOther) {
  exec::ThreadPool pool(1);
  net::ServerOptions options;
  options.max_inflight_queries = 1;
  options.max_queued_queries = 0;
  StartStack(options, &pool);

  std::mutex mu;
  std::condition_variable cv;
  bool release = false;
  pool.Schedule([&] {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return release; });
  });

  // A binary client occupies the single admission slot...
  Result<std::unique_ptr<net::Client>> binary =
      net::Client::Connect("127.0.0.1", server_->port());
  ASSERT_TRUE(binary.ok());
  Result<net::Client::QueryResult> in_flight = Status::NotFound("unset");
  std::thread blocked(
      [&] { in_flight = binary.value()->Query(PriceQuery(3)); });
  while (pool.queued() == 0) std::this_thread::yield();

  // ...so an HTTP query is shed with a typed 429.
  std::unique_ptr<HttpClient> client = MustConnect();
  ASSERT_NE(client, nullptr);
  Result<HttpClient::Response> shed =
      client->Post("/v1/query", QueryBody(4));
  ASSERT_TRUE(shed.ok()) << shed.status().ToString();
  EXPECT_EQ(shed.value().status, 429) << shed.value().body;
  EXPECT_NE(shed.value().body.find("busy"), std::string::npos);

  // The shed is visible in the shared gate — over HTTP /metrics, where a
  // binary-protocol operator would also see HTTP-caused sheds.
  Result<HttpClient::Response> metrics = client->Get("/metrics");
  ASSERT_TRUE(metrics.ok());
  EXPECT_NE(metrics.value().body.find("uindex_admission_shed_total 1"),
            std::string::npos)
      << metrics.value().body;
  EXPECT_EQ(server_->admission().shed_total(), 1u);

  {
    std::lock_guard<std::mutex> lock(mu);
    release = true;
  }
  cv.notify_all();
  blocked.join();
  ASSERT_TRUE(in_flight.ok()) << in_flight.status().ToString();
  // The shed HTTP connection is still usable afterwards.
  Result<HttpClient::Response> retry =
      client->Post("/v1/query", QueryBody(4));
  ASSERT_TRUE(retry.ok());
  EXPECT_EQ(retry.value().status, 200);
}

// -------------------------------------------------------------- hostility

TEST_F(HttpGatewayTest, OversizedHeadersAreRejectedWith431) {
  StartStack();
  std::unique_ptr<HttpClient> client = MustConnect();
  ASSERT_NE(client, nullptr);
  std::string request = "GET /healthz HTTP/1.1\r\nhost: x\r\n";
  request += "x-filler: " + std::string(10000, 'a') + "\r\n\r\n";
  ASSERT_TRUE(client->SendRaw(request).ok());
  Result<HttpClient::Response> response = client->ReadResponse();
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response.value().status, 431);
  // The server is still healthy for the next connection.
  std::unique_ptr<HttpClient> next = MustConnect();
  ASSERT_NE(next, nullptr);
  EXPECT_EQ(next->Get("/healthz").value().status, 200);
}

TEST_F(HttpGatewayTest, TooManyHeadersAreRejectedWith431) {
  StartStack();
  std::unique_ptr<HttpClient> client = MustConnect();
  ASSERT_NE(client, nullptr);
  std::string request = "GET /healthz HTTP/1.1\r\n";
  for (int i = 0; i < 80; ++i) {
    request += "x-h" + std::to_string(i) + ": v\r\n";
  }
  request += "\r\n";
  ASSERT_TRUE(client->SendRaw(request).ok());
  Result<HttpClient::Response> response = client->ReadResponse();
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response.value().status, 431);
}

TEST_F(HttpGatewayTest, OversizedBodyIsRejectedWith413) {
  StartStack();
  std::unique_ptr<HttpClient> client = MustConnect();
  ASSERT_NE(client, nullptr);
  // Announce a 2 MiB body; the server must reject on the declared length
  // without waiting for (or reading) the payload.
  ASSERT_TRUE(client
                  ->SendRaw("POST /v1/query HTTP/1.1\r\n"
                            "content-length: 2097152\r\n\r\n")
                  .ok());
  Result<HttpClient::Response> response = client->ReadResponse();
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response.value().status, 413);
}

TEST_F(HttpGatewayTest, TruncatedContentLengthIsATyped400) {
  StartStack();
  std::unique_ptr<HttpClient> client = MustConnect();
  ASSERT_NE(client, nullptr);
  // Promise 100 bytes, deliver 10, then half-close: the server sees EOF
  // mid-body and must answer a typed 400, not hang or crash.
  ASSERT_TRUE(client
                  ->SendRaw("POST /v1/query HTTP/1.1\r\n"
                            "content-length: 100\r\n\r\n{\"oql\": \"")
                  .ok());
  client->ShutdownWrite();
  Result<HttpClient::Response> response = client->ReadResponse();
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response.value().status, 400);
}

TEST_F(HttpGatewayTest, NonNumericContentLengthIsATyped400) {
  StartStack();
  std::unique_ptr<HttpClient> client = MustConnect();
  ASSERT_NE(client, nullptr);
  ASSERT_TRUE(client
                  ->SendRaw("POST /v1/query HTTP/1.1\r\n"
                            "content-length: banana\r\n\r\n")
                  .ok());
  Result<HttpClient::Response> response = client->ReadResponse();
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response.value().status, 400);
}

TEST_F(HttpGatewayTest, TransferEncodingIsATyped501) {
  StartStack();
  std::unique_ptr<HttpClient> client = MustConnect();
  ASSERT_NE(client, nullptr);
  ASSERT_TRUE(client
                  ->SendRaw("POST /v1/query HTTP/1.1\r\n"
                            "transfer-encoding: chunked\r\n\r\n")
                  .ok());
  Result<HttpClient::Response> response = client->ReadResponse();
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response.value().status, 501);
}

TEST_F(HttpGatewayTest, PipelinedGarbageAfterAValidRequestIsContained) {
  StartStack();
  std::unique_ptr<HttpClient> client = MustConnect();
  ASSERT_NE(client, nullptr);
  // A valid request followed by line noise on the same connection: the
  // valid one is answered, the garbage earns a 400, the connection dies —
  // and only that connection.
  constexpr char kGarbage[] = "THIS IS NOT HTTP\0\r\nGARBAGE MORE\r\n\r\n";
  std::string raw = "GET /healthz HTTP/1.1\r\n\r\n";
  raw.append(kGarbage, sizeof(kGarbage) - 1);  // Keep the embedded NUL.
  ASSERT_TRUE(client->SendRaw(raw).ok());
  Result<HttpClient::Response> first = client->ReadResponse();
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_EQ(first.value().status, 200);
  Result<HttpClient::Response> second = client->ReadResponse();
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  EXPECT_EQ(second.value().status, 400);

  std::unique_ptr<HttpClient> next = MustConnect();
  ASSERT_NE(next, nullptr);
  EXPECT_EQ(next->Get("/healthz").value().status, 200);
}

TEST_F(HttpGatewayTest, MalformedJsonCarriesCaretDiagnostics) {
  StartStack();
  std::unique_ptr<HttpClient> client = MustConnect();
  ASSERT_NE(client, nullptr);
  Result<HttpClient::Response> response =
      client->Post("/v1/query", "{\"oql\" \"missing colon\"}");
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response.value().status, 400);
  // The error body carries the util/diag caret context pointing at the
  // offending byte — same diagnostics the binary protocol ships.
  EXPECT_NE(response.value().body.find("^"), std::string::npos)
      << response.value().body;
}

TEST_F(HttpGatewayTest, SlowLorisIsCutOffWithA408) {
  GatewayOptions gateway_options;
  gateway_options.limits.io_timeout_ms = 200;
  StartStack(net::ServerOptions(), nullptr, gateway_options);
  std::unique_ptr<HttpClient> client = MustConnect();
  ASSERT_NE(client, nullptr);
  // Start a request and then stall mid-header, forever.
  ASSERT_TRUE(client->SendRaw("POST /v1/query HTTP/1.1\r\ncontent-").ok());
  Result<HttpClient::Response> response = client->ReadResponse();
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response.value().status, 408);
  // The stalled connection did not wedge the server.
  std::unique_ptr<HttpClient> next = MustConnect();
  ASSERT_NE(next, nullptr);
  EXPECT_EQ(next->Get("/healthz").value().status, 200);
}

TEST_F(HttpGatewayTest, UnknownPathsAndMethodsAreTyped) {
  StartStack();
  std::unique_ptr<HttpClient> client = MustConnect();
  ASSERT_NE(client, nullptr);
  EXPECT_EQ(client->Get("/nope").value().status, 404);
  // Right path, wrong method.
  EXPECT_EQ(client->Get("/v1/query").value().status, 405);
  EXPECT_EQ(client->Post("/healthz", "{}").value().status, 405);
  // The connection survived all of it.
  EXPECT_EQ(client->Get("/healthz").value().status, 200);
}

// ------------------------------------------------------- router mounting

// A one-shard cluster is enough to prove the gateway speaks RouterServer:
// rows match the planning replica, DML is a typed 501, and the router's
// scatter counters surface in /metrics.
TEST_F(HttpGatewayTest, GatewayMountsOnTheRouterFrontEnd) {
  net::ServerOptions shard_options;
  shard_options.worker_threads = 2;
  Result<std::unique_ptr<net::Server>> shard =
      net::Server::Start(db_.get(), shard_options);
  ASSERT_TRUE(shard.ok());
  net::ShardMap map;
  map.version = 1;
  net::ShardMap::Entry entry;
  entry.lo = "";
  entry.host = "127.0.0.1";
  entry.port = shard.value()->port();
  map.entries.push_back(entry);
  ASSERT_TRUE(shard.value()->InstallShard(map, 0).ok());
  Result<std::unique_ptr<net::Router>> router =
      net::Router::Create(map, db_.get(), net::RouterOptions());
  ASSERT_TRUE(router.ok()) << router.status().ToString();
  Result<std::unique_ptr<net::RouterServer>> front =
      net::RouterServer::Start(router.value().get(),
                               net::RouterServerOptions());
  ASSERT_TRUE(front.ok()) << front.status().ToString();

  RouterBackend backend(front.value().get());
  Result<std::unique_ptr<HttpGateway>> gateway =
      HttpGateway::Start(&backend, GatewayOptions());
  ASSERT_TRUE(gateway.ok()) << gateway.status().ToString();

  Result<std::unique_ptr<HttpClient>> client =
      HttpClient::Connect("127.0.0.1", gateway.value()->port());
  ASSERT_TRUE(client.ok());
  Result<Database::OqlResult> local = db_->ExecuteOql(PriceQuery(5));
  ASSERT_TRUE(local.ok());
  Result<HttpClient::Response> response =
      client.value()->Post("/v1/query", QueryBody(5));
  ASSERT_TRUE(response.ok());
  ASSERT_EQ(response.value().status, 200) << response.value().body;
  EXPECT_EQ(OidsOf(MustParse(response.value().body)), local.value().oids);

  // The scatter path is read-only; mutations are refused typed.
  Result<HttpClient::Response> dml = client.value()->Post(
      "/v1/dml", "{\"op\": \"create_object\", \"class\": \"Item0\"}");
  ASSERT_TRUE(dml.ok());
  EXPECT_EQ(dml.value().status, 501) << dml.value().body;

  Result<HttpClient::Response> metrics = client.value()->Get("/metrics");
  ASSERT_TRUE(metrics.ok());
  EXPECT_NE(metrics.value().body.find("uindex_router_queries_ok_total"),
            std::string::npos);
  EXPECT_NE(metrics.value().body.find("uindex_scatter_subqueries_sent_total"),
            std::string::npos);
  EXPECT_NE(metrics.value().body.find("uindex_admission_admitted_total"),
            std::string::npos);

  gateway.value()->Shutdown();
  front.value()->Shutdown();
  shard.value()->Shutdown();
}

// ---------------------------------------------------- json parser (unit)

TEST(JsonParserTest, ParsesTheBasicShapes) {
  Result<json::Value> doc = json::Parse(
      "{\"a\": 1, \"b\": -2.5, \"c\": \"x\", \"d\": [true, false, null],"
      " \"e\": {\"nested\": \"yes\"}}");
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  const json::Value& v = doc.value();
  ASSERT_TRUE(v.is_object());
  EXPECT_EQ(v.Find("a")->AsInt(), 1);
  EXPECT_TRUE(v.Find("a")->is_int());
  EXPECT_TRUE(v.Find("b")->is_double());
  EXPECT_DOUBLE_EQ(v.Find("b")->AsDouble(), -2.5);
  EXPECT_EQ(v.Find("c")->AsString(), "x");
  ASSERT_TRUE(v.Find("d")->is_array());
  ASSERT_EQ(v.Find("d")->items().size(), 3u);
  EXPECT_TRUE(v.Find("d")->items()[0].AsBool());
  EXPECT_TRUE(v.Find("d")->items()[2].is_null());
  EXPECT_EQ(v.Find("e")->Find("nested")->AsString(), "yes");
}

TEST(JsonParserTest, IntegerVersusDoubleIsSyntactic) {
  EXPECT_TRUE(json::Parse("[1]").value().items()[0].is_int());
  EXPECT_TRUE(json::Parse("[1.0]").value().items()[0].is_double());
  EXPECT_TRUE(json::Parse("[1e3]").value().items()[0].is_double());
  // int64 boundaries stay exact.
  EXPECT_EQ(json::Parse("[9223372036854775807]").value().items()[0].AsInt(),
            INT64_MAX);
  EXPECT_EQ(json::Parse("[-9223372036854775808]").value().items()[0].AsInt(),
            INT64_MIN);
}

TEST(JsonParserTest, StrictnessRejectsCommonLooseness) {
  EXPECT_FALSE(json::Parse("{\"a\": 1,}").ok());     // Trailing comma.
  EXPECT_FALSE(json::Parse("[1, 2,]").ok());
  EXPECT_FALSE(json::Parse("{'a': 1}").ok());        // Single quotes.
  EXPECT_FALSE(json::Parse("{a: 1}").ok());          // Bare key.
  EXPECT_FALSE(json::Parse("[01]").ok());            // Leading zero.
  EXPECT_FALSE(json::Parse("[+1]").ok());            // Leading plus.
  EXPECT_FALSE(json::Parse("[.5]").ok());            // Bare fraction.
  EXPECT_FALSE(json::Parse("[1] trailing").ok());    // Trailing bytes.
  EXPECT_FALSE(json::Parse("").ok());
  EXPECT_FALSE(json::Parse("{\"a\": 1 \"b\": 2}").ok());  // Missing comma.
}

TEST(JsonParserTest, DuplicateKeysAreRejected) {
  Result<json::Value> doc = json::Parse("{\"a\": 1, \"a\": 2}");
  ASSERT_FALSE(doc.ok());
  EXPECT_NE(doc.status().message().find("duplicate"), std::string::npos)
      << doc.status().message();
}

TEST(JsonParserTest, DepthIsBounded) {
  std::string deep;
  for (int i = 0; i < 100; ++i) deep += "[";
  for (int i = 0; i < 100; ++i) deep += "]";
  EXPECT_FALSE(json::Parse(deep).ok());
  std::string fine;
  for (int i = 0; i < 30; ++i) fine += "[";
  for (int i = 0; i < 30; ++i) fine += "]";
  EXPECT_TRUE(json::Parse(fine).ok());
}

TEST(JsonParserTest, StringEscapesAndSurrogatePairs) {
  Result<json::Value> doc =
      json::Parse("[\"a\\n\\t\\\"\\\\b\", \"\\u0041\", \"\\uD83D\\uDE00\"]");
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  EXPECT_EQ(doc.value().items()[0].AsString(), "a\n\t\"\\b");
  EXPECT_EQ(doc.value().items()[1].AsString(), "A");
  EXPECT_EQ(doc.value().items()[2].AsString(), "\xF0\x9F\x98\x80");
  // A lone high surrogate is malformed.
  EXPECT_FALSE(json::Parse("[\"\\uD83D\"]").ok());
  // Raw control characters in strings are malformed.
  EXPECT_FALSE(json::Parse("[\"a\nb\"]").ok());
}

TEST(JsonParserTest, ErrorsCarryCaretContext) {
  Result<json::Value> doc = json::Parse("{\"oql\" \"missing colon\"}");
  ASSERT_FALSE(doc.ok());
  EXPECT_NE(doc.status().message().find("^"), std::string::npos)
      << doc.status().message();
}

TEST(JsonParserTest, QuotingRoundTrips) {
  std::string out;
  json::AppendQuoted(&out, "a\"b\\c\n\x01");
  Result<json::Value> doc = json::Parse("[" + out + "]");
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  EXPECT_EQ(doc.value().items()[0].AsString(), "a\"b\\c\n\x01");
}

}  // namespace
}  // namespace http
}  // namespace uindex
