#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <string>
#include <vector>

#include "btree/btree.h"
#include "core/uindex.h"
#include "exec/thread_pool.h"
#include "storage/prefetch.h"
#include "workload/database_generator.h"

namespace uindex {
namespace {

uint64_t Issued(const BufferManager& b) {
  return b.stats().prefetch_issued.load(std::memory_order_relaxed);
}
uint64_t Hits(const BufferManager& b) {
  return b.stats().prefetch_hits.load(std::memory_order_relaxed);
}
uint64_t Wasted(const BufferManager& b) {
  return b.stats().prefetch_wasted.load(std::memory_order_relaxed);
}

class PrefetchSchedulerTest : public ::testing::Test {
 protected:
  PrefetchSchedulerTest() : pager_(1024), buffers_(&pager_), pool_(2) {}

  std::vector<PageId> AllocatePages(size_t n) {
    std::vector<PageId> ids;
    for (size_t i = 0; i < n; ++i) ids.push_back(pager_.Allocate());
    return ids;
  }

  Pager pager_;
  BufferManager buffers_;
  exec::ThreadPool pool_;
};

TEST_F(PrefetchSchedulerTest, DedupesInFlightAndStagedIds) {
  PrefetchScheduler scheduler(&buffers_, &pool_);
  const std::vector<PageId> ids = AllocatePages(4);

  EXPECT_EQ(scheduler.Prefetch(ids), 4u);
  // Same batch again: every id is in flight or already staged.
  EXPECT_EQ(scheduler.Prefetch(ids), 0u);
  scheduler.Drain();
  EXPECT_EQ(scheduler.pending(), 0u);
  EXPECT_EQ(scheduler.staged(), 4u);
  EXPECT_EQ(scheduler.Prefetch(ids), 0u);
  EXPECT_EQ(Issued(buffers_), 4u);

  // Nothing consumed: the epoch boundary reclassifies all of it as wasted
  // and the ledger balances.
  scheduler.OnEpochReset();
  EXPECT_EQ(scheduler.staged(), 0u);
  EXPECT_EQ(Issued(buffers_), Hits(buffers_) + Wasted(buffers_));
  EXPECT_EQ(Wasted(buffers_), 4u);
}

TEST_F(PrefetchSchedulerTest, SkipsResidentAndInvalidIds) {
  PrefetchScheduler scheduler(&buffers_, &pool_);
  const std::vector<PageId> ids = AllocatePages(2);
  buffers_.BeginQuery();
  EXPECT_NE(buffers_.Fetch(ids[0]), nullptr);  // Resident this epoch.
  // A resident page would be pure waste to prefetch; invalid ids are
  // ignored outright.
  EXPECT_EQ(scheduler.Prefetch({ids[0], kInvalidPageId}), 0u);
  EXPECT_EQ(scheduler.Prefetch(ids), 1u);  // Only the non-resident one.
  scheduler.Drain();
  buffers_.BeginQuery();  // New epoch: nothing resident any more.
  EXPECT_EQ(scheduler.Prefetch({ids[0]}), 1u);
  scheduler.Drain();
}

TEST_F(PrefetchSchedulerTest, DemandFetchJoinsStagedRead) {
  PrefetchScheduler scheduler(&buffers_, &pool_);
  buffers_.SetPrefetcher(&scheduler);
  const std::vector<PageId> ids = AllocatePages(3);
  buffers_.BeginQuery();

  ASSERT_EQ(scheduler.Prefetch(ids), 3u);
  scheduler.Drain();
  const uint64_t reads_before =
      buffers_.stats().pages_read.load(std::memory_order_relaxed);

  // The demand fetch is charged exactly as without prefetch, and consumes
  // the staged read.
  EXPECT_NE(buffers_.Fetch(ids[0]), nullptr);
  EXPECT_EQ(buffers_.stats().pages_read.load(std::memory_order_relaxed),
            reads_before + 1);
  EXPECT_EQ(Hits(buffers_), 1u);
  EXPECT_EQ(scheduler.staged(), 2u);

  // Second fetch of the same id is resident — no read, no join.
  EXPECT_NE(buffers_.Fetch(ids[0]), nullptr);
  EXPECT_EQ(buffers_.stats().pages_read.load(std::memory_order_relaxed),
            reads_before + 1);
  EXPECT_EQ(Hits(buffers_), 1u);

  buffers_.SetPrefetcher(nullptr);
  scheduler.Drain();
}

TEST_F(PrefetchSchedulerTest, DemandStealsQueuedNotStartedRead) {
  // A single-worker pool wedged on a blocker task: prefetches queue behind
  // it and can never start. The demand fetch must steal them instead of
  // waiting on pool scheduling (the deadlock-freedom rule).
  exec::ThreadPool one(1);
  PrefetchScheduler scheduler(&buffers_, &one);
  buffers_.SetPrefetcher(&scheduler);
  const std::vector<PageId> ids = AllocatePages(2);
  buffers_.BeginQuery();

  std::mutex mu;
  std::condition_variable cv;
  bool release = false;
  one.Schedule([&] {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return release; });
  });

  ASSERT_EQ(scheduler.Prefetch(ids), 2u);
  EXPECT_NE(buffers_.Fetch(ids[0]), nullptr);  // Steal, not deadlock.
  EXPECT_EQ(Hits(buffers_), 0u);
  EXPECT_EQ(Wasted(buffers_), 1u);

  {
    std::lock_guard<std::mutex> lock(mu);
    release = true;
  }
  cv.notify_all();
  scheduler.Drain();
  EXPECT_NE(buffers_.Fetch(ids[1]), nullptr);  // Staged after the drain.
  EXPECT_EQ(Hits(buffers_), 1u);
  scheduler.OnEpochReset();
  EXPECT_EQ(Issued(buffers_), Hits(buffers_) + Wasted(buffers_));
  buffers_.SetPrefetcher(nullptr);
}

TEST_F(PrefetchSchedulerTest, FreedPageInvalidatesItsPrefetch) {
  PrefetchScheduler scheduler(&buffers_, &pool_);
  buffers_.SetPrefetcher(&scheduler);
  const std::vector<PageId> ids = AllocatePages(2);
  buffers_.BeginQuery();

  ASSERT_EQ(scheduler.Prefetch(ids), 2u);
  scheduler.Drain();
  buffers_.Free(ids[0]);  // Staged read of a freed id can never be served.
  EXPECT_EQ(Wasted(buffers_), 1u);
  EXPECT_EQ(scheduler.staged(), 1u);

  // The id may be recycled with unrelated content: a fresh fetch of the
  // recycled id must not join the dead flight.
  const PageId recycled = pager_.Allocate();
  ASSERT_EQ(recycled, ids[0]);
  buffers_.BeginQuery();
  EXPECT_NE(buffers_.Fetch(recycled), nullptr);
  EXPECT_EQ(Hits(buffers_), 0u);
  buffers_.SetPrefetcher(nullptr);
  scheduler.Drain();
}

TEST_F(PrefetchSchedulerTest, EpochResetWastesInFlightReadsOnCompletion) {
  PrefetchScheduler scheduler(&buffers_, &pool_);
  buffers_.SetPrefetcher(&scheduler);
  buffers_.SetSimulatedReadLatency(2000);  // Keep reads in flight briefly.
  const std::vector<PageId> ids = AllocatePages(4);
  buffers_.BeginQuery();

  ASSERT_EQ(scheduler.Prefetch(ids), 4u);
  buffers_.BeginQuery();  // Stale generation: nobody will consume these.
  scheduler.Drain();
  EXPECT_EQ(scheduler.staged(), 0u);
  EXPECT_EQ(Issued(buffers_), Hits(buffers_) + Wasted(buffers_));
  EXPECT_EQ(Wasted(buffers_), 4u);
  buffers_.SetPrefetcher(nullptr);
}

TEST_F(PrefetchSchedulerTest, WarmFnRunsAfterTheBackgroundRead) {
  PrefetchScheduler scheduler(&buffers_, &pool_);
  const std::vector<PageId> ids = AllocatePages(3);
  buffers_.BeginQuery();

  std::atomic<int> warmed{0};
  ASSERT_EQ(
      scheduler.Prefetch(ids, [&](PageId) { warmed.fetch_add(1); }), 3u);
  scheduler.Drain();
  EXPECT_EQ(warmed.load(), 3);
}

// End-to-end equivalence: the iterator readahead and the Parscan pre-pass
// must not change a single row or page read — only the three prefetch
// counters and wall-clock time may move.
class PrefetchEquivalenceTest : public ::testing::Test {
 protected:
  PrefetchEquivalenceTest() : pager_(1024), buffers_(&pager_), pool_(2) {}

  Pager pager_;
  BufferManager buffers_;
  exec::ThreadPool pool_;
};

TEST_F(PrefetchEquivalenceTest, IteratorScanIdenticalWithReadahead) {
  BTree tree(&buffers_);
  for (int i = 0; i < 3000; ++i) {
    char key[16];
    std::snprintf(key, sizeof(key), "key%06d", i);
    ASSERT_TRUE(tree.Insert(Slice(key), Slice(key)).ok());
  }

  auto scan = [&] {
    QueryCost cost(&buffers_);
    std::vector<std::string> keys;
    auto it = tree.NewIterator();
    for (it.SeekToFirst(); it.Valid(); it.Next()) {
      keys.push_back(std::string(it.key().data(), it.key().size()));
    }
    EXPECT_TRUE(it.status().ok());
    return std::make_pair(std::move(keys), cost.PagesRead());
  };

  const auto baseline = scan();
  EXPECT_EQ(baseline.first.size(), 3000u);

  PrefetchScheduler scheduler(&buffers_, &pool_);
  buffers_.SetPrefetcher(&scheduler);
  const auto with_readahead = scan();
  buffers_.SetPrefetcher(nullptr);
  scheduler.Drain();

  EXPECT_EQ(with_readahead.first, baseline.first);
  EXPECT_EQ(with_readahead.second, baseline.second);
  EXPECT_GT(Issued(buffers_), 0u);  // Readahead actually engaged.
}

TEST_F(PrefetchEquivalenceTest, ParscanIdenticalWithChildPrefetch) {
  SetHierarchy hier = std::move(BuildSetHierarchy(8)).value();
  PathSpec spec =
      PathSpec::ClassHierarchy(hier.root, "key", Value::Kind::kInt);
  UIndex index(&buffers_, &hier.schema, hier.coder.get(), spec);

  SetWorkloadConfig cfg;
  cfg.num_objects = 8000;
  cfg.num_sets = 8;
  cfg.num_distinct_keys = 200;
  for (const Posting& p : GeneratePostings(cfg)) {
    UIndex::Entry entry;
    entry.path = {{hier.sets[p.set_index], p.oid}};
    entry.key =
        index.key_encoder().EncodeEntry(Value::Int(p.key), entry.path);
    ASSERT_TRUE(index.InsertEntry(entry).ok());
  }

  Query query = Query::Range(Value::Int(0), Value::Int(60));
  ClassSelector sel;
  for (size_t i = 0; i < 8; i += 2) {
    sel.include.push_back({hier.sets[i], false});
  }
  query.With(std::move(sel), ValueSlot::Wanted());

  auto run = [&] {
    QueryCost cost(&buffers_);
    Result<QueryResult> r = index.Parscan(query);
    EXPECT_TRUE(r.ok());
    return std::make_pair(std::move(r).value().rows, cost.PagesRead());
  };

  const auto baseline = run();
  EXPECT_FALSE(baseline.first.empty());

  PrefetchScheduler scheduler(&buffers_, &pool_);
  buffers_.SetPrefetcher(&scheduler);
  const auto with_prefetch = run();
  const auto forward_on = [&] {
    QueryCost cost(&buffers_);
    Result<QueryResult> r = index.ForwardScan(query);
    EXPECT_TRUE(r.ok());
    return std::make_pair(std::move(r).value().rows, cost.PagesRead());
  }();
  buffers_.SetPrefetcher(nullptr);
  scheduler.Drain();
  const auto forward_off = [&] {
    QueryCost cost(&buffers_);
    Result<QueryResult> r = index.ForwardScan(query);
    EXPECT_TRUE(r.ok());
    return std::make_pair(std::move(r).value().rows, cost.PagesRead());
  }();

  EXPECT_EQ(with_prefetch.first, baseline.first);
  EXPECT_EQ(with_prefetch.second, baseline.second);
  EXPECT_EQ(forward_on.first, forward_off.first);
  EXPECT_EQ(forward_on.second, forward_off.second);
  EXPECT_GT(Issued(buffers_), 0u);
}

}  // namespace
}  // namespace uindex
