#include <gtest/gtest.h>

#include <sys/socket.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "db/database.h"
#include "net/client.h"
#include "net/conn.h"
#include "net/protocol.h"
#include "net/server.h"
#include "util/coding.h"
#include "util/framing.h"

namespace uindex {
namespace net {
namespace {

// A populated database behind an ephemeral-port server: Item root with 4
// subclasses, int hierarchy index on "price", 400 objects over 97 keys.
class NetServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = std::make_unique<Database>();
    root_ = db_->CreateClass("Item").value();
    for (int i = 0; i < 4; ++i) {
      subs_.push_back(
          db_->CreateSubclass("Item" + std::to_string(i), root_).value());
    }
    ASSERT_TRUE(db_->CreateIndex(PathSpec::ClassHierarchy(
                                     root_, "price", Value::Kind::kInt))
                    .ok());
    for (int i = 0; i < kObjects; ++i) {
      const Oid oid = db_->CreateObject(subs_[i % subs_.size()]).value();
      ASSERT_TRUE(db_->SetAttr(oid, "price", Value::Int(i % kPrices)).ok());
    }
  }

  void StartServer(ServerOptions options = ServerOptions(),
                   exec::ThreadPool* pool = nullptr) {
    Result<std::unique_ptr<Server>> server =
        Server::Start(db_.get(), options, pool);
    ASSERT_TRUE(server.ok()) << server.status().ToString();
    server_ = std::move(server).value();
  }

  std::unique_ptr<Client> MustConnect() {
    Result<std::unique_ptr<Client>> client =
        Client::Connect("127.0.0.1", server_->port());
    EXPECT_TRUE(client.ok()) << client.status().ToString();
    return client.ok() ? std::move(client).value() : nullptr;
  }

  static std::string PriceQuery(int key) {
    return "SELECT i FROM Item* i WHERE i.price = " + std::to_string(key);
  }

  static constexpr int kObjects = 400;
  static constexpr int kPrices = 97;
  std::unique_ptr<Database> db_;
  ClassId root_ = kInvalidClassId;
  std::vector<ClassId> subs_;
  std::unique_ptr<Server> server_;  // Destroyed before db_ (decl order).
};

TEST_F(NetServerTest, RemoteQueriesMatchInProcess) {
  StartServer();
  std::unique_ptr<Client> client = MustConnect();
  ASSERT_NE(client, nullptr);
  for (int key = 0; key < 20; ++key) {
    Result<Database::OqlResult> local = db_->ExecuteOql(PriceQuery(key));
    ASSERT_TRUE(local.ok());
    Result<Client::QueryResult> remote = client->Query(PriceQuery(key));
    ASSERT_TRUE(remote.ok()) << remote.status().ToString();
    EXPECT_EQ(remote.value().oids, local.value().oids);
    EXPECT_EQ(remote.value().count, local.value().count);
    EXPECT_EQ(remote.value().used_index, local.value().used_index);
    EXPECT_EQ(remote.value().plan, local.value().plan);
  }
  EXPECT_TRUE(client->Ping().ok());
  Result<Session::Stats> stats = client->SessionStats();
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats.value().queries, 20u);
  EXPECT_EQ(stats.value().failed, 0u);
}

TEST_F(NetServerTest, ParseErrorsTravelWithCaretContext) {
  StartServer();
  std::unique_ptr<Client> client = MustConnect();
  ASSERT_NE(client, nullptr);
  Result<Client::QueryResult> r =
      client->Query("SELECT i FORM Item* i WHERE i.price = 1");
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsInvalidArgument());
  EXPECT_NE(r.status().message().find("at byte 9"), std::string::npos)
      << r.status().message();
  EXPECT_NE(r.status().message().find('^'), std::string::npos);
  // The connection survives a query error.
  EXPECT_TRUE(client->Query(PriceQuery(1)).ok());
}

TEST_F(NetServerTest, MalformedFramePoisonsOnlyThatConnection) {
  StartServer();
  std::unique_ptr<Client> good = MustConnect();
  ASSERT_NE(good, nullptr);

  // Hostile connection 1: a well-framed payload full of garbage op bytes.
  {
    Result<std::unique_ptr<Conn>> conn =
        Conn::Dial("127.0.0.1", server_->port(), 2000);
    ASSERT_TRUE(conn.ok());
    ASSERT_TRUE(conn.value()->WriteFrame(Slice("\x7F garbage")).ok());
    std::string payload;
    Result<ReadOutcome> out = conn.value()->ReadFrame(&payload, 1 << 20, 2000);
    ASSERT_TRUE(out.ok());
    ASSERT_EQ(out.value(), ReadOutcome::kFrame);
    Result<Response> resp = DecodeResponse(Slice(payload));
    ASSERT_TRUE(resp.ok());
    EXPECT_EQ(resp.value().op, Op::kError);
    // Poisoned: the server closes after the error.
    out = conn.value()->ReadFrame(&payload, 1 << 20, 2000);
    EXPECT_TRUE(!out.ok() || out.value() == ReadOutcome::kClosed);
  }

  // Hostile connection 2: a frame whose CRC does not match its payload.
  {
    Result<std::unique_ptr<Conn>> conn =
        Conn::Dial("127.0.0.1", server_->port(), 2000);
    ASSERT_TRUE(conn.ok());
    std::string frame;
    AppendFrame(Slice(EncodePing()), &frame);
    frame[4] ^= 0x01;  // Flip a CRC bit.
    ASSERT_EQ(::send(conn.value()->fd(), frame.data(), frame.size(),
                     MSG_NOSIGNAL),
              static_cast<ssize_t>(frame.size()));
    std::string payload;
    Result<ReadOutcome> out = conn.value()->ReadFrame(&payload, 1 << 20, 2000);
    // Best-effort kError, then close — either is a poisoned connection.
    if (out.ok() && out.value() == ReadOutcome::kFrame) {
      Result<Response> resp = DecodeResponse(Slice(payload));
      ASSERT_TRUE(resp.ok());
      EXPECT_EQ(resp.value().op, Op::kError);
    }
  }

  // Hostile connection 3: a header advertising an over-limit frame.
  {
    Result<std::unique_ptr<Conn>> conn =
        Conn::Dial("127.0.0.1", server_->port(), 2000);
    ASSERT_TRUE(conn.ok());
    std::string header;
    PutFixed32(&header, kMaxRequestFrame + 1);
    PutFixed32(&header, 0);
    ASSERT_EQ(::send(conn.value()->fd(), header.data(), header.size(),
                     MSG_NOSIGNAL),
              static_cast<ssize_t>(header.size()));
    std::string payload;
    Result<ReadOutcome> out = conn.value()->ReadFrame(&payload, 1 << 20, 2000);
    if (out.ok() && out.value() == ReadOutcome::kFrame) {
      Result<Response> resp = DecodeResponse(Slice(payload));
      ASSERT_TRUE(resp.ok());
      EXPECT_EQ(resp.value().op, Op::kError);
    }
  }

  // Hostile connection 4: torn frame — half a header, then hang up.
  {
    Result<std::unique_ptr<Conn>> conn =
        Conn::Dial("127.0.0.1", server_->port(), 2000);
    ASSERT_TRUE(conn.ok());
    ASSERT_EQ(::send(conn.value()->fd(), "\x20\x00", 2, MSG_NOSIGNAL), 2);
    conn.value()->ShutdownBoth();
  }

  // The good connection is unaffected by all four.
  Result<Database::OqlResult> local = db_->ExecuteOql(PriceQuery(5));
  ASSERT_TRUE(local.ok());
  Result<Client::QueryResult> remote = good->Query(PriceQuery(5));
  ASSERT_TRUE(remote.ok()) << remote.status().ToString();
  EXPECT_EQ(remote.value().oids, local.value().oids);
  // All four hostile connections must register (poll: the last poisonings
  // may still be settling on their connection threads).
  for (int i = 0; i < 200; ++i) {
    if (server_->counters().protocol_errors.load() >= 4) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_GE(server_->counters().protocol_errors.load(), 4u);
}

TEST_F(NetServerTest, HelloVersionMismatchIsRejected) {
  StartServer();
  Result<std::unique_ptr<Conn>> conn =
      Conn::Dial("127.0.0.1", server_->port(), 2000);
  ASSERT_TRUE(conn.ok());
  std::string hello;
  hello.push_back(static_cast<char>(Op::kHello));
  hello.append(kProtocolMagic, sizeof(kProtocolMagic));
  PutFixed32(&hello, kProtocolVersion + 7);
  ASSERT_TRUE(conn.value()->WriteFrame(Slice(hello)).ok());
  std::string payload;
  Result<ReadOutcome> out = conn.value()->ReadFrame(&payload, 1 << 20, 2000);
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out.value(), ReadOutcome::kFrame);
  Result<Response> resp = DecodeResponse(Slice(payload));
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp.value().op, Op::kError);
  EXPECT_TRUE(ErrorResponseToStatus(resp.value()).IsInvalidArgument());
}

TEST_F(NetServerTest, AdmissionControlShedsWithTypedBusy) {
  // One worker, one in-flight slot, no wait queue. Block the worker so the
  // first query parks in the slot, then a second query must be shed.
  exec::ThreadPool pool(1);
  ServerOptions options;
  options.max_inflight_queries = 1;
  options.max_queued_queries = 0;
  StartServer(options, &pool);

  std::mutex mu;
  std::condition_variable cv;
  bool release = false;
  pool.Schedule([&] {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return release; });
  });

  std::unique_ptr<Client> first = MustConnect();
  std::unique_ptr<Client> second = MustConnect();
  ASSERT_NE(first, nullptr);
  ASSERT_NE(second, nullptr);

  Result<Client::QueryResult> first_result = Status::NotFound("unset");
  std::thread blocked([&] { first_result = first->Query(PriceQuery(3)); });
  // The first query is admitted once its task lands in the pool queue
  // (behind the blocker).
  while (pool.queued() == 0) std::this_thread::yield();

  Result<Client::QueryResult> shed = second->Query(PriceQuery(4));
  ASSERT_FALSE(shed.ok());
  EXPECT_TRUE(shed.status().IsResourceExhausted());
  EXPECT_NE(shed.status().message().find("server busy"), std::string::npos)
      << shed.status().message();
  EXPECT_EQ(server_->counters().busy_rejected.load(), 1u);

  {
    std::lock_guard<std::mutex> lock(mu);
    release = true;
  }
  cv.notify_all();
  blocked.join();
  ASSERT_TRUE(first_result.ok()) << first_result.status().ToString();
  // The shed connection is still usable afterwards.
  EXPECT_TRUE(second->Query(PriceQuery(4)).ok());
}

TEST_F(NetServerTest, GracefulShutdownDrainsInFlightQueries) {
  exec::ThreadPool pool(1);
  ServerOptions options;
  options.max_inflight_queries = 1;
  StartServer(options, &pool);

  std::mutex mu;
  std::condition_variable cv;
  bool release = false;
  pool.Schedule([&] {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return release; });
  });

  std::unique_ptr<Client> client = MustConnect();
  ASSERT_NE(client, nullptr);
  Result<Client::QueryResult> in_flight = Status::NotFound("unset");
  std::thread query([&] { in_flight = client->Query(PriceQuery(7)); });
  while (pool.queued() == 0) std::this_thread::yield();

  std::atomic<bool> shutdown_done{false};
  std::thread shutdown([&] {
    server_->Shutdown();
    shutdown_done.store(true);
  });
  // Shutdown must wait for the admitted query to drain.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  EXPECT_FALSE(shutdown_done.load());

  {
    std::lock_guard<std::mutex> lock(mu);
    release = true;
  }
  cv.notify_all();
  query.join();
  shutdown.join();

  // The in-flight query's response was delivered, not dropped.
  ASSERT_TRUE(in_flight.ok()) << in_flight.status().ToString();
  Result<Database::OqlResult> local = db_->ExecuteOql(PriceQuery(7));
  ASSERT_TRUE(local.ok());
  EXPECT_EQ(in_flight.value().oids, local.value().oids);
  EXPECT_EQ(server_->active_connections(), 0u);

  // New connections are refused after shutdown.
  Result<std::unique_ptr<Client>> late =
      Client::Connect("127.0.0.1", server_->port(), 500);
  EXPECT_FALSE(late.ok());
}

TEST_F(NetServerTest, ConnectionCapRejectsWithBusy) {
  ServerOptions options;
  options.max_connections = 1;
  StartServer(options);
  std::unique_ptr<Client> first = MustConnect();
  ASSERT_NE(first, nullptr);
  Result<std::unique_ptr<Client>> second =
      Client::Connect("127.0.0.1", server_->port());
  ASSERT_FALSE(second.ok());
  EXPECT_TRUE(second.status().IsResourceExhausted())
      << second.status().ToString();
  // Closing the first frees the slot (poll until the server reaps it).
  first.reset();
  for (int i = 0; i < 100; ++i) {
    if (server_->active_connections() == 0) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_TRUE(MustConnect() != nullptr);
}

TEST_F(NetServerTest, ConcurrentClientsGetConsistentAnswers) {
  StartServer();
  constexpr int kClients = 8;
  constexpr int kQueriesPerClient = 25;

  std::vector<std::vector<Oid>> expected(kPrices);
  for (int key = 0; key < kPrices; ++key) {
    Result<Database::OqlResult> local = db_->ExecuteOql(PriceQuery(key));
    ASSERT_TRUE(local.ok());
    expected[key] = local.value().oids;
  }

  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int t = 0; t < kClients; ++t) {
    clients.emplace_back([&, t] {
      Result<std::unique_ptr<Client>> client =
          Client::Connect("127.0.0.1", server_->port());
      if (!client.ok()) {
        failures.fetch_add(1);
        return;
      }
      for (int q = 0; q < kQueriesPerClient; ++q) {
        const int key = (t * 31 + q) % kPrices;
        Result<Client::QueryResult> r =
            client.value()->Query(PriceQuery(key));
        if (!r.ok() || r.value().oids != expected[key]) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(server_->counters().queries_ok.load(),
            static_cast<uint64_t>(kClients) * kQueriesPerClient);
}

}  // namespace
}  // namespace net
}  // namespace uindex
