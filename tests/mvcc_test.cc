#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstring>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "db/database.h"
#include "db/session.h"
#include "storage/buffer_manager.h"
#include "storage/mvcc.h"
#include "storage/pager.h"

namespace uindex {
namespace {

// ------------------------------------------------------------- registry

TEST(EpochPinRegistryTest, PinPublishAndHorizon) {
  EpochPinRegistry pins;
  EXPECT_EQ(pins.published(), 0u);
  EXPECT_EQ(pins.ReclaimHorizon(), 0u);
  EXPECT_EQ(pins.active_pins(), 0u);

  auto s1 = std::make_shared<int>(1);
  pins.Publish(1, s1);
  EXPECT_EQ(pins.published(), 1u);
  // No pins: the horizon is the published epoch itself.
  EXPECT_EQ(pins.ReclaimHorizon(), 1u);

  EpochPinRegistry::Pin old_pin = pins.PinCurrent();
  EXPECT_EQ(old_pin.epoch, 1u);
  EXPECT_EQ(std::static_pointer_cast<const int>(old_pin.state), s1);
  EXPECT_EQ(pins.active_pins(), 1u);

  pins.Publish(2, std::make_shared<int>(2));
  pins.Publish(3, std::make_shared<int>(3));
  // The oldest pinned epoch bounds reclamation, not the published one.
  EXPECT_EQ(pins.ReclaimHorizon(), 1u);

  EpochPinRegistry::Pin new_pin = pins.PinCurrent();
  EXPECT_EQ(new_pin.epoch, 3u);
  EXPECT_EQ(pins.active_pins(), 2u);
  EXPECT_EQ(pins.ReclaimHorizon(), 1u);

  pins.Unpin(old_pin);
  EXPECT_EQ(pins.ReclaimHorizon(), 3u);
  pins.Unpin(new_pin);
  EXPECT_EQ(pins.active_pins(), 0u);
  EXPECT_EQ(pins.ReclaimHorizon(), 3u);
}

TEST(EpochPinRegistryTest, StateLifetimeFollowsPins) {
  EpochPinRegistry pins;
  std::weak_ptr<const void> watch;
  {
    auto state = std::make_shared<int>(7);
    pins.Publish(1, state);
    watch = pins.state();
  }
  EXPECT_FALSE(watch.expired());
  EpochPinRegistry::Pin pin = pins.PinCurrent();
  // Superseding publish: the pinned reader still owns the old state.
  pins.Publish(2, std::make_shared<int>(8));
  EXPECT_FALSE(watch.expired());
  pins.Unpin(pin);
  pin.state.reset();  // ReadPin's destructor drops the whole Pin.
  EXPECT_TRUE(watch.expired());
}

// -------------------------------------------------------- version table

void FillPage(Page* page, char fill) {
  std::memset(page->data(), fill, page->size());
}

TEST(PageVersionTableTest, ResolvePicksNewestAtOrBelowEpoch) {
  PageVersionTable table;
  EXPECT_TRUE(table.empty());
  EXPECT_EQ(table.Resolve(1, kLatestEpoch), nullptr);

  bool created = false;
  Page base(64);
  FillPage(&base, 'a');
  std::shared_ptr<Page> rev2 = table.GetOrCreateWritable(1, 2, base, &created);
  EXPECT_TRUE(created);
  std::memset(rev2->data(), 'b', rev2->size());
  // Second touch in the same epoch reuses the revision — one CoW per
  // (page, epoch).
  EXPECT_EQ(table.GetOrCreateWritable(1, 2, base, &created), rev2);
  EXPECT_FALSE(created);

  std::shared_ptr<Page> rev4 =
      table.GetOrCreateWritable(1, 4, *rev2, &created);
  EXPECT_TRUE(created);
  std::memset(rev4->data(), 'c', rev4->size());
  EXPECT_EQ(table.revision_count(), 2u);

  // Epoch below every revision: the base store serves the reader.
  EXPECT_EQ(table.Resolve(1, 1), nullptr);
  EXPECT_EQ(table.Resolve(1, 2), rev2);
  EXPECT_EQ(table.Resolve(1, 3), rev2);
  EXPECT_EQ(table.Resolve(1, 4), rev4);
  EXPECT_EQ(table.Resolve(1, kLatestEpoch), rev4);
  EXPECT_EQ(table.Newest(1), rev4);
}

TEST(PageVersionTableTest, ReclaimFoldsThroughHorizonOnly) {
  PageVersionTable table;
  bool created = false;
  Page base(32);
  FillPage(&base, 'a');
  std::shared_ptr<Page> rev2 = table.GetOrCreateWritable(9, 2, base, &created);
  std::memset(rev2->data(), 'b', rev2->size());
  std::shared_ptr<Page> rev5 =
      table.GetOrCreateWritable(9, 5, *rev2, &created);
  std::memset(rev5->data(), 'c', rev5->size());

  std::vector<std::pair<PageId, char>> applied;
  auto apply = [&](PageId id, const Page& bytes) {
    applied.emplace_back(id, bytes.data()[0]);
    return true;
  };
  auto free_page = [](PageId) { FAIL() << "no free was deferred"; };

  // Horizon 3 covers only rev2: its bytes land in base, rev5 stays.
  table.ReclaimThrough(3, apply, free_page);
  ASSERT_EQ(applied.size(), 1u);
  EXPECT_EQ(applied[0], std::make_pair(PageId{9}, 'b'));
  EXPECT_EQ(table.revision_count(), 1u);
  EXPECT_EQ(table.Resolve(9, 3), nullptr);  // Base (now 'b') serves epoch 3.
  EXPECT_EQ(table.Resolve(9, 5), rev5);

  // A vetoed apply keeps the revision chained for the next pass.
  applied.clear();
  table.ReclaimThrough(5, [](PageId, const Page&) { return false; },
                       free_page);
  EXPECT_EQ(table.revision_count(), 1u);
  EXPECT_EQ(table.Resolve(9, 5), rev5);

  table.ReclaimThrough(5, apply, free_page);
  ASSERT_EQ(applied.size(), 1u);
  EXPECT_EQ(applied[0], std::make_pair(PageId{9}, 'c'));
  EXPECT_TRUE(table.empty());
}

TEST(PageVersionTableTest, DeferredFreeWaitsForHorizon) {
  PageVersionTable table;
  bool created = false;
  Page base(32);
  FillPage(&base, 'x');
  table.GetOrCreateWritable(4, 6, base, &created);
  table.DeferFree(4, 6);
  EXPECT_EQ(table.pending_free_count(), 1u);

  std::vector<PageId> freed;
  auto apply = [](PageId, const Page&) { return true; };
  auto free_page = [&](PageId id) { freed.push_back(id); };

  // Horizon below the death epoch: a pinned reader may still walk page 4.
  table.ReclaimThrough(5, apply, free_page);
  EXPECT_TRUE(freed.empty());
  EXPECT_EQ(table.pending_free_count(), 1u);

  // Horizon reaches the death epoch: the chain is dropped (not folded —
  // the page is dead) and the physical free runs.
  table.ReclaimThrough(6, apply, free_page);
  EXPECT_EQ(freed, std::vector<PageId>{4});
  EXPECT_EQ(table.pending_free_count(), 0u);
  EXPECT_TRUE(table.empty());
}

TEST(PageVersionTableTest, BornBookkeeping) {
  PageVersionTable table;
  table.MarkBorn(11);
  EXPECT_TRUE(table.IsBorn(11));
  EXPECT_TRUE(table.EraseBorn(11));
  EXPECT_FALSE(table.EraseBorn(11));
  table.MarkBorn(12);
  table.ClearBorn();
  EXPECT_FALSE(table.IsBorn(12));
}

// ------------------------------------------------------- buffer manager

class BufferManagerMvccTest : public ::testing::Test {
 protected:
  BufferManagerMvccTest() : store_(256), bm_(&store_) {}

  char FirstByteAt(PageId id, uint64_t epoch) {
    ScopedEpoch scope(epoch);
    PageRef ref = bm_.Fetch(id);
    EXPECT_NE(ref, nullptr);
    return ref->data()[0];
  }

  Pager store_;
  BufferManager bm_;
};

TEST_F(BufferManagerMvccTest, SnapshotReadersNeverSeeTheOpenEpoch) {
  // Base content written outside any epoch (legacy in-place path).
  const PageId id = bm_.Allocate();
  {
    PageRef ref = bm_.FetchForWrite(id);
    std::memset(ref->data(), 'a', ref->size());
  }

  // Writer opens epoch 1 and CoWs the page.
  bm_.BeginWriteEpoch(1);
  {
    ScopedEpoch scope(1);
    PageRef ref = bm_.FetchForWrite(id);
    ASSERT_TRUE(ref.versioned());
    std::memset(ref->data(), 'b', ref->size());
  }
  EXPECT_EQ(bm_.stats().pages_cow.load(), 1u);
  EXPECT_EQ(bm_.versioned_revision_count(), 1u);

  // A reader pinned at epoch 0 — before the publish — sees the old bytes
  // even while the writer's epoch is open and after it closes.
  EXPECT_EQ(FirstByteAt(id, 0), 'a');
  bm_.EndWriteEpoch();
  EXPECT_EQ(FirstByteAt(id, 0), 'a');
  EXPECT_EQ(FirstByteAt(id, 1), 'b');
  EXPECT_EQ(FirstByteAt(id, kLatestEpoch), 'b');
  // The base store still holds the epoch-0 bytes.
  EXPECT_EQ(store_.GetPage(id)->data()[0], 'a');

  // Reclamation with the reader drained folds the revision into base.
  bm_.ReclaimVersionsThrough(1);
  EXPECT_EQ(bm_.versioned_revision_count(), 0u);
  EXPECT_EQ(store_.GetPage(id)->data()[0], 'b');
  EXPECT_EQ(FirstByteAt(id, kLatestEpoch), 'b');
}

TEST_F(BufferManagerMvccTest, SecondEpochCopiesFromNewestRevision) {
  const PageId id = bm_.Allocate();
  {
    PageRef ref = bm_.FetchForWrite(id);
    std::memset(ref->data(), 'a', ref->size());
  }
  for (uint64_t w = 1; w <= 3; ++w) {
    bm_.BeginWriteEpoch(w);
    {
      ScopedEpoch scope(w);
      PageRef ref = bm_.FetchForWrite(id);
      // CoW must copy the previous epoch's bytes, not the stale base.
      EXPECT_EQ(ref->data()[0], static_cast<char>('a' + w - 1));
      std::memset(ref->data(), static_cast<char>('a' + w), ref->size());
    }
    bm_.EndWriteEpoch();
  }
  EXPECT_EQ(bm_.stats().pages_cow.load(), 3u);
  for (uint64_t e = 0; e <= 3; ++e) {
    EXPECT_EQ(FirstByteAt(id, e), static_cast<char>('a' + e));
  }
}

TEST_F(BufferManagerMvccTest, BornPagesWriteInPlaceAndFreeImmediately) {
  bm_.BeginWriteEpoch(1);
  PageId born;
  {
    ScopedEpoch scope(1);
    born = bm_.Allocate();
    PageRef ref = bm_.FetchForWrite(born);
    EXPECT_FALSE(ref.versioned());  // In place: no published reader.
    std::memset(ref->data(), 'n', ref->size());
    bm_.Free(born);  // Born in this epoch: the free is immediate.
  }
  bm_.EndWriteEpoch();
  EXPECT_EQ(bm_.pending_free_count(), 0u);
  EXPECT_FALSE(store_.IsLive(born));
  EXPECT_EQ(bm_.stats().pages_cow.load(), 0u);
}

TEST_F(BufferManagerMvccTest, PublishedPageFreeIsDeferredUntilHorizon) {
  const PageId id = bm_.Allocate();
  {
    PageRef ref = bm_.FetchForWrite(id);
    std::memset(ref->data(), 'a', ref->size());
  }
  bm_.BeginWriteEpoch(3);
  {
    ScopedEpoch scope(3);
    bm_.Free(id);
  }
  bm_.EndWriteEpoch();
  // A reader pinned at epoch 2 still walks the page.
  EXPECT_EQ(bm_.pending_free_count(), 1u);
  EXPECT_TRUE(store_.IsLive(id));
  EXPECT_EQ(FirstByteAt(id, 2), 'a');

  // Horizon 2: the oldest pin is still below the death epoch.
  bm_.ReclaimVersionsThrough(2);
  EXPECT_TRUE(store_.IsLive(id));

  // Last pin drained past epoch 3: now the free really happens.
  bm_.ReclaimVersionsThrough(3);
  EXPECT_FALSE(store_.IsLive(id));
  EXPECT_EQ(bm_.pending_free_count(), 0u);
}

// ------------------------------------------------------------- database

class DatabaseMvccTest : public ::testing::Test {
 protected:
  DatabaseMvccTest() {
    cls_ = db_.CreateClass("Item").value();
    EXPECT_TRUE(db_.CreateIndex(PathSpec::ClassHierarchy(
                                    cls_, "price", Value::Kind::kInt))
                    .ok());
  }

  Oid NewItem(int64_t price) {
    const Oid oid = db_.CreateObject(cls_).value();
    EXPECT_TRUE(db_.SetAttr(oid, "price", Value::Int(price)).ok());
    return oid;
  }

  Database::Selection AllPrices() const {
    Database::Selection sel;
    sel.cls = cls_;
    sel.attr = "price";
    sel.lo = Value::Int(0);
    sel.hi = Value::Int(1u << 20);
    return sel;
  }

  Database db_;
  ClassId cls_ = kInvalidClassId;
};

TEST_F(DatabaseMvccTest, EpochsAdvancePerDmlAndCountersFlow) {
  const uint64_t epoch0 = db_.published_epoch();
  const uint64_t published0 = db_.buffers().stats().epochs_published.load();
  const Oid oid = NewItem(10);            // CreateObject + SetAttr = 2 DML.
  ASSERT_TRUE(db_.SetAttr(oid, "price", Value::Int(11)).ok());
  EXPECT_EQ(db_.published_epoch(), epoch0 + 3);
  EXPECT_EQ(db_.buffers().stats().epochs_published.load(), published0 + 3);
  // The DML touched already-published extent/index pages: CoW happened.
  EXPECT_GT(db_.buffers().stats().pages_cow.load(), 0u);
  // No journal: the commit pipeline is inert.
  EXPECT_EQ(db_.buffers().stats().commit_batches.load(), 0u);
  EXPECT_EQ(db_.commit_pipeline().appended_seq(), 0u);
  EXPECT_EQ(db_.active_snapshots(), 0u);
}

TEST_F(DatabaseMvccTest, PagesReadIdenticalWithAndWithoutChainRevisions) {
  for (int i = 0; i < 200; ++i) NewItem(i % 50);

  auto delta_for_select = [&]() {
    const uint64_t before = db_.buffers().stats().pages_read.load();
    Result<Database::SelectResult> r = db_.Select(AllPrices());
    EXPECT_TRUE(r.ok());
    EXPECT_TRUE(r.value().used_index);
    return db_.buffers().stats().pages_read.load() - before;
  };

  // First run: chain revisions from the DML burst are still unreclaimed.
  const uint64_t with_chains = delta_for_select();
  EXPECT_GT(db_.buffers().versioned_revision_count(), 0u);

  // A no-op-shaped DML reclaims (no pins) then re-creates a small chain;
  // checkpointless fold: Save forces everything into base.
  ASSERT_TRUE(db_.Save("/tmp/uindex_mvcc_test_snapshot").ok());
  EXPECT_EQ(db_.buffers().versioned_revision_count(), 0u);
  const uint64_t folded = delta_for_select();

  // The page-read metric counts logical page identity, never version
  // residency: both runs charge exactly the same pages.
  EXPECT_EQ(with_chains, folded);
}

TEST_F(DatabaseMvccTest, ConcurrentReadersSeeOnlyPublishedPrefixes) {
  // Writer appends items (each visible only once its SetAttr commits);
  // readers run range selects the whole time. Insert-only workload, so
  // every snapshot must be a *prefix* of the final creation order — a
  // torn read (object in the index without its extent entry, or a
  // half-split B-tree node) would surface as a non-prefix set or an
  // error. Run under TSan via -DUINDEX_SANITIZE=thread (the CI matrix
  // does).
  constexpr int kItems = 300;
  constexpr int kReaders = 4;

  std::vector<Oid> created(kItems, kInvalidOid);
  std::atomic<bool> done{false};
  std::atomic<int> failures{0};

  std::vector<std::vector<std::vector<Oid>>> observed(kReaders);
  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int t = 0; t < kReaders; ++t) {
    readers.emplace_back([&, t] {
      Session session(&db_);
      size_t last_size = 0;
      while (!done.load(std::memory_order_acquire)) {
        Result<Database::SelectResult> r = session.Select(AllPrices());
        if (!r.ok()) {
          failures.fetch_add(1);
          return;
        }
        std::vector<Oid>& oids = r.value().oids;
        // Snapshots only move forward within one thread.
        if (oids.size() < last_size) failures.fetch_add(1);
        last_size = oids.size();
        observed[t].push_back(std::move(oids));
      }
    });
  }

  for (int i = 0; i < kItems; ++i) {
    const Oid oid = db_.CreateObject(cls_).value();
    created[i] = oid;
    ASSERT_TRUE(db_.SetAttr(oid, "price", Value::Int(i)).ok());
  }
  done.store(true, std::memory_order_release);
  for (std::thread& t : readers) t.join();
  EXPECT_EQ(failures.load(), 0);

  // Every observed result is exactly the first k created oids, for some k.
  std::vector<Oid> sorted_created = created;
  for (const auto& per_thread : observed) {
    for (const std::vector<Oid>& result : per_thread) {
      ASSERT_LE(result.size(), sorted_created.size());
      std::vector<Oid> expected(sorted_created.begin(),
                                sorted_created.begin() + result.size());
      std::sort(expected.begin(), expected.end());
      EXPECT_EQ(result, expected);
    }
  }

  // Readers drained: reclamation on the next write folds every chain.
  NewItem(0);
  EXPECT_EQ(db_.active_snapshots(), 0u);
}

TEST_F(DatabaseMvccTest, DdlUnderConcurrentReadersStaysConsistent) {
  for (int i = 0; i < 100; ++i) NewItem(i);
  std::atomic<bool> done{false};
  std::atomic<int> failures{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 2; ++t) {
    readers.emplace_back([&] {
      while (!done.load(std::memory_order_acquire)) {
        Result<Database::SelectResult> r = db_.Select(AllPrices());
        if (!r.ok() || r.value().oids.size() > 101) failures.fetch_add(1);
      }
    });
  }
  // DDL (exclusive latch: quiesces readers, folds versions, mutates in
  // place) interleaved with DML.
  for (int round = 0; round < 5; ++round) {
    ClassId sub =
        db_.CreateSubclass("Sub" + std::to_string(round), cls_).value();
    const Oid oid = db_.CreateObject(sub).value();
    ASSERT_TRUE(db_.SetAttr(oid, "price", Value::Int(1)).ok());
    ASSERT_TRUE(db_.DeleteObject(oid).ok());
  }
  done.store(true, std::memory_order_release);
  for (std::thread& t : readers) t.join();
  EXPECT_EQ(failures.load(), 0);

  Result<Database::SelectResult> final_r = db_.Select(AllPrices());
  ASSERT_TRUE(final_r.ok());
  EXPECT_EQ(final_r.value().oids.size(), 100u);
}

}  // namespace
}  // namespace uindex
