#include <gtest/gtest.h>

#include <cstdio>

#include "btree/btree.h"
#include "storage/snapshot.h"
#include "util/coding.h"
#include "util/crc32.h"
#include "util/random.h"

namespace uindex {
namespace {

std::string TempPath(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

TEST(Crc32Test, KnownVectorsAndIncrementality) {
  // The classic check value for "123456789".
  EXPECT_EQ(Crc32(Slice("123456789")), 0xCBF43926u);
  EXPECT_EQ(Crc32(Slice("")), 0u);
  // Streaming in two chunks equals one pass.
  const uint32_t once = Crc32(Slice("hello world"));
  const uint32_t twice = Crc32(Slice(" world"), Crc32(Slice("hello")));
  EXPECT_EQ(once, twice);
  EXPECT_NE(Crc32(Slice("hello")), Crc32(Slice("hellp")));
}

TEST(PagerRestoreTest, RestoreRebuildsIdSpace) {
  auto pager = Pager::CreateForRestore(128, 5);
  EXPECT_EQ(pager->live_page_count(), 0u);
  std::string bytes(128, 'a');
  ASSERT_TRUE(pager->RestorePage(3, Slice(bytes)).ok());
  EXPECT_TRUE(pager->IsLive(3));
  EXPECT_FALSE(pager->IsLive(2));
  EXPECT_TRUE(pager->RestorePage(3, Slice(bytes)).IsAlreadyExists());
  EXPECT_TRUE(pager->RestorePage(9, Slice(bytes)).IsInvalidArgument());
  EXPECT_TRUE(
      pager->RestorePage(2, Slice("short")).IsInvalidArgument());
  // Holes are allocatable again.
  const PageId fresh = pager->Allocate();
  EXPECT_NE(fresh, 3u);
  EXPECT_LE(fresh, 5u);
}

TEST(SnapshotTest, BTreeRoundTripsThroughDisk) {
  const std::string path = TempPath("btree.snap");
  PageId saved_root = kInvalidPageId;
  uint64_t saved_size = 0;

  {
    Pager pager(1024);
    BufferManager buffers(&pager);
    BTree tree(&buffers);
    for (int i = 0; i < 5000; ++i) {
      char key[16];
      std::snprintf(key, sizeof(key), "key%06d", i);
      ASSERT_TRUE(tree.Insert(Slice(key), Slice("v")).ok());
    }
    // Delete some to exercise free-list holes in the snapshot.
    for (int i = 0; i < 5000; i += 3) {
      char key[16];
      std::snprintf(key, sizeof(key), "key%06d", i);
      ASSERT_TRUE(tree.Delete(Slice(key)).ok());
    }
    saved_root = tree.root();
    saved_size = tree.size();

    std::string meta;
    PutFixed32(&meta, saved_root);
    PutFixed64(&meta, saved_size);
    ASSERT_TRUE(PagerSnapshot::Save(nullptr, pager, meta, path).ok());
  }

  Result<PagerSnapshot::Loaded> loaded = PagerSnapshot::Load(nullptr, path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded.value().metadata.size(), 12u);
  const PageId root = DecodeFixed32(loaded.value().metadata.data());
  const uint64_t size = DecodeFixed64(loaded.value().metadata.data() + 4);
  EXPECT_EQ(root, saved_root);
  EXPECT_EQ(size, saved_size);

  BufferManager buffers(loaded.value().pager.get());
  BTree tree(&buffers, root, size, BTreeOptions());
  ASSERT_TRUE(tree.Validate().ok());
  EXPECT_EQ(tree.size(), saved_size);
  EXPECT_FALSE(tree.Contains(Slice("key000000")));  // Deleted pre-save.
  EXPECT_TRUE(tree.Contains(Slice("key000001")));
  // The restored tree is fully writable.
  ASSERT_TRUE(tree.Insert(Slice("zzz"), Slice("new")).ok());
  EXPECT_EQ(tree.Get(Slice("zzz")).value(), "new");
  ASSERT_TRUE(tree.Validate().ok());
  std::remove(path.c_str());
}

TEST(SnapshotTest, DetectsCorruption) {
  const std::string path = TempPath("corrupt.snap");
  {
    Pager pager(256);
    BufferManager buffers(&pager);
    BTree tree(&buffers);
    for (int i = 0; i < 100; ++i) {
      std::string key = "k";
      key += std::to_string(i);
      ASSERT_TRUE(tree.Insert(Slice(key), Slice("v")).ok());
    }
    ASSERT_TRUE(PagerSnapshot::Save(nullptr, pager, "meta", path).ok());
  }
  // Flip one byte in the middle of the file.
  {
    std::FILE* f = std::fopen(path.c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    std::fseek(f, 200, SEEK_SET);
    int c = std::fgetc(f);
    std::fseek(f, 200, SEEK_SET);
    std::fputc(c ^ 0xFF, f);
    std::fclose(f);
  }
  EXPECT_TRUE(PagerSnapshot::Load(nullptr, path).status().IsCorruption());
  std::remove(path.c_str());
}

TEST(SnapshotTest, DetectsTruncation) {
  const std::string path = TempPath("trunc.snap");
  {
    Pager pager(256);
    BufferManager buffers(&pager);
    BTree tree(&buffers);
    for (int i = 0; i < 200; ++i) {
      std::string key = "k";
      key += std::to_string(i);
      ASSERT_TRUE(tree.Insert(Slice(key), Slice("v")).ok());
    }
    ASSERT_TRUE(PagerSnapshot::Save(nullptr, pager, "", path).ok());
  }
  // Truncate the file.
  {
    std::FILE* f = std::fopen(path.c_str(), "rb");
    ASSERT_NE(f, nullptr);
    std::fseek(f, 0, SEEK_END);
    const long full = std::ftell(f);
    std::fseek(f, 0, SEEK_SET);
    std::string data(static_cast<size_t>(full), 0);
    ASSERT_EQ(std::fread(data.data(), 1, data.size(), f), data.size());
    std::fclose(f);
    std::FILE* out = std::fopen(path.c_str(), "wb");
    ASSERT_EQ(std::fwrite(data.data(), 1, data.size() / 2, out),
              data.size() / 2);
    std::fclose(out);
  }
  EXPECT_TRUE(PagerSnapshot::Load(nullptr, path).status().IsCorruption());
  std::remove(path.c_str());
}

TEST(SnapshotTest, MissingFileIsNotFound) {
  EXPECT_TRUE(PagerSnapshot::Load(nullptr, TempPath("missing.snap"))
                  .status()
                  .IsNotFound());
}

TEST(SnapshotTest, RejectsBadMagic) {
  const std::string path = TempPath("magic.snap");
  std::FILE* f = std::fopen(path.c_str(), "wb");
  const char junk[64] = "not a snapshot at all.............";
  std::fwrite(junk, 1, sizeof(junk), f);
  std::fclose(f);
  EXPECT_TRUE(PagerSnapshot::Load(nullptr, path).status().IsCorruption());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace uindex
