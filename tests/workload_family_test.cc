// Generator invariants for the roll-up & deep-path workload family
// (ISSUE 10): extended Z* tokens actually occur, U-index answers match
// brute-force enumeration at every roll-up level and for deep-path
// instantiations, churn maintenance equals a fresh rebuild, and the
// Database-façade loaders serve the same answers end to end.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "baselines/pathindex/nested_index.h"
#include "core/index_spec.h"
#include "core/uindex.h"
#include "core/update.h"
#include "db/database.h"
#include "objects/object_store.h"
#include "storage/buffer_manager.h"
#include "storage/pager.h"
#include "workload/path_generator.h"
#include "workload/rollup_generator.h"

namespace uindex {
namespace {

// Small enough for a unit test, still > kTailChars siblings at the year
// and state levels so the Y→Z1 token boundary is crossed.
RollupConfig TinyRollup() {
  RollupConfig cfg;
  cfg.years = 36;
  cfg.months_per_year = 2;
  cfg.days_per_month = 3;
  cfg.countries = 2;
  cfg.states_per_country = 36;
  cfg.cities_per_state = 3;
  cfg.num_events = 3000;
  cfg.num_readings = 3000;
  cfg.num_distinct_values = 50;
  return cfg;
}

DeepPathConfig TinyPaths() {
  DeepPathConfig cfg = DeepPathConfig::Quick();
  cfg.heads = 600;
  cfg.min_level_objects = 24;
  cfg.num_distinct_values = 60;
  cfg.null_ref_fraction = 0.05;
  return cfg;
}

std::vector<Oid> SortedFirstColumn(const QueryResult& r) {
  std::vector<Oid> out;
  out.reserve(r.rows.size());
  for (const auto& row : r.rows) out.push_back(row.front());
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

TEST(RollupGeneratorTest, ExtendedTokensAppearInBothOntologies) {
  RollupWorkload w;
  ASSERT_TRUE(GenerateRollup(TinyRollup(), &w).ok());

  // Year and state levels have 36 > 34 siblings, so the later siblings
  // must carry Z-extended tokens; code order must still follow creation
  // (sibling) order.
  size_t z_coded = 0;
  for (ClassId y : w.time.level1) {
    if (w.coder->CodeOf(y).find('Z') != std::string::npos) ++z_coded;
  }
  EXPECT_GT(z_coded, 0u);
  EXPECT_LT(w.coder->CodeOf(w.time.level1.front()),
            w.coder->CodeOf(w.time.level1.back()));

  z_coded = 0;
  for (const auto& states : w.geo.level2) {
    for (ClassId s : states) {
      if (w.coder->CodeOf(s).find('Z') != std::string::npos) ++z_coded;
    }
  }
  EXPECT_GT(z_coded, 0u);

  // Leaf classes have no subclasses; LeafClassesUnder flattens exactly
  // the generated leaves of a level-1 sub-tree.
  const ClassId year = w.time.level1[30];
  std::vector<ClassId> expected;
  for (const auto& leaves : w.time.leaves[30]) {
    expected.insert(expected.end(), leaves.begin(), leaves.end());
  }
  std::vector<ClassId> got = LeafClassesUnder(w.schema, year);
  std::sort(expected.begin(), expected.end());
  std::sort(got.begin(), got.end());
  EXPECT_EQ(got, expected);
}

TEST(RollupGeneratorTest, UIndexMatchesBruteForceAtEveryLevel) {
  RollupWorkload w;
  ASSERT_TRUE(GenerateRollup(TinyRollup(), &w).ok());

  Pager time_pager(1024), geo_pager(1024);
  BufferManager time_buffers(&time_pager), geo_buffers(&geo_pager);
  UIndex time_index(&time_buffers, &w.schema, w.coder.get(),
                    PathSpec::ClassHierarchy(w.time.root, kRollupValueAttr));
  UIndex geo_index(&geo_buffers, &w.schema, w.coder.get(),
                   PathSpec::ClassHierarchy(w.geo.root, kRollupValueAttr));
  ASSERT_TRUE(time_index.BuildFrom(*w.store).ok());
  ASSERT_TRUE(geo_index.BuildFrom(*w.store).ok());

  struct Probe {
    UIndex* index;
    ClassId cls;
  };
  // One probe per roll-up level in each ontology, deliberately including
  // Z-token classes (year 35, state 35).
  const std::vector<Probe> probes = {
      {&time_index, w.time.root},
      {&time_index, w.time.level1[35]},
      {&time_index, w.time.level2[30][1]},
      {&time_index, w.time.leaves[0][0][1]},
      {&geo_index, w.geo.root},
      {&geo_index, w.geo.level1[1]},
      {&geo_index, w.geo.level2[1][35]},
      {&geo_index, w.geo.leaves[1][35][2]},
  };
  for (const Probe& p : probes) {
    for (const auto& [lo, hi] : std::vector<std::pair<int64_t, int64_t>>{
             {10, 40}, {7, 7}, {0, 49}}) {
      Query q = Query::Range(Value::Int(lo), Value::Int(hi));
      q.With(ClassSelector::Subtree(p.cls), ValueSlot::Wanted());
      Result<QueryResult> r = p.index->Parscan(q);
      ASSERT_TRUE(r.ok()) << r.status().ToString();
      EXPECT_EQ(SortedFirstColumn(r.value()),
                RollupScan(*w.store, p.cls, lo, hi))
          << "class " << w.schema.NameOf(p.cls) << " range [" << lo << ", "
          << hi << "]";
    }
  }
  // Non-vacuous: the root roll-up over the full range sees every fact.
  EXPECT_EQ(RollupScan(*w.store, w.time.root, 0, 49).size(),
            w.events.size());
}

TEST(RollupGeneratorTest, FacadeLoaderServesRollupsThroughSelect) {
  RollupConfig cfg = TinyRollup();
  cfg.num_events = 1500;
  cfg.num_readings = 1500;
  Database db;
  RollupDbInfo info;
  ASSERT_TRUE(LoadRollupIntoDatabase(cfg, &db, &info).ok());
  ASSERT_EQ(db.index_count(), 2u);

  const std::vector<ClassId> probes = {
      info.time.level1[35], info.time.level2[12][1], info.geo.root,
      info.geo.level2[1][35]};
  for (ClassId cls : probes) {
    Database::Selection sel;
    sel.cls = cls;
    sel.with_subclasses = true;
    sel.attr = kRollupValueAttr;
    sel.lo = Value::Int(5);
    sel.hi = Value::Int(25);
    Result<Database::SelectResult> r = db.Select(sel);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_TRUE(r.value().used_index)
        << db.schema().NameOf(cls) << ": " << r.value().index_description;
    EXPECT_EQ(r.value().oids, RollupScan(db.store(), cls, 5, 25));
  }
}

TEST(DeepPathGeneratorTest, ShapesAndReferencesAreConsistent) {
  const DeepPathConfig cfg = TinyPaths();
  DeepPathWorkload w;
  ASSERT_TRUE(GenerateDeepPaths(cfg, &w).ok());

  ASSERT_EQ(w.roots.size(), cfg.hops);
  ASSERT_EQ(w.oids.size(), cfg.hops);
  ASSERT_EQ(w.ref_attrs.size(), cfg.hops - 1u);
  // Populations shrink toward the tail (down to the floor).
  for (size_t i = 0; i + 1 < w.oids.size(); ++i) {
    EXPECT_GE(w.oids[i].size(), w.oids[i + 1].size());
  }
  // Every set reference lands on the next level; tails carry the value.
  for (size_t level = 0; level + 1 < w.oids.size(); ++level) {
    size_t set_refs = 0;
    for (Oid oid : w.oids[level]) {
      Result<Oid> target = w.store->Deref(oid, w.ref_attrs[level]);
      if (!target.ok()) continue;
      ++set_refs;
      const ClassId cls = w.store->Get(target.value()).value()->cls;
      EXPECT_TRUE(w.schema.IsSubclassOf(cls, w.roots[level + 1]));
    }
    EXPECT_GT(set_refs, w.oids[level].size() * 8 / 10);
  }
  for (Oid oid : w.oids.back()) {
    const Value* v = w.store->Get(oid).value()->FindAttr(kPathValueAttr);
    ASSERT_NE(v, nullptr);
    EXPECT_EQ(v->kind(), Value::Kind::kInt);
  }
}

// Full instantiations of `spec` as tail→head rows (the Parscan row
// layout), optionally restricted to attr == `v`.
std::vector<std::vector<Oid>> BruteChains(const ObjectStore& store,
                                          const PathSpec& spec, int64_t lo,
                                          int64_t hi) {
  std::vector<std::vector<Oid>> out;
  const Status s = ForEachInstantiation(
      store, spec, [&](const PathInstantiation& inst) {
        if (inst.attr.AsInt() < lo || inst.attr.AsInt() > hi) {
          return Status::OK();
        }
        out.emplace_back(inst.oids.rbegin(), inst.oids.rend());
        return Status::OK();
      });
  EXPECT_TRUE(s.ok()) << s.ToString();
  std::sort(out.begin(), out.end());
  return out;
}

TEST(DeepPathGeneratorTest, UIndexMatchesBruteForceEnumeration) {
  const DeepPathConfig cfg = TinyPaths();
  DeepPathWorkload w;
  ASSERT_TRUE(GenerateDeepPaths(cfg, &w).ok());

  Pager pager(1024);
  BufferManager buffers(&pager);
  UIndex index(&buffers, &w.schema, w.coder.get(), w.spec());
  ASSERT_TRUE(index.BuildFrom(*w.store).ok());

  const std::vector<std::vector<Oid>> all_chains =
      BruteChains(*w.store, w.spec(), 0, cfg.num_distinct_values);
  ASSERT_FALSE(all_chains.empty());
  // An attribute value that provably has chains (the tail population is
  // small, so a fixed constant may be absent from it).
  const int64_t v0 = w.store->Get(all_chains[0][0])
                         .value()
                         ->FindAttr(kPathValueAttr)
                         ->AsInt();

  // Full-chain retrieval at an exact value and over a range: positions run
  // tail → head in both the query components and the rows.
  for (const auto& [lo, hi] :
       std::vector<std::pair<int64_t, int64_t>>{{v0, v0}, {10, 30}}) {
    Query q = Query::Range(Value::Int(lo), Value::Int(hi));
    for (size_t pos = 0; pos < cfg.hops; ++pos) {
      q.With(ClassSelector::Subtree(w.roots[cfg.hops - 1 - pos]),
             ValueSlot::Wanted());
    }
    Result<QueryResult> r = index.Parscan(q);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    std::vector<std::vector<Oid>> rows = r.value().rows;
    std::sort(rows.begin(), rows.end());
    const std::vector<std::vector<Oid>> expected =
        BruteChains(*w.store, w.spec(), lo, hi);
    ASSERT_FALSE(expected.empty());
    EXPECT_EQ(rows, expected) << "range [" << lo << ", " << hi << "]";
  }

  // Mid-path bound slot: chains through one level-3 object known to sit on
  // a complete chain (null refs may orphan an arbitrary fixed oid).
  const size_t bound_level = 3;
  const Oid bound = all_chains[0][cfg.hops - 1 - bound_level];
  Query q = Query::Range(Value::Int(0),
                         Value::Int(cfg.num_distinct_values));
  for (size_t pos = 0; pos < cfg.hops; ++pos) {
    const size_t level = cfg.hops - 1 - pos;
    q.With(ClassSelector::Subtree(w.roots[level]),
           level == bound_level ? ValueSlot::Bound({bound})
                                : ValueSlot::Wanted());
  }
  Result<QueryResult> r = index.Parscan(q);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  std::vector<std::vector<Oid>> expected;
  for (const auto& chain : all_chains) {
    // Rows are tail→head, so level L sits at row index hops-1-L.
    if (chain[cfg.hops - 1 - bound_level] == bound) {
      expected.push_back(chain);
    }
  }
  std::vector<std::vector<Oid>> rows = r.value().rows;
  std::sort(rows.begin(), rows.end());
  ASSERT_FALSE(expected.empty());
  EXPECT_EQ(rows, expected);
}

TEST(DeepPathGeneratorTest, ChurnMaintenanceMatchesFreshRebuild) {
  const DeepPathConfig cfg = TinyPaths();
  DeepPathWorkload w;
  ASSERT_TRUE(GenerateDeepPaths(cfg, &w).ok());

  Pager pager(1024);
  BufferManager buffers(&pager);
  UIndex maintained(&buffers, &w.schema, w.coder.get(), w.spec());
  ASSERT_TRUE(maintained.BuildFrom(*w.store).ok());
  IndexedDatabase idb(&w.schema, w.store.get());
  idb.RegisterIndex(&maintained);

  Result<size_t> applied = ChurnRereference(&w, &idb, 300, 0xC0DE);
  ASSERT_TRUE(applied.ok()) << applied.status().ToString();
  EXPECT_EQ(applied.value(), 300u);

  Pager fresh_pager(1024);
  BufferManager fresh_buffers(&fresh_pager);
  UIndex rebuilt(&fresh_buffers, &w.schema, w.coder.get(), w.spec());
  ASSERT_TRUE(rebuilt.BuildFrom(*w.store).ok());

  EXPECT_EQ(maintained.entry_count(), rebuilt.entry_count());
  EXPECT_TRUE(maintained.btree().Validate().ok());
  Query q = Query::Range(Value::Int(0), Value::Int(cfg.num_distinct_values));
  for (size_t pos = 0; pos < cfg.hops; ++pos) {
    q.With(ClassSelector::Any(), ValueSlot::Wanted());
  }
  std::vector<std::vector<Oid>> a =
      std::move(maintained.Parscan(q)).value().rows;
  std::vector<std::vector<Oid>> b = std::move(rebuilt.Parscan(q)).value().rows;
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  ASSERT_FALSE(b.empty());
  EXPECT_EQ(a, b);
}

TEST(DeepPathGeneratorTest, FacadeLoaderServesDeepPaths) {
  DeepPathConfig cfg = TinyPaths();
  cfg.heads = 300;
  Database db;
  DeepPathDbInfo info;
  ASSERT_TRUE(LoadDeepPathsIntoDatabase(cfg, &db, &info).ok());
  ASSERT_EQ(db.index_count(), 1u);

  PathSpec spec;
  spec.classes = info.roots;
  spec.ref_attrs = info.ref_attrs;
  spec.indexed_attr = kPathValueAttr;
  spec.value_kind = Value::Kind::kInt;

  // Raw Parscan through the façade equals brute-force enumeration.
  Query q = Query::ExactValue(Value::Int(7));
  for (size_t pos = 0; pos < cfg.hops; ++pos) {
    q.With(ClassSelector::Subtree(info.roots[cfg.hops - 1 - pos]),
           ValueSlot::Wanted());
  }
  Result<QueryResult> r = db.Execute(info.index_pos, q);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  std::vector<std::vector<Oid>> rows = r.value().rows;
  std::sort(rows.begin(), rows.end());
  EXPECT_EQ(rows, BruteChains(db.store(), spec, 7, 7));

  // Head-class Select rides the path index.
  Database::Selection sel;
  sel.cls = info.roots[0];
  sel.with_subclasses = true;
  sel.attr = kPathValueAttr;
  sel.lo = Value::Int(10);
  sel.hi = Value::Int(30);
  Result<Database::SelectResult> s = db.Select(sel);
  ASSERT_TRUE(s.ok()) << s.status().ToString();
  EXPECT_TRUE(s.value().used_index) << s.value().index_description;
  std::vector<Oid> heads;
  for (const auto& chain : BruteChains(db.store(), spec, 10, 30)) {
    heads.push_back(chain.back());
  }
  std::sort(heads.begin(), heads.end());
  heads.erase(std::unique(heads.begin(), heads.end()), heads.end());
  ASSERT_FALSE(heads.empty());
  EXPECT_EQ(s.value().oids, heads);
}

}  // namespace
}  // namespace uindex
