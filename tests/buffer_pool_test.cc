#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <random>
#include <thread>
#include <vector>

#include "storage/buffer_pool.h"
#include "storage/env/fault_env.h"
#include "storage/file_pager.h"
#include "storage/io_stats.h"

namespace uindex {
namespace {

constexpr uint32_t kPage = 128;

class BufferPoolTest : public ::testing::Test {
 protected:
  void Build(size_t capacity, BufferPool::Eviction policy) {
    Result<std::unique_ptr<FilePager>> pager =
        FilePager::Create(&env_, "/data", kPage);
    ASSERT_TRUE(pager.ok()) << pager.status().ToString();
    store_ = std::move(pager).value();
    pool_ =
        std::make_unique<BufferPool>(store_.get(), capacity, policy, &stats_);
  }

  // Allocates a page in the store and stamps it with an id-derived pattern
  // (written straight to the store, bypassing the pool).
  PageId MakePage() {
    const PageId id = store_->Allocate();
    std::vector<char> buf(kPage);
    Stamp(id, buf.data());
    EXPECT_TRUE(store_->WritePage(id, buf.data()).ok());
    return id;
  }

  static void Stamp(PageId id, char* out) {
    for (uint32_t i = 0; i < kPage; ++i) {
      out[i] = static_cast<char>((id * 131 + i) & 0xff);
    }
  }

  static bool Matches(PageId id, const Page& page) {
    std::vector<char> want(kPage);
    Stamp(id, want.data());
    return std::memcmp(page.data(), want.data(), kPage) == 0;
  }

  uint64_t Hits() { return stats_.pool_hits.load(std::memory_order_relaxed); }
  uint64_t Misses() {
    return stats_.pool_misses.load(std::memory_order_relaxed);
  }
  uint64_t Evictions() {
    return stats_.evictions.load(std::memory_order_relaxed);
  }
  uint64_t Writebacks() {
    return stats_.writebacks.load(std::memory_order_relaxed);
  }

  FaultInjectingEnv env_;
  IoStats stats_;
  std::unique_ptr<FilePager> store_;
  std::unique_ptr<BufferPool> pool_;
};

TEST_F(BufferPoolTest, HitAndMissCounting) {
  Build(4, BufferPool::Eviction::kLru);
  const PageId a = MakePage();
  {
    Result<PageRef> ref = pool_->Pin(a, /*mark_dirty=*/false);
    ASSERT_TRUE(ref.ok());
    EXPECT_TRUE(Matches(a, *ref.value()));
  }
  EXPECT_EQ(Misses(), 1u);
  EXPECT_EQ(Hits(), 0u);
  {
    Result<PageRef> ref = pool_->Pin(a, /*mark_dirty=*/false);
    ASSERT_TRUE(ref.ok());
  }
  EXPECT_EQ(Misses(), 1u);
  EXPECT_EQ(Hits(), 1u);
  EXPECT_EQ(pool_->cached_count(), 1u);
}

TEST_F(BufferPoolTest, LruEvictsLeastRecentlyUsed) {
  Build(2, BufferPool::Eviction::kLru);
  const PageId a = MakePage();
  const PageId b = MakePage();
  const PageId c = MakePage();
  { ASSERT_TRUE(pool_->Pin(a, false).ok()); }
  { ASSERT_TRUE(pool_->Pin(b, false).ok()); }
  // Touch a so b is the LRU victim.
  { ASSERT_TRUE(pool_->Pin(a, false).ok()); }
  { ASSERT_TRUE(pool_->Pin(c, false).ok()); }  // Evicts b.
  EXPECT_EQ(Evictions(), 1u);
  EXPECT_LE(pool_->cached_count(), 2u);
  const uint64_t hits_before = Hits();
  { ASSERT_TRUE(pool_->Pin(a, false).ok()); }  // Still resident.
  EXPECT_EQ(Hits(), hits_before + 1);
  const uint64_t misses_before = Misses();
  { ASSERT_TRUE(pool_->Pin(b, false).ok()); }  // Was evicted: re-read.
  EXPECT_EQ(Misses(), misses_before + 1);
}

TEST_F(BufferPoolTest, ClockGivesSecondChance) {
  Build(3, BufferPool::Eviction::kClock);
  const PageId a = MakePage();
  const PageId b = MakePage();
  const PageId c = MakePage();
  const PageId d = MakePage();
  { ASSERT_TRUE(pool_->Pin(a, false).ok()); }
  { ASSERT_TRUE(pool_->Pin(b, false).ok()); }
  { ASSERT_TRUE(pool_->Pin(c, false).ok()); }
  // All ref bits set: the sweep clears them all and wraps to the oldest
  // frame — a is the victim.
  { ASSERT_TRUE(pool_->Pin(d, false).ok()); }
  EXPECT_EQ(Evictions(), 1u);
  uint64_t misses_before = Misses();
  { ASSERT_TRUE(pool_->Pin(b, false).ok()); }  // Hit; sets b's ref bit.
  EXPECT_EQ(Misses(), misses_before);
  // Re-pinning a must evict again. b's fresh ref bit buys it a second
  // chance, so the hand passes b and takes c.
  misses_before = Misses();
  { ASSERT_TRUE(pool_->Pin(a, false).ok()); }
  EXPECT_EQ(Evictions(), 2u);
  EXPECT_EQ(Misses(), misses_before + 1);
  const uint64_t hits_before = Hits();
  { ASSERT_TRUE(pool_->Pin(b, false).ok()); }  // Survived.
  EXPECT_EQ(Hits(), hits_before + 1);
  misses_before = Misses();
  { ASSERT_TRUE(pool_->Pin(c, false).ok()); }  // The actual victim.
  EXPECT_EQ(Misses(), misses_before + 1);
}

TEST_F(BufferPoolTest, EvictionWritesBackDirtyFrames) {
  Build(1, BufferPool::Eviction::kLru);
  const PageId a = MakePage();
  const PageId b = MakePage();
  {
    Result<PageRef> ref = pool_->Pin(a, /*mark_dirty=*/true);
    ASSERT_TRUE(ref.ok());
    std::memset(ref.value()->data(), 0x5A, kPage);
  }
  // Pinning b forces a's dirty frame out through the write-back path.
  { ASSERT_TRUE(pool_->Pin(b, false).ok()); }
  EXPECT_EQ(Evictions(), 1u);
  EXPECT_EQ(Writebacks(), 1u);
  // The store now holds the modified bytes.
  std::vector<char> buf(kPage);
  ASSERT_TRUE(store_->ReadPage(a, buf.data()).ok());
  for (uint32_t i = 0; i < kPage; ++i) {
    ASSERT_EQ(buf[i], static_cast<char>(0x5A)) << i;
  }
  // And re-pinning serves them.
  Result<PageRef> again = pool_->Pin(a, false);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again.value()->data()[0], static_cast<char>(0x5A));
}

TEST_F(BufferPoolTest, CleanEvictionSkipsWriteBack) {
  Build(1, BufferPool::Eviction::kLru);
  const PageId a = MakePage();
  const PageId b = MakePage();
  { ASSERT_TRUE(pool_->Pin(a, false).ok()); }
  { ASSERT_TRUE(pool_->Pin(b, false).ok()); }
  EXPECT_EQ(Evictions(), 1u);
  EXPECT_EQ(Writebacks(), 0u);
}

TEST_F(BufferPoolTest, AllPinnedFailsResourceExhausted) {
  Build(2, BufferPool::Eviction::kLru);
  const PageId a = MakePage();
  const PageId b = MakePage();
  const PageId c = MakePage();
  Result<PageRef> ra = pool_->Pin(a, false);
  Result<PageRef> rb = pool_->Pin(b, false);
  ASSERT_TRUE(ra.ok());
  ASSERT_TRUE(rb.ok());
  Result<PageRef> rc = pool_->Pin(c, false);
  ASSERT_FALSE(rc.ok());
  EXPECT_EQ(rc.status().code(), Status::Code::kResourceExhausted);
  // Releasing one pin unblocks the pool.
  ra = Result<PageRef>(PageRef());
  rc = pool_->Pin(c, false);
  EXPECT_TRUE(rc.ok());
}

TEST_F(BufferPoolTest, PinnedFramesAreNeverVictims) {
  Build(2, BufferPool::Eviction::kLru);
  const PageId a = MakePage();
  const PageId b = MakePage();
  const PageId c = MakePage();
  Result<PageRef> ra = pool_->Pin(a, false);
  ASSERT_TRUE(ra.ok());
  { ASSERT_TRUE(pool_->Pin(b, false).ok()); }
  // a is older than b but pinned: the victim must be b.
  { ASSERT_TRUE(pool_->Pin(c, false).ok()); }
  EXPECT_TRUE(Matches(a, *ra.value())) << "pinned frame was recycled";
  const uint64_t hits_before = Hits();
  { ASSERT_TRUE(pool_->Pin(a, false).ok()); }
  EXPECT_EQ(Hits(), hits_before + 1);
}

TEST_F(BufferPoolTest, PinNewSkipsStoreRead) {
  Build(2, BufferPool::Eviction::kLru);
  // Allocate + write stale bytes straight to the store, then free and
  // recycle the id: PinNew must hand out zeros, not the stale bytes.
  const PageId a = MakePage();
  store_->Free(a);
  const PageId recycled = store_->Allocate();
  ASSERT_EQ(recycled, a);
  {
    PageRef ref = pool_->PinNew(recycled);
    ASSERT_NE(ref, nullptr);
    for (uint32_t i = 0; i < kPage; ++i) {
      ASSERT_EQ(ref->data()[i], '\0') << i;
    }
  }
  // The zeroed frame is dirty: eviction writes it back over the stale
  // bytes.
  const PageId b = MakePage();
  const PageId c = MakePage();
  { ASSERT_TRUE(pool_->Pin(b, false).ok()); }
  { ASSERT_TRUE(pool_->Pin(c, false).ok()); }
  std::vector<char> buf(kPage);
  ASSERT_TRUE(store_->ReadPage(recycled, buf.data()).ok());
  for (uint32_t i = 0; i < kPage; ++i) EXPECT_EQ(buf[i], '\0') << i;
}

TEST_F(BufferPoolTest, DiscardWhilePinnedMakesZombie) {
  Build(4, BufferPool::Eviction::kLru);
  const PageId a = MakePage();
  Result<PageRef> held = pool_->Pin(a, /*mark_dirty=*/true);
  ASSERT_TRUE(held.ok());
  std::memset(held.value()->data(), 0x77, kPage);

  pool_->Discard(a);  // Page freed while a reference is still out.

  // The old bytes stay valid for the holder...
  EXPECT_EQ(held.value()->data()[0], static_cast<char>(0x77));
  // ...but the id is no longer served from the pool: a fresh pin re-reads
  // the store (which still has the original stamp — Discard never writes
  // back).
  {
    Result<PageRef> fresh = pool_->Pin(a, false);
    ASSERT_TRUE(fresh.ok());
    EXPECT_TRUE(Matches(a, *fresh.value()));
    EXPECT_NE(fresh.value().get(), held.value().get());
  }
  // Releasing the zombie recycles its frame without touching the store.
  held = Result<PageRef>(PageRef());
  std::vector<char> buf(kPage);
  ASSERT_TRUE(store_->ReadPage(a, buf.data()).ok());
  EXPECT_NE(buf[0], static_cast<char>(0x77));
}

TEST_F(BufferPoolTest, FlushWritesDirtyFramesAndSyncs) {
  Build(8, BufferPool::Eviction::kLru);
  std::vector<PageId> ids;
  for (int i = 0; i < 4; ++i) ids.push_back(MakePage());
  for (const PageId id : ids) {
    Result<PageRef> ref = pool_->Pin(id, /*mark_dirty=*/true);
    ASSERT_TRUE(ref.ok());
    std::memset(ref.value()->data(), static_cast<int>(id), kPage);
  }
  ASSERT_TRUE(pool_->Flush(/*sync=*/true).ok());
  EXPECT_EQ(Writebacks(), 4u);
  EXPECT_EQ(Evictions(), 0u) << "flush must not evict";
  std::vector<char> buf(kPage);
  for (const PageId id : ids) {
    ASSERT_TRUE(store_->ReadPage(id, buf.data()).ok());
    EXPECT_EQ(buf[0], static_cast<char>(id));
  }
  // A second flush has nothing dirty left.
  ASSERT_TRUE(pool_->Flush(/*sync=*/false).ok());
  EXPECT_EQ(Writebacks(), 4u);
}

TEST_F(BufferPoolTest, WriteBackFailureKeepsFrameDirty) {
  Build(1, BufferPool::Eviction::kLru);
  const PageId a = MakePage();
  const PageId b = MakePage();
  {
    Result<PageRef> ref = pool_->Pin(a, /*mark_dirty=*/true);
    ASSERT_TRUE(ref.ok());
    std::memset(ref.value()->data(), 0x42, kPage);
  }
  // The next positioned write (the eviction's write-back) fails.
  env_.FailKthOpOfKind(FaultInjectingEnv::OpKind::kWriteAt, 1);
  Result<PageRef> rb = pool_->Pin(b, false);
  EXPECT_FALSE(rb.ok()) << "eviction with failed write-back must not ack";
  // The dirty data was not lost: a retry (fault cleared) succeeds and the
  // bytes land.
  rb = pool_->Pin(b, false);
  ASSERT_TRUE(rb.ok());
  std::vector<char> buf(kPage);
  ASSERT_TRUE(store_->ReadPage(a, buf.data()).ok());
  EXPECT_EQ(buf[0], static_cast<char>(0x42));
}

TEST_F(BufferPoolTest, ConcurrentPinStress) {
  constexpr size_t kPages = 64;
  constexpr size_t kThreads = 4;
  constexpr int kOpsPerThread = 500;
  Build(8, BufferPool::Eviction::kLru);
  std::vector<PageId> ids;
  for (size_t i = 0; i < kPages; ++i) ids.push_back(MakePage());

  std::vector<std::thread> threads;
  std::vector<int> failures(kThreads, 0);
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      std::mt19937 rng(static_cast<unsigned>(t) * 2654435761u + 1);
      for (int i = 0; i < kOpsPerThread; ++i) {
        const PageId id = ids[rng() % ids.size()];
        Result<PageRef> ref = pool_->Pin(id, /*mark_dirty=*/false);
        if (!ref.ok() || !Matches(id, *ref.value())) {
          ++failures[t];
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  for (size_t t = 0; t < kThreads; ++t) {
    EXPECT_EQ(failures[t], 0) << "thread " << t;
  }
  EXPECT_LE(pool_->cached_count(), 8u);
  EXPECT_EQ(Hits() + Misses(), kThreads * kOpsPerThread);
}

}  // namespace
}  // namespace uindex
