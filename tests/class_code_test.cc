#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "schema/class_code.h"
#include "util/random.h"
#include "util/slice.h"

namespace uindex {
namespace {

TEST(TokenTest, FirstTokensMatchPaperAlphabet) {
  EXPECT_EQ(TokenForIndex(0), "1");
  EXPECT_EQ(TokenForIndex(8), "9");
  EXPECT_EQ(TokenForIndex(9), "A");
  EXPECT_EQ(TokenForIndex(10), "B");
  EXPECT_EQ(TokenForIndex(33), "Y");
  EXPECT_EQ(TokenForIndex(34), "Z1");
  EXPECT_EQ(TokenForIndex(67), "ZY");
  EXPECT_EQ(TokenForIndex(68), "ZZ1");
}

TEST(TokenTest, OrderMatchesIndexOrder) {
  std::string prev = TokenForIndex(0);
  for (size_t i = 1; i < 500; ++i) {
    const std::string token = TokenForIndex(i);
    EXPECT_TRUE(Slice(prev) < Slice(token))
        << prev << " !< " << token << " at " << i;
    prev = token;
  }
}

TEST(TokenTest, NoTokenIsPrefixOfAnother) {
  // Unique decodability: tokens are Z* followed by one non-Z character.
  for (size_t i = 0; i < 120; ++i) {
    for (size_t j = 0; j < 120; ++j) {
      if (i == j) continue;
      const std::string a = TokenForIndex(i);
      const std::string b = TokenForIndex(j);
      EXPECT_FALSE(Slice(b).StartsWith(Slice(a)))
          << a << " is a prefix of " << b;
    }
  }
}

TEST(TokenTest, FirstTokenLengthDecodesStreams) {
  EXPECT_EQ(FirstTokenLength(Slice("5AB")), 1u);
  EXPECT_EQ(FirstTokenLength(Slice("Z1AB")), 2u);
  EXPECT_EQ(FirstTokenLength(Slice("ZZ9")), 3u);
  EXPECT_EQ(FirstTokenLength(Slice("")), 0u);
  EXPECT_EQ(FirstTokenLength(Slice("Z")), 0u);   // Truncated.
  EXPECT_EQ(FirstTokenLength(Slice("$x")), 0u);  // Not a token char.
}

TEST(ClassCodeTest, SeparatorSortsBelowAllTokenCharacters) {
  // The paper's note: '$' is lower lexicographically than 'A' (and '1').
  EXPECT_LT(kCodeOidSeparator, '1');
  EXPECT_LT(kCodeOidSeparator, 'A');
  // Hence a class's own entries sort before its first subclass's entries:
  // "C5$..." < "C5A$...".
  EXPECT_TRUE(Slice("C5$xxxx") < Slice("C5A$xxxx"));
}

TEST(ClassCodeTest, DescendantIsPrefixRelation) {
  EXPECT_TRUE(CodeIsSelfOrDescendant(Slice("C5A"), Slice("C5")));
  EXPECT_TRUE(CodeIsSelfOrDescendant(Slice("C5AA"), Slice("C5")));
  EXPECT_TRUE(CodeIsSelfOrDescendant(Slice("C5"), Slice("C5")));
  EXPECT_FALSE(CodeIsSelfOrDescendant(Slice("C5"), Slice("C5A")));
  EXPECT_FALSE(CodeIsSelfOrDescendant(Slice("C6"), Slice("C5")));
}

TEST(ClassCodeTest, SubtreeUpperBoundCoversDescendantsOnly) {
  EXPECT_EQ(SubtreeUpperBound(Slice("C5A")), "C5B");
  EXPECT_EQ(SubtreeUpperBound(Slice("C5")), "C6");
  // All descendants fall inside [code, bound); siblings fall outside.
  const std::string bound = SubtreeUpperBound(Slice("C5A"));
  EXPECT_TRUE(Slice("C5A") < Slice(bound));
  EXPECT_TRUE(Slice("C5AA$") < Slice(bound));
  EXPECT_TRUE(Slice("C5AZ3$") < Slice(bound));
  EXPECT_FALSE(Slice("C5B$") < Slice(bound));
}

TEST(ClassCodeTest, PreorderPropertyAcrossGeneratedTree) {
  // Build codes for a small synthetic tree: root "C1" with children and
  // grandchildren, and check lexicographic order == preorder.
  std::vector<std::string> preorder;
  preorder.push_back("C1");
  for (size_t c = 0; c < 5; ++c) {
    const std::string child = "C1" + TokenForIndex(9 + c);
    preorder.push_back(child);
    for (size_t g = 0; g < 3; ++g) {
      preorder.push_back(child + TokenForIndex(9 + g));
    }
  }
  for (size_t i = 1; i < preorder.size(); ++i) {
    EXPECT_TRUE(Slice(preorder[i - 1]) < Slice(preorder[i]))
        << preorder[i - 1] << " !< " << preorder[i];
  }
}

// --- Z*-extended token region (indices >= 34), the part fig-scale schemas
// --- never reach but >34-sibling roll-up ontologies depend on.

TEST(TokenFuzzTest, RoundTripHoldsDeepIntoTheExtendedRegion) {
  // Exhaustive through four 'Z' extensions, then random far beyond.
  for (size_t i = 0; i < 34 * 5; ++i) {
    const std::string token = TokenForIndex(i);
    EXPECT_EQ(IndexForToken(Slice(token)), i) << "token " << token;
    EXPECT_EQ(FirstTokenLength(Slice(token)), token.size());
  }
  Random rng(20260807);
  for (int trial = 0; trial < 2000; ++trial) {
    const size_t i = static_cast<size_t>(rng.Uniform(1u << 20));
    const std::string token = TokenForIndex(i);
    EXPECT_EQ(IndexForToken(Slice(token)), i) << "token " << token;
    EXPECT_EQ(FirstTokenLength(Slice(token)), token.size());
  }
}

TEST(TokenFuzzTest, OrderingIsMonotoneAcrossEveryZBoundary) {
  // Adjacent pairs around each Z-run growth point: ...Y -> Z...1.
  for (size_t run = 0; run < 6; ++run) {
    const size_t boundary = 34 * (run + 1);
    const std::string last = TokenForIndex(boundary - 1);
    const std::string first = TokenForIndex(boundary);
    EXPECT_TRUE(Slice(last) < Slice(first)) << last << " !< " << first;
    EXPECT_FALSE(Slice(first).StartsWith(Slice(last)));
    EXPECT_FALSE(Slice(last).StartsWith(Slice(first)));
  }
  // Random pairs: index order == lexicographic order, both directions.
  Random rng(42);
  for (int trial = 0; trial < 4000; ++trial) {
    const size_t a = static_cast<size_t>(rng.Uniform(4096));
    const size_t b = static_cast<size_t>(rng.Uniform(4096));
    if (a == b) continue;
    const std::string ta = TokenForIndex(a);
    const std::string tb = TokenForIndex(b);
    EXPECT_EQ(a < b, Slice(ta) < Slice(tb))
        << ta << " vs " << tb << " at " << a << "," << b;
  }
}

TEST(TokenFuzzTest, MalformedTokensAreRejected) {
  EXPECT_EQ(IndexForToken(Slice("")), SIZE_MAX);
  EXPECT_EQ(IndexForToken(Slice("Z")), SIZE_MAX);     // Truncated Z-run.
  EXPECT_EQ(IndexForToken(Slice("ZZ")), SIZE_MAX);
  EXPECT_EQ(IndexForToken(Slice("0")), SIZE_MAX);     // '0' never used.
  EXPECT_EQ(IndexForToken(Slice("A1")), SIZE_MAX);    // Trailing garbage.
  EXPECT_EQ(IndexForToken(Slice("Z1A")), SIZE_MAX);
  EXPECT_EQ(IndexForToken(Slice("$")), SIZE_MAX);
  EXPECT_EQ(IndexForToken(Slice("a")), SIZE_MAX);     // Lowercase.
}

TEST(TokenFuzzTest, ConcatenatedCodesDecodeUniquely) {
  // A code is a token concatenation; FirstTokenLength must split any
  // random concatenation back into exactly the tokens that built it.
  Random rng(7);
  for (int trial = 0; trial < 1000; ++trial) {
    const size_t count = 1 + static_cast<size_t>(rng.Uniform(6));
    std::vector<size_t> indices;
    std::string code;
    for (size_t t = 0; t < count; ++t) {
      // Mix small and Z*-extended tokens.
      const size_t i = rng.Bernoulli(0.5)
                           ? static_cast<size_t>(rng.Uniform(34))
                           : 34 + static_cast<size_t>(rng.Uniform(200));
      indices.push_back(i);
      code += TokenForIndex(i);
    }
    size_t pos = 0;
    for (size_t t = 0; t < count; ++t) {
      const Slice rest(code.data() + pos, code.size() - pos);
      const size_t len = FirstTokenLength(rest);
      ASSERT_GT(len, 0u) << code << " at " << pos;
      EXPECT_EQ(IndexForToken(Slice(code.data() + pos, len)), indices[t]);
      pos += len;
    }
    EXPECT_EQ(pos, code.size());
  }
}

// --- SubtreeUpperBound / CodeIsSelfOrDescendant agreement: every
// --- descendant's code lies in [code, bound); no sibling's ever does.

namespace {

// A random well-formed class code: 'C' plus `depth` tokens, biased toward
// the Z*-extended region and the ...Y / ...Z boundary tokens.
std::string RandomCode(Random& rng, size_t depth) {
  std::string code = "C";
  for (size_t d = 0; d < depth; ++d) {
    size_t i;
    switch (rng.Uniform(4)) {
      case 0: i = rng.Uniform(34); break;            // Single char.
      case 1: i = 33; break;                         // 'Y' boundary.
      case 2: i = 34 + rng.Uniform(34); break;       // 'Z?' region.
      default: i = rng.Uniform(300); break;          // Anywhere.
    }
    code += TokenForIndex(i);
  }
  return code;
}

}  // namespace

TEST(SubtreeBoundPropertyTest, DescendantsInsideSiblingsOutside) {
  Random rng(19960229);
  for (int trial = 0; trial < 3000; ++trial) {
    const std::string code = RandomCode(rng, 1 + rng.Uniform(4));
    const std::string bound = SubtreeUpperBound(Slice(code));

    // The code itself and any token extension are descendants and must
    // fall inside [code, bound); agreement with the prefix test.
    EXPECT_TRUE(CodeIsSelfOrDescendant(Slice(code), Slice(code)));
    EXPECT_TRUE(!(Slice(code) < Slice(code)) && Slice(code) < Slice(bound));
    for (int d = 0; d < 4; ++d) {
      const std::string desc =
          code + TokenForIndex(9 + rng.Uniform(300));
      EXPECT_TRUE(CodeIsSelfOrDescendant(Slice(desc), Slice(code)));
      EXPECT_TRUE(Slice(code) < Slice(desc) && Slice(desc) < Slice(bound))
          << desc << " outside [" << code << ", " << bound << ")";
      // Entry keys carry the '$' separator; they must stay inside too.
      const std::string entry = desc + kCodeOidSeparator + "oid";
      EXPECT_TRUE(Slice(entry) < Slice(bound));
    }

    // A sibling replaces the last token with a different one; whatever the
    // token indices, the sibling and its descendants stay outside.
    size_t last_start = 1, pos = 1;
    while (pos < code.size()) {
      const size_t len =
          FirstTokenLength(Slice(code.data() + pos, code.size() - pos));
      ASSERT_GT(len, 0u);
      last_start = pos;
      pos += len;
    }
    const std::string parent = code.substr(0, last_start);
    const size_t last_index =
        IndexForToken(Slice(code.data() + last_start,
                            code.size() - last_start));
    ASSERT_NE(last_index, SIZE_MAX);
    for (int s = 0; s < 4; ++s) {
      size_t sibling_index = rng.Uniform(300);
      if (sibling_index == last_index) sibling_index += 1;
      const std::string sibling = parent + TokenForIndex(sibling_index);
      EXPECT_FALSE(CodeIsSelfOrDescendant(Slice(sibling), Slice(code)));
      const bool inside =
          !(Slice(sibling) < Slice(code)) && Slice(sibling) < Slice(bound);
      EXPECT_FALSE(inside) << "sibling " << sibling << " inside ["
                           << code << ", " << bound << ")";
      // Including the sibling's own entries and descendants.
      const std::string deeper = sibling + TokenForIndex(9);
      const bool deeper_inside =
          !(Slice(deeper) < Slice(code)) && Slice(deeper) < Slice(bound);
      EXPECT_FALSE(deeper_inside) << deeper;
    }
  }
}

TEST(SubtreeBoundPropertyTest, YToZBoundaryNeighborsStaySeparated) {
  // The sharpest corner: a code ending in 'Y' (index 33) has bound
  // ...'Z'; its next sibling's token starts with 'Z' ("Z1"). The sibling
  // must sort at or after the bound, never inside it.
  const std::string parent = "C5";
  const std::string y_child = parent + TokenForIndex(33);   // "C5Y"
  const std::string z_child = parent + TokenForIndex(34);   // "C5Z1"
  const std::string bound = SubtreeUpperBound(Slice(y_child));
  EXPECT_EQ(bound, "C5Z");
  EXPECT_FALSE(Slice(z_child) < Slice(bound));
  EXPECT_FALSE(CodeIsSelfOrDescendant(Slice(z_child), Slice(y_child)));
  // Descendants of the Y child (arbitrarily deep, Z-heavy) stay inside.
  EXPECT_TRUE(Slice(y_child + "ZZ9" + "$") < Slice(bound));
  // And the same at a deeper Z-run: "...ZY" vs "...ZZ1".
  const std::string zy = parent + TokenForIndex(67);        // "C5ZY"
  const std::string zz1 = parent + TokenForIndex(68);       // "C5ZZ1"
  const std::string zy_bound = SubtreeUpperBound(Slice(zy));
  EXPECT_FALSE(Slice(zz1) < Slice(zy_bound));
  EXPECT_TRUE(Slice(zy + TokenForIndex(9)) < Slice(zy_bound));
}

}  // namespace
}  // namespace uindex
