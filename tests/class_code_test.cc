#include <gtest/gtest.h>

#include "schema/class_code.h"
#include "util/slice.h"

namespace uindex {
namespace {

TEST(TokenTest, FirstTokensMatchPaperAlphabet) {
  EXPECT_EQ(TokenForIndex(0), "1");
  EXPECT_EQ(TokenForIndex(8), "9");
  EXPECT_EQ(TokenForIndex(9), "A");
  EXPECT_EQ(TokenForIndex(10), "B");
  EXPECT_EQ(TokenForIndex(33), "Y");
  EXPECT_EQ(TokenForIndex(34), "Z1");
  EXPECT_EQ(TokenForIndex(67), "ZY");
  EXPECT_EQ(TokenForIndex(68), "ZZ1");
}

TEST(TokenTest, OrderMatchesIndexOrder) {
  std::string prev = TokenForIndex(0);
  for (size_t i = 1; i < 500; ++i) {
    const std::string token = TokenForIndex(i);
    EXPECT_TRUE(Slice(prev) < Slice(token))
        << prev << " !< " << token << " at " << i;
    prev = token;
  }
}

TEST(TokenTest, NoTokenIsPrefixOfAnother) {
  // Unique decodability: tokens are Z* followed by one non-Z character.
  for (size_t i = 0; i < 120; ++i) {
    for (size_t j = 0; j < 120; ++j) {
      if (i == j) continue;
      const std::string a = TokenForIndex(i);
      const std::string b = TokenForIndex(j);
      EXPECT_FALSE(Slice(b).StartsWith(Slice(a)))
          << a << " is a prefix of " << b;
    }
  }
}

TEST(TokenTest, FirstTokenLengthDecodesStreams) {
  EXPECT_EQ(FirstTokenLength(Slice("5AB")), 1u);
  EXPECT_EQ(FirstTokenLength(Slice("Z1AB")), 2u);
  EXPECT_EQ(FirstTokenLength(Slice("ZZ9")), 3u);
  EXPECT_EQ(FirstTokenLength(Slice("")), 0u);
  EXPECT_EQ(FirstTokenLength(Slice("Z")), 0u);   // Truncated.
  EXPECT_EQ(FirstTokenLength(Slice("$x")), 0u);  // Not a token char.
}

TEST(ClassCodeTest, SeparatorSortsBelowAllTokenCharacters) {
  // The paper's note: '$' is lower lexicographically than 'A' (and '1').
  EXPECT_LT(kCodeOidSeparator, '1');
  EXPECT_LT(kCodeOidSeparator, 'A');
  // Hence a class's own entries sort before its first subclass's entries:
  // "C5$..." < "C5A$...".
  EXPECT_TRUE(Slice("C5$xxxx") < Slice("C5A$xxxx"));
}

TEST(ClassCodeTest, DescendantIsPrefixRelation) {
  EXPECT_TRUE(CodeIsSelfOrDescendant(Slice("C5A"), Slice("C5")));
  EXPECT_TRUE(CodeIsSelfOrDescendant(Slice("C5AA"), Slice("C5")));
  EXPECT_TRUE(CodeIsSelfOrDescendant(Slice("C5"), Slice("C5")));
  EXPECT_FALSE(CodeIsSelfOrDescendant(Slice("C5"), Slice("C5A")));
  EXPECT_FALSE(CodeIsSelfOrDescendant(Slice("C6"), Slice("C5")));
}

TEST(ClassCodeTest, SubtreeUpperBoundCoversDescendantsOnly) {
  EXPECT_EQ(SubtreeUpperBound(Slice("C5A")), "C5B");
  EXPECT_EQ(SubtreeUpperBound(Slice("C5")), "C6");
  // All descendants fall inside [code, bound); siblings fall outside.
  const std::string bound = SubtreeUpperBound(Slice("C5A"));
  EXPECT_TRUE(Slice("C5A") < Slice(bound));
  EXPECT_TRUE(Slice("C5AA$") < Slice(bound));
  EXPECT_TRUE(Slice("C5AZ3$") < Slice(bound));
  EXPECT_FALSE(Slice("C5B$") < Slice(bound));
}

TEST(ClassCodeTest, PreorderPropertyAcrossGeneratedTree) {
  // Build codes for a small synthetic tree: root "C1" with children and
  // grandchildren, and check lexicographic order == preorder.
  std::vector<std::string> preorder;
  preorder.push_back("C1");
  for (size_t c = 0; c < 5; ++c) {
    const std::string child = "C1" + TokenForIndex(9 + c);
    preorder.push_back(child);
    for (size_t g = 0; g < 3; ++g) {
      preorder.push_back(child + TokenForIndex(9 + g));
    }
  }
  for (size_t i = 1; i < preorder.size(); ++i) {
    EXPECT_TRUE(Slice(preorder[i - 1]) < Slice(preorder[i]))
        << preorder[i - 1] << " !< " << preorder[i];
  }
}

}  // namespace
}  // namespace uindex
