#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/uindex.h"
#include "exec/parallel_parscan.h"
#include "exec/thread_pool.h"
#include "storage/buffer_manager.h"
#include "workload/database_generator.h"

namespace uindex {
namespace {

// The determinism contract of exec::ParallelParscan: for every Table-1
// query shape (full/sub-tree class hierarchies, value sets, exclusions,
// partial paths, combined class+path) the parallel scan returns
// byte-identical result sets, identical entries-scanned counts, and an
// identical page-read total as the serial Algorithm 1, at every pool size.
//
// Runs on a scaled-down Table-1 database (same schema and query set; fewer
// vehicles) so the whole matrix stays fast in unit-test time.
class ParallelDeterminismTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    cfg_ = new PaperDatabaseConfig();
    cfg_->num_vehicles = 3000;
    db_ = new PaperDatabase();
    ASSERT_TRUE(GeneratePaperDatabase(*cfg_, db_).ok());

    pager_ = new Pager(1024);
    buffers_ = new BufferManager(pager_);
    BTreeOptions options;
    options.max_entries_per_node = 10;

    const PaperSchema& ids = db_->ids;
    color_ = new UIndex(buffers_, &ids.schema, db_->coder.get(),
                        PathSpec::ClassHierarchy(ids.vehicle, "Color",
                                                 Value::Kind::kString),
                        options);
    ASSERT_TRUE(color_->BuildFrom(*db_->store).ok());

    PathSpec age_spec;
    age_spec.classes = {ids.vehicle, ids.company, ids.employee};
    age_spec.ref_attrs = {"manufactured-by", "president"};
    age_spec.indexed_attr = "Age";
    age_spec.value_kind = Value::Kind::kInt;
    age_ = new UIndex(buffers_, &ids.schema, db_->coder.get(), age_spec,
                      options);
    ASSERT_TRUE(age_->BuildFrom(*db_->store).ok());
  }

  static void TearDownTestSuite() {
    delete age_;
    delete color_;
    delete buffers_;
    delete pager_;
    delete db_;
    delete cfg_;
    age_ = nullptr;
    color_ = nullptr;
    buffers_ = nullptr;
    pager_ = nullptr;
    db_ = nullptr;
    cfg_ = nullptr;
  }

  struct NamedQuery {
    std::string id;
    Query query;
    const UIndex* index;
  };

  // The full Table-1 query set (bench/bench_table1.cc, §5 queries 1-6b).
  static std::vector<NamedQuery> Table1Queries() {
    const PaperSchema& ids = db_->ids;
    const Value red = Value::Str("Red");
    const Value blue = Value::Str("Blue");
    const Value green = Value::Str("Green");

    auto color_query = [](std::vector<Value> colors, ClassSelector sel) {
      Query q = colors.empty()
                    ? Query::AnyOf({Value::Str("Black"), Value::Str("Blue"),
                                    Value::Str("Green"), Value::Str("Red"),
                                    Value::Str("White"),
                                    Value::Str("Yellow")})
                    : Query::AnyOf(std::move(colors));
      q.With(std::move(sel), ValueSlot::Wanted());
      return q;
    };

    ClassSelector buses = ClassSelector::Subtree(ids.bus);
    ClassSelector passenger = ClassSelector::Subtree(ids.passenger_bus);
    ClassSelector autos = ClassSelector::Subtree(ids.automobile);
    ClassSelector compact_or_service;
    compact_or_service.include.push_back({ids.compact_automobile, true});
    compact_or_service.include.push_back({ids.service_auto, true});

    Query q5a = Query::ExactValue(Value::Int(50));
    q5a.With(ClassSelector::Exactly(ids.employee))
        .With(ClassSelector::Subtree(ids.company), ValueSlot::Wanted());
    Query q5b = Query::Range(Value::Int(51), Value::Int(70));
    q5b.With(ClassSelector::Exactly(ids.employee))
        .With(ClassSelector::Subtree(ids.company), ValueSlot::Wanted());
    Query q6a = Query::Range(Value::Int(51), Value::Int(70));
    q6a.With(ClassSelector::Exactly(ids.employee))
        .With(ClassSelector::Subtree(ids.auto_company))
        .With(ClassSelector::Subtree(ids.automobile), ValueSlot::Wanted());
    Query q6b = Query::Range(Value::Int(51), Value::Int(70));
    q6b.With(ClassSelector::Exactly(ids.employee))
        .With(ClassSelector::Subtree(ids.auto_company))
        .With(ClassSelector::Subtree(ids.truck), ValueSlot::Wanted());

    return {
        {"1", color_query({}, buses), color_},
        {"1a", color_query({red}, buses), color_},
        {"1b", color_query({red, blue}, buses), color_},
        {"1c", color_query({red, blue, green}, buses), color_},
        {"2", color_query({}, passenger), color_},
        {"2a", color_query({red}, passenger), color_},
        {"2b", color_query({red, blue}, passenger), color_},
        {"2c", color_query({red, blue, green}, passenger), color_},
        {"3", color_query({}, autos), color_},
        {"3a", color_query({red}, autos), color_},
        {"3b", color_query({red, blue}, autos), color_},
        {"3c", color_query({red, blue, green}, autos), color_},
        {"4", color_query({}, compact_or_service), color_},
        {"4a", color_query({red}, compact_or_service), color_},
        {"4b", color_query({red, blue}, compact_or_service), color_},
        {"4c", color_query({red, blue, green}, compact_or_service), color_},
        {"5a", q5a, age_},
        {"5b", q5b, age_},
        {"6a", q6a, age_},
        {"6b", q6b, age_},
    };
  }

  static PaperDatabaseConfig* cfg_;
  static PaperDatabase* db_;
  static Pager* pager_;
  static BufferManager* buffers_;
  static UIndex* color_;
  static UIndex* age_;
};

PaperDatabaseConfig* ParallelDeterminismTest::cfg_ = nullptr;
PaperDatabase* ParallelDeterminismTest::db_ = nullptr;
Pager* ParallelDeterminismTest::pager_ = nullptr;
BufferManager* ParallelDeterminismTest::buffers_ = nullptr;
UIndex* ParallelDeterminismTest::color_ = nullptr;
UIndex* ParallelDeterminismTest::age_ = nullptr;

TEST_F(ParallelDeterminismTest, AllTable1QueriesAtAllPoolSizes) {
  for (const size_t threads : {2u, 4u, 8u}) {
    exec::ThreadPool pool(threads);
    for (const NamedQuery& nq : Table1Queries()) {
      SCOPED_TRACE("query " + nq.id + " threads=" +
                   std::to_string(threads));

      QueryCost serial_cost(buffers_);
      Result<QueryResult> serial = nq.index->Parscan(nq.query);
      ASSERT_TRUE(serial.ok()) << serial.status().ToString();
      const uint64_t serial_pages = serial_cost.PagesRead();

      QueryCost parallel_cost(buffers_);
      Result<QueryResult> parallel =
          exec::ParallelParscan(*nq.index, nq.query, &pool);
      ASSERT_TRUE(parallel.ok()) << parallel.status().ToString();

      EXPECT_EQ(parallel.value().rows, serial.value().rows)
          << "result sets diverge";
      EXPECT_EQ(parallel.value().entries_scanned,
                serial.value().entries_scanned);
      EXPECT_EQ(parallel_cost.PagesRead(), serial_pages)
          << "page-read totals diverge";
    }
  }
}

TEST_F(ParallelDeterminismTest, RepeatedRunsAreStable) {
  // Re-running the same parallel query must reproduce itself exactly —
  // thread scheduling may differ between runs, the output must not.
  exec::ThreadPool pool(8);
  const std::vector<NamedQuery> queries = Table1Queries();
  const NamedQuery& nq = queries[8];  // Query 3: the forward-scan shape.
  QueryCost first_cost(buffers_);
  Result<QueryResult> first = exec::ParallelParscan(*nq.index, nq.query,
                                                    &pool);
  ASSERT_TRUE(first.ok());
  const uint64_t first_pages = first_cost.PagesRead();
  for (int rep = 0; rep < 5; ++rep) {
    QueryCost cost(buffers_);
    Result<QueryResult> r = exec::ParallelParscan(*nq.index, nq.query,
                                                  &pool);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r.value().rows, first.value().rows);
    EXPECT_EQ(cost.PagesRead(), first_pages);
  }
}

}  // namespace
}  // namespace uindex
