#include <gtest/gtest.h>

#include "baselines/pathindex/nested_index.h"
#include "baselines/pathindex/path_index.h"
#include "core/query_parser.h"
#include "core/update.h"
#include "tests/example_database.h"
#include "workload/database_generator.h"

namespace uindex {
namespace {

// End-to-end: generate the Table-1 database, build all index flavours over
// it, and verify they agree with brute-force evaluation over the store.
class EndToEndTest : public ::testing::Test {
 protected:
  EndToEndTest() : pager_(1024), buffers_(&pager_) {
    PaperDatabaseConfig cfg;
    cfg.num_vehicles = 2000;
    cfg.num_companies = 40;
    cfg.num_employees = 50;
    Status s = GeneratePaperDatabase(cfg, &db_);
    EXPECT_TRUE(s.ok()) << s.ToString();
  }

  PathSpec AgePath() const {
    PathSpec spec;
    spec.classes = {db_.ids.vehicle, db_.ids.company, db_.ids.employee};
    spec.ref_attrs = {"manufactured-by", "president"};
    spec.indexed_attr = "Age";
    spec.value_kind = Value::Kind::kInt;
    return spec;
  }

  // Brute force: vehicles of `root`'s subtree whose president's age is in
  // [lo, hi].
  std::vector<Oid> BruteForceVehicles(int64_t lo, int64_t hi,
                                      ClassId vehicle_root) {
    std::vector<Oid> out;
    for (const Oid v : db_.store->DeepExtentOf(vehicle_root)) {
      Result<Oid> company = db_.store->Deref(v, "manufactured-by");
      if (!company.ok()) continue;
      Result<Oid> president = db_.store->Deref(company.value(), "president");
      if (!president.ok()) continue;
      const Value* age =
          db_.store->Get(president.value()).value()->FindAttr("Age");
      if (age == nullptr) continue;
      if (age->AsInt() >= lo && age->AsInt() <= hi) out.push_back(v);
    }
    std::sort(out.begin(), out.end());
    return out;
  }

  PaperDatabase db_;
  Pager pager_;
  BufferManager buffers_;
};

TEST_F(EndToEndTest, UIndexNestedAndPathIndexAgreeWithBruteForce) {
  UIndex uidx(&buffers_, &db_.ids.schema, db_.coder.get(), AgePath());
  ASSERT_TRUE(uidx.BuildFrom(*db_.store).ok());
  NestedIndex nested(&buffers_, AgePath());
  ASSERT_TRUE(nested.BuildFrom(*db_.store).ok());
  PathIndex path(&buffers_, AgePath());
  ASSERT_TRUE(path.BuildFrom(*db_.store).ok());
  ASSERT_EQ(uidx.entry_count(), nested.btree().size() == 0
                                    ? uidx.entry_count()
                                    : uidx.entry_count());

  for (const auto& [lo, hi] : std::vector<std::pair<int64_t, int64_t>>{
           {50, 50}, {20, 70}, {51, 70}, {30, 40}}) {
    const std::vector<Oid> expected =
        BruteForceVehicles(lo, hi, db_.ids.vehicle);

    Query q = Query::Range(Value::Int(lo), Value::Int(hi));
    q.With(ClassSelector::Exactly(db_.ids.employee))
        .With(ClassSelector::Subtree(db_.ids.company))
        .With(ClassSelector::Subtree(db_.ids.vehicle), ValueSlot::Wanted());
    EXPECT_EQ(std::move(uidx.Parscan(q)).value().Distinct(2), expected);
    EXPECT_EQ(std::move(uidx.ForwardScan(q)).value().Distinct(2), expected);

    std::vector<Oid> nested_got =
        std::move(nested.Lookup(Value::Int(lo), Value::Int(hi))).value();
    std::sort(nested_got.begin(), nested_got.end());
    nested_got.erase(std::unique(nested_got.begin(), nested_got.end()),
                     nested_got.end());
    EXPECT_EQ(nested_got, expected);

    std::vector<Oid> path_heads;
    const std::vector<std::vector<Oid>> tuples =
        std::move(path.Lookup(Value::Int(lo), Value::Int(hi))).value();
    for (const auto& tuple : tuples) {
      path_heads.push_back(tuple[0]);
    }
    std::sort(path_heads.begin(), path_heads.end());
    path_heads.erase(std::unique(path_heads.begin(), path_heads.end()),
                     path_heads.end());
    EXPECT_EQ(path_heads, expected);
  }
}

TEST_F(EndToEndTest, CombinedQueryMatchesBruteForceSubtreeFilter) {
  UIndex uidx(&buffers_, &db_.ids.schema, db_.coder.get(), AgePath());
  ASSERT_TRUE(uidx.BuildFrom(*db_.store).ok());

  // Trucks (with subclasses) made by auto companies, president age >= 40:
  // brute force with an extra class filter.
  std::vector<Oid> expected;
  for (const Oid v : db_.store->DeepExtentOf(db_.ids.truck)) {
    Result<Oid> company = db_.store->Deref(v, "manufactured-by");
    if (!company.ok()) continue;
    if (!db_.ids.schema.IsSubclassOf(
            db_.store->Get(company.value()).value()->cls,
            db_.ids.auto_company)) {
      continue;
    }
    Result<Oid> president = db_.store->Deref(company.value(), "president");
    if (!president.ok()) continue;
    const Value* age =
        db_.store->Get(president.value()).value()->FindAttr("Age");
    if (age != nullptr && age->AsInt() >= 40) expected.push_back(v);
  }
  std::sort(expected.begin(), expected.end());

  Query q = Query::Range(Value::Int(40), Value::Int(200));
  q.With(ClassSelector::Any())
      .With(ClassSelector::Subtree(db_.ids.auto_company))
      .With(ClassSelector::Subtree(db_.ids.truck), ValueSlot::Wanted());
  EXPECT_EQ(std::move(uidx.Parscan(q)).value().Distinct(2), expected);
}

TEST_F(EndToEndTest, ParsedQueriesRunEndToEnd) {
  UIndex uidx(&buffers_, &db_.ids.schema, db_.coder.get(), AgePath());
  ASSERT_TRUE(uidx.BuildFrom(*db_.store).ok());
  const Query q =
      std::move(ParseQuery("(Age=40..60, Employee, _, Company*, _, Bus*, ?)",
                           AgePath(), db_.ids.schema))
          .value();
  const std::vector<Oid> got = std::move(uidx.Parscan(q)).value().Distinct(2);
  const std::vector<Oid> expected = BruteForceVehicles(40, 60, db_.ids.bus);
  EXPECT_EQ(got, expected);
}

// Schema evolution end to end: add a class, re-code incrementally, index
// new instances, query across old and new classes.
TEST(SchemaEvolutionIntegrationTest, NewClassJoinsExistingIndex) {
  ExampleDatabase db;
  Pager pager(1024);
  BufferManager buffers(&pager);
  UIndex color(&buffers, &db.ids.schema, db.coder.get(), db.ColorSpec());
  ASSERT_TRUE(color.BuildFrom(*db.store).ok());
  IndexedDatabase idb(&db.ids.schema, db.store.get());
  idb.RegisterIndex(&color);

  // Fig. 4a: a new vehicle subclass appears after the index exists.
  const ClassId ebike =
      db.ids.schema.AddSubclass("ElectricBike", db.ids.vehicle).value();
  ASSERT_TRUE(db.coder->AssignNewClass(db.ids.schema, ebike).ok());
  EXPECT_EQ(db.coder->CodeOf(ebike), "C5D");  // After Automobile/Truck/Bus.

  const Oid bike = idb.CreateObject(ebike).value();
  ASSERT_TRUE(idb.SetAttr(bike, "Color", Value::Str("Red")).ok());

  Query q = Query::ExactValue(Value::Str("Red"));
  q.With(ClassSelector::Subtree(db.ids.vehicle), ValueSlot::Wanted());
  EXPECT_EQ(std::move(color.Parscan(q)).value().Distinct(0),
            (std::vector<Oid>{db.v3, db.v4, bike}));

  // The new class alone is queryable too.
  Query q2 = Query::ExactValue(Value::Str("Red"));
  q2.With(ClassSelector::Exactly(ebike), ValueSlot::Wanted());
  EXPECT_EQ(std::move(color.Parscan(q2)).value().Distinct(0),
            (std::vector<Oid>{bike}));
}

}  // namespace
}  // namespace uindex
