#include <gtest/gtest.h>

#include <cstdio>

#include "db/database.h"

namespace uindex {
namespace {

std::string TempPath(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

// REF rule (§3.1): the referenced (target) class's code must sort below
// the referencing (source) class's. Dealer is created first (C1), so
// an Employee -> Dealer edge is fine, but Dealer -> Employee inverts the
// order and needs the §4.3 re-encode.
class ReencodeTest : public ::testing::Test {
 protected:
  ReencodeTest() {
    dealer_ = db_.CreateClass("Dealer").value();
    franchise_ = db_.CreateSubclass("FranchiseDealer", dealer_).value();
    employee_ = db_.CreateClass("Employee").value();
  }

  Database db_;
  ClassId dealer_, franchise_, employee_;
};

TEST_F(ReencodeTest, OrderInvertingRefTriggersReencode) {
  EXPECT_EQ(db_.coder().CodeOf(dealer_), "C1");
  EXPECT_EQ(db_.coder().CodeOf(employee_), "C2");

  // The plain API refuses the inverting edge...
  EXPECT_TRUE(db_.CreateReference(dealer_, employee_, "employs")
                  .IsInvalidArgument());
  // ...the re-encoding one succeeds and flips the codes.
  ASSERT_TRUE(
      db_.CreateReferenceWithReencode(dealer_, employee_, "employs").ok());
  EXPECT_EQ(db_.coder().CodeOf(employee_), "C1");
  EXPECT_EQ(db_.coder().CodeOf(dealer_), "C2");
  EXPECT_EQ(db_.coder().CodeOf(franchise_), "C2A");
  EXPECT_TRUE(db_.coder().Verify(db_.schema()).ok());
  // The catalog was rebuilt under the new codes.
  ASSERT_NE(db_.catalog(), nullptr);
  EXPECT_EQ(std::move(db_.catalog()->NameOf(Slice("C2"))).value(),
            "Dealer");
  EXPECT_EQ(std::move(db_.catalog()->NameOf(Slice("C1"))).value(),
            "Employee");
}

TEST_F(ReencodeTest, IndexesAreRebuiltWithNewCodes) {
  const Oid boss = db_.CreateObject(employee_).value();
  ASSERT_TRUE(db_.SetAttr(boss, "Age", Value::Int(55)).ok());
  const Oid shop = db_.CreateObject(franchise_).value();
  ASSERT_TRUE(db_.SetAttr(shop, "Rating", Value::Int(4)).ok());
  ASSERT_TRUE(db_.CreateIndex(PathSpec::ClassHierarchy(
                                  dealer_, "Rating", Value::Kind::kInt))
                  .ok());

  ASSERT_TRUE(
      db_.CreateReferenceWithReencode(dealer_, employee_, "employs").ok());

  // The index still answers correctly under the new codes.
  Database::Selection sel;
  sel.cls = dealer_;
  sel.attr = "Rating";
  sel.lo = Value::Int(1);
  sel.hi = Value::Int(5);
  const auto r = std::move(db_.Select(sel)).value();
  EXPECT_TRUE(r.used_index);
  EXPECT_EQ(r.oids, (std::vector<Oid>{shop}));
  // And keeps maintaining through DML.
  const Oid shop2 = db_.CreateObject(dealer_).value();
  ASSERT_TRUE(db_.SetAttr(shop2, "Rating", Value::Int(2)).ok());
  EXPECT_EQ(std::move(db_.Select(sel)).value().oids,
            (std::vector<Oid>{shop, shop2}));
}

TEST_F(ReencodeTest, NonInvertingRefSkipsReencodeAndCyclesAreRejected) {
  ASSERT_TRUE(
      db_.CreateReferenceWithReencode(dealer_, employee_, "employs").ok());
  const std::string employee_code = db_.coder().CodeOf(employee_);
  const std::string dealer_code = db_.coder().CodeOf(dealer_);

  // A later hierarchy referencing an earlier one points "down" the code
  // order: no re-encode needed.
  const ClassId product = db_.CreateClass("Product").value();
  ASSERT_TRUE(
      db_.CreateReferenceWithReencode(product, dealer_, "sold-at").ok());
  EXPECT_EQ(db_.coder().CodeOf(employee_), employee_code);
  EXPECT_EQ(db_.coder().CodeOf(dealer_), dealer_code);

  // The reverse of an existing edge closes a REF cycle; no code order can
  // satisfy it, so even the re-encoding API reports the paper's §4.3
  // limit (cycle breaking needs separate duplicate encodings).
  EXPECT_TRUE(db_.CreateReferenceWithReencode(employee_, dealer_,
                                              "works-at")
                  .IsInvalidArgument());
}

TEST_F(ReencodeTest, DropIndexReclaimsPages) {
  const Oid shop = db_.CreateObject(dealer_).value();
  ASSERT_TRUE(db_.SetAttr(shop, "Rating", Value::Int(3)).ok());
  const uint64_t before = db_.live_pages();
  const size_t pos = db_.CreateIndex(PathSpec::ClassHierarchy(
                                         dealer_, "Rating",
                                         Value::Kind::kInt))
                         .value();
  EXPECT_GT(db_.live_pages(), before);
  ASSERT_TRUE(db_.DropIndex(pos).ok());
  EXPECT_EQ(db_.live_pages(), before);
  EXPECT_EQ(db_.index_count(), 0u);
  EXPECT_TRUE(db_.DropIndex(0).IsInvalidArgument());
  // Selects fall back to scans afterwards.
  Database::Selection sel;
  sel.cls = dealer_;
  sel.attr = "Rating";
  sel.lo = sel.hi = Value::Int(3);
  EXPECT_FALSE(std::move(db_.Select(sel)).value().used_index);
}

TEST(ReencodeDurabilityTest, ReencodeSurvivesJournalReplay) {
  const std::string snapshot = TempPath("reencode.udb");
  const std::string journal = TempPath("reencode.journal");
  std::remove(snapshot.c_str());
  std::remove(journal.c_str());

  Oid shop = kInvalidOid;
  {
    auto db = std::move(Database::OpenDurable(snapshot, journal)).value();
    const ClassId dealer = db->CreateClass("Dealer").value();
    const ClassId employee = db->CreateClass("Employee").value();
    shop = db->CreateObject(dealer).value();
    ASSERT_TRUE(db->SetAttr(shop, "Rating", Value::Int(5)).ok());
    ASSERT_TRUE(db->CreateIndex(PathSpec::ClassHierarchy(
                                    dealer, "Rating", Value::Kind::kInt))
                    .ok());
    ASSERT_TRUE(
        db->CreateReferenceWithReencode(dealer, employee, "employs").ok());
    ASSERT_TRUE(db->DropIndex(0).ok());
    ASSERT_TRUE(db->CreateIndex(PathSpec::ClassHierarchy(
                                    dealer, "Rating", Value::Kind::kInt))
                    .ok());
  }
  auto db = std::move(Database::OpenDurable(snapshot, journal)).value();
  EXPECT_TRUE(db->coder().Verify(db->schema()).ok());
  EXPECT_EQ(db->index_count(), 1u);
  Database::Selection sel;
  sel.cls = db->schema().FindClass("Dealer").value();
  sel.attr = "Rating";
  sel.lo = sel.hi = Value::Int(5);
  const auto r = std::move(db->Select(sel)).value();
  EXPECT_TRUE(r.used_index);
  EXPECT_EQ(r.oids, (std::vector<Oid>{shop}));
  std::remove(snapshot.c_str());
  std::remove(journal.c_str());
}

}  // namespace
}  // namespace uindex
