// Online schema evolution under concurrent readers (ISSUE 10): subclass
// insertion mid-run (paper Fig. 4) must never perturb what snapshot
// readers see for classes outside the evolved sub-tree — their result
// rows stay byte-identical across every DDL — while queries over the
// evolved sub-tree pick up exactly the new instances once the DDL and its
// DML are published.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "db/database.h"
#include "workload/rollup_generator.h"

namespace uindex {
namespace {

RollupConfig EvolutionConfig() {
  RollupConfig cfg;
  cfg.years = 36;  // Z*-token years: evolution under an extended token.
  cfg.months_per_year = 2;
  cfg.days_per_month = 2;
  cfg.countries = 2;
  cfg.states_per_country = 4;
  cfg.cities_per_state = 2;
  cfg.num_events = 1200;
  cfg.num_readings = 800;
  cfg.num_distinct_values = 40;
  cfg.seed = 0xF164;
  return cfg;
}

std::vector<Oid> SelectRollup(const Database& db, ClassId cls, int64_t lo,
                              int64_t hi) {
  Database::Selection sel;
  sel.cls = cls;
  sel.with_subclasses = true;
  sel.attr = kRollupValueAttr;
  sel.lo = Value::Int(lo);
  sel.hi = Value::Int(hi);
  Result<Database::SelectResult> r = db.Select(sel);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_TRUE(r.value().used_index) << r.value().index_description;
  return std::move(r).value().oids;
}

TEST(EvolutionTest, SubclassInsertionLeavesUnaffectedReadersByteIdentical) {
  const RollupConfig cfg = EvolutionConfig();
  Database db;
  RollupDbInfo info;
  ASSERT_TRUE(LoadRollupIntoDatabase(cfg, &db, &info).ok());

  // The evolved branch is year 35 (a Z-token class); readers watch year 12
  // and a geo state — classes every DDL leaves untouched.
  const ClassId evolved = info.time.level1[35];
  const std::vector<ClassId> unaffected = {info.time.level1[12],
                                           info.geo.level2[1][2]};
  std::vector<std::vector<Oid>> baselines;
  for (ClassId cls : unaffected) {
    baselines.push_back(SelectRollup(db, cls, 0, cfg.num_distinct_values));
    ASSERT_FALSE(baselines.back().empty());
  }
  const std::vector<Oid> evolved_before =
      SelectRollup(db, evolved, 0, cfg.num_distinct_values);

  std::atomic<bool> stop{false};
  std::atomic<int> mismatches{0};
  std::vector<std::thread> readers;
  // Two readers with a small inter-query pause: continuous shared-latch
  // coverage would starve the DDL's exclusive acquisition (the latch is
  // reader-preferring), turning the test into a hang.
  for (int t = 0; t < 2; ++t) {
    readers.emplace_back([&, t] {
      // Each reader pins a snapshot per query; an unaffected class's rows
      // must match the pre-evolution baseline bit for bit, every time.
      for (int iter = 0; !stop.load(std::memory_order_relaxed); ++iter) {
        std::this_thread::sleep_for(std::chrono::microseconds(50));
        const size_t which = static_cast<size_t>(t + iter) %
                             unaffected.size();
        if (SelectRollup(db, unaffected[which], 0,
                         cfg.num_distinct_values) != baselines[which]) {
          mismatches.fetch_add(1, std::memory_order_relaxed);
        }
        // Reads of the evolved branch must always see a superset of the
        // pre-evolution rows (objects are only added, never removed).
        const std::vector<Oid> now =
            SelectRollup(db, evolved, 0, cfg.num_distinct_values);
        if (!std::includes(now.begin(), now.end(), evolved_before.begin(),
                           evolved_before.end())) {
          mismatches.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }

  // Fig. 4 evolution, live: new leaf subclasses appear under the evolved
  // year's first month while the readers run, each immediately populated.
  std::vector<Oid> added;
  const ClassId month = info.time.level2[35][0];
  for (int round = 0; round < 8; ++round) {
    Result<ClassId> fresh = db.CreateSubclass(
        "Year35Month0Evolved" + std::to_string(round), month);
    ASSERT_TRUE(fresh.ok()) << fresh.status().ToString();
    for (int i = 0; i < 25; ++i) {
      Result<Oid> oid = db.CreateObject(fresh.value());
      ASSERT_TRUE(oid.ok());
      ASSERT_TRUE(db.SetAttr(oid.value(), kRollupValueAttr,
                             Value::Int((round * 25 + i) %
                                        cfg.num_distinct_values))
                      .ok());
      added.push_back(oid.value());
    }
  }
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& t : readers) t.join();
  EXPECT_EQ(mismatches.load(), 0);

  // Quiesced: unaffected classes still byte-identical; the evolved branch
  // is exactly before + added; each new subclass answers on its own.
  for (size_t i = 0; i < unaffected.size(); ++i) {
    EXPECT_EQ(SelectRollup(db, unaffected[i], 0, cfg.num_distinct_values),
              baselines[i]);
  }
  std::vector<Oid> expected = evolved_before;
  expected.insert(expected.end(), added.begin(), added.end());
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(SelectRollup(db, evolved, 0, cfg.num_distinct_values), expected);

  const ClassId last =
      db.schema().FindClass("Year35Month0Evolved7").value();
  const std::vector<Oid> last_rows =
      SelectRollup(db, last, 0, cfg.num_distinct_values);
  EXPECT_EQ(last_rows.size(), 25u);
}

}  // namespace
}  // namespace uindex
