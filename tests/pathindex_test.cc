#include <gtest/gtest.h>

#include <algorithm>

#include "baselines/pathindex/nested_index.h"
#include "baselines/pathindex/path_index.h"
#include "tests/example_database.h"

namespace uindex {
namespace {

class PathBaselineTest : public ::testing::Test {
 protected:
  PathBaselineTest()
      : pager_(1024), buffers_(&pager_) {}

  std::vector<Oid> Sorted(std::vector<Oid> v) {
    std::sort(v.begin(), v.end());
    return v;
  }

  ExampleDatabase db_;
  Pager pager_;
  BufferManager buffers_;
};

TEST_F(PathBaselineTest, ForEachInstantiationWalksAllPaths) {
  int count = 0;
  ASSERT_TRUE(ForEachInstantiation(*db_.store, db_.AgePathSpec(),
                                   [&count](const PathInstantiation& inst) {
                                     EXPECT_EQ(inst.oids.size(), 3u);
                                     ++count;
                                     return Status::OK();
                                   })
                  .ok());
  EXPECT_EQ(count, 6);
}

TEST_F(PathBaselineTest, NestedIndexAnswersHeadQueries) {
  NestedIndex index(&buffers_, db_.AgePathSpec());
  ASSERT_TRUE(index.BuildFrom(*db_.store).ok());
  // Vehicles whose president's age is 50: the paper's canonical example.
  EXPECT_EQ(Sorted(std::move(index.Lookup(Value::Int(50), Value::Int(50)))
                       .value()),
            (std::vector<Oid>{db_.v2, db_.v3, db_.v6}));
  // Above 50.
  EXPECT_EQ(Sorted(std::move(index.Lookup(Value::Int(51), Value::Int(200)))
                       .value()),
            (std::vector<Oid>{db_.v4}));
  // Whole domain.
  EXPECT_EQ(std::move(index.Lookup(Value::Int(0), Value::Int(200)))
                .value()
                .size(),
            6u);
}

TEST_F(PathBaselineTest, NestedIndexMaintenance) {
  NestedIndex index(&buffers_, db_.AgePathSpec());
  ASSERT_TRUE(index.BuildFrom(*db_.store).ok());
  ASSERT_TRUE(index.Remove(Value::Int(50), db_.v2).ok());
  EXPECT_EQ(Sorted(std::move(index.Lookup(Value::Int(50), Value::Int(50)))
                       .value()),
            (std::vector<Oid>{db_.v3, db_.v6}));
  EXPECT_TRUE(index.Remove(Value::Int(50), db_.v2).IsNotFound());
  ASSERT_TRUE(index.Insert(Value::Int(50), db_.v2).ok());
  EXPECT_EQ(std::move(index.Lookup(Value::Int(50), Value::Int(50)))
                .value()
                .size(),
            3u);
}

TEST_F(PathBaselineTest, NestedIndexSpillsLongLists) {
  NestedIndex index(&buffers_, db_.AgePathSpec());
  for (Oid oid = 1; oid <= 2000; ++oid) {
    ASSERT_TRUE(index.Insert(Value::Int(33), oid).ok());
  }
  QueryCost cost(&buffers_);
  EXPECT_EQ(std::move(index.Lookup(Value::Int(33), Value::Int(33)))
                .value()
                .size(),
            2000u);
  EXPECT_GT(cost.PagesRead(), 7u);  // 8 KB of oids: a real chain.
}

TEST_F(PathBaselineTest, PathIndexStoresFullTuples) {
  PathIndex index(&buffers_, db_.AgePathSpec());
  ASSERT_TRUE(index.BuildFrom(*db_.store).ok());
  const auto rows =
      std::move(index.Lookup(Value::Int(50), Value::Int(50))).value();
  ASSERT_EQ(rows.size(), 3u);
  for (const auto& row : rows) {
    ASSERT_EQ(row.size(), 3u);
    EXPECT_EQ(row[1], db_.c2);  // Company.
    EXPECT_EQ(row[2], db_.e1);  // Employee.
  }
}

TEST_F(PathBaselineTest, PathIndexInPathPredicates) {
  PathIndex index(&buffers_, db_.AgePathSpec());
  ASSERT_TRUE(index.BuildFrom(*db_.store).ok());
  // Restrict the company position — the query class the paper says plain
  // nested indexes cannot answer.
  PathIndex::PositionFilter company_filter{1, {db_.c1}};
  const auto rows = std::move(index.Lookup(Value::Int(0), Value::Int(100),
                                           {company_filter}))
                        .value();
  ASSERT_EQ(rows.size(), 2u);  // v1 and v5 are made by c1.
  std::vector<Oid> heads = {rows[0][0], rows[1][0]};
  EXPECT_EQ(Sorted(heads), (std::vector<Oid>{db_.v1, db_.v5}));
}

TEST_F(PathBaselineTest, PathIndexMaintenance) {
  PathIndex index(&buffers_, db_.AgePathSpec());
  ASSERT_TRUE(index.BuildFrom(*db_.store).ok());
  ASSERT_TRUE(
      index.Remove(Value::Int(50), {db_.v2, db_.c2, db_.e1}).ok());
  EXPECT_EQ(std::move(index.Lookup(Value::Int(50), Value::Int(50)))
                .value()
                .size(),
            2u);
  EXPECT_TRUE(
      index.Remove(Value::Int(50), {db_.v2, db_.c2, db_.e1}).IsNotFound());
  EXPECT_TRUE(index.Insert(Value::Int(50), {db_.v2}).IsInvalidArgument());
}

}  // namespace
}  // namespace uindex
