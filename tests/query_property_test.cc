#include <gtest/gtest.h>

#include "core/uindex.h"
#include "util/coding.h"
#include "util/random.h"
#include "workload/database_generator.h"
#include "workload/paper_schema.h"

namespace uindex {
namespace {

// Property suite for the query compiler's three promises, which the
// retrieval algorithms rely on for correctness:
//   P1 (interval soundness): every key that Matches lies inside some
//      compiled interval — Parscan may prune everything outside them.
//   P2 (prefix-prune soundness): PrefixExcludes never rejects a prefix of
//      a matching key — parent-node pruning cannot lose results.
//   P3 (algorithm agreement): Parscan and ForwardScan return identical
//      rows on arbitrary queries.

class QueryPropertyTest : public ::testing::Test {
 protected:
  QueryPropertyTest() : pager_(1024), buffers_(&pager_) {
    PaperDatabaseConfig cfg;
    cfg.num_vehicles = 3000;
    Status s = GeneratePaperDatabase(cfg, &db_);
    EXPECT_TRUE(s.ok());
    spec_.classes = {db_.ids.vehicle, db_.ids.company, db_.ids.employee};
    spec_.ref_attrs = {"manufactured-by", "president"};
    spec_.indexed_attr = "Age";
    spec_.value_kind = Value::Kind::kInt;
    BTreeOptions options;
    options.max_entries_per_node = 10;  // Deep tree: more prunable gaps.
    index_ = std::make_unique<UIndex>(&buffers_, &db_.ids.schema,
                                      db_.coder.get(), spec_, options);
    s = index_->BuildFrom(*db_.store);
    EXPECT_TRUE(s.ok());
  }

  // Builds a random (possibly partial) query over the path spec.
  Query RandomQuery(Random& rng) {
    Query q;
    if (rng.Bernoulli(0.2)) {
      std::vector<Value> values;
      const size_t n = 1 + rng.Uniform(3);
      for (size_t i = 0; i < n; ++i) {
        values.push_back(Value::Int(
            static_cast<int64_t>(rng.UniformRange(20, 70))));
      }
      q.values = std::move(values);
    } else {
      const int64_t lo = static_cast<int64_t>(rng.UniformRange(20, 70));
      const int64_t hi =
          rng.Bernoulli(0.5)
              ? lo
              : static_cast<int64_t>(
                    rng.UniformRange(static_cast<uint64_t>(lo), 70));
      q.lo = Value::Int(lo);
      q.hi = Value::Int(hi);
    }

    const ClassId position_roots[3] = {db_.ids.employee, db_.ids.company,
                                       db_.ids.vehicle};
    const size_t components = 1 + rng.Uniform(3);  // Partial allowed.
    for (size_t i = 0; i < components; ++i) {
      QueryComponent comp;
      if (!rng.Bernoulli(0.25)) {  // 25% wildcard.
        // Pick 1-2 include terms from the position's sub-tree.
        const auto classes = db_.ids.schema.SubtreeOf(position_roots[i]);
        const size_t terms = 1 + rng.Uniform(2);
        for (size_t t = 0; t < terms; ++t) {
          comp.selector.include.push_back(
              {classes[rng.Uniform(classes.size())], rng.Bernoulli(0.5)});
        }
        if (rng.Bernoulli(0.3)) {
          comp.selector.exclude.push_back(
              {classes[rng.Uniform(classes.size())], rng.Bernoulli(0.5)});
        }
      }
      if (rng.Bernoulli(0.2)) {
        // Bind to a few live oids of the position's class family.
        const auto extent =
            db_.store->DeepExtentOf(position_roots[i]);
        if (!extent.empty()) {
          std::vector<Oid> oids;
          const size_t n = 1 + rng.Uniform(3);
          for (size_t t = 0; t < n; ++t) {
            oids.push_back(extent[rng.Uniform(extent.size())]);
          }
          comp.slot = ValueSlot::Bound(std::move(oids));
        }
      }
      q.components.push_back(std::move(comp));
    }
    return q;
  }

  PaperDatabase db_;
  Pager pager_;
  BufferManager buffers_;
  PathSpec spec_;
  std::unique_ptr<UIndex> index_;
};

TEST_F(QueryPropertyTest, IntervalAndPrefixSoundness) {
  // Collect every indexed key once.
  std::vector<std::string> keys;
  auto it = index_->btree().NewIterator();
  for (it.SeekToFirst(); it.Valid(); it.Next()) {
    keys.push_back(it.key().ToString());
  }
  ASSERT_GT(keys.size(), 1000u);

  Random rng(505);
  for (int rep = 0; rep < 60; ++rep) {
    const Query q = RandomQuery(rng);
    Result<CompiledQuery> compiled =
        CompiledQuery::Compile(q, index_->key_encoder(), db_.ids.schema);
    ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();
    const CompiledQuery& cq = compiled.value();

    for (size_t ki = 0; ki < keys.size(); ki += 7) {
      const Slice key(keys[ki]);
      if (!cq.Matches(key, nullptr)) continue;

      // P1: the key lies inside some interval.
      bool covered = false;
      for (const ByteInterval& iv : cq.intervals()) {
        if (!(key < Slice(iv.lo)) &&
            (iv.hi.empty() || key < Slice(iv.hi))) {
          covered = true;
          break;
        }
      }
      EXPECT_TRUE(covered) << "rep " << rep << " key " << ki;

      // P2: no prefix of a matching key is excluded.
      for (size_t len = 1; len <= key.size(); len += 3) {
        EXPECT_FALSE(cq.PrefixExcludes(key.Prefix(len)))
            << "rep " << rep << " key " << ki << " prefix len " << len;
      }
      EXPECT_FALSE(cq.PrefixExcludes(key));
    }
  }
}

TEST_F(QueryPropertyTest, ParscanAgreesWithForwardScanOnRandomQueries) {
  Random rng(707);
  int nonempty = 0;
  for (int rep = 0; rep < 80; ++rep) {
    const Query q = RandomQuery(rng);
    Result<QueryResult> parscan = index_->Parscan(q);
    Result<QueryResult> forward = index_->ForwardScan(q);
    ASSERT_TRUE(parscan.ok()) << parscan.status().ToString();
    ASSERT_TRUE(forward.ok()) << forward.status().ToString();
    EXPECT_EQ(parscan.value().rows, forward.value().rows) << "rep " << rep;
    EXPECT_LE(parscan.value().entries_scanned,
              forward.value().entries_scanned);
    if (!parscan.value().rows.empty()) ++nonempty;
  }
  // The generator must actually produce meaningful queries.
  EXPECT_GT(nonempty, 20);
}

TEST_F(QueryPropertyTest, MatchesAgreesWithSemanticEvaluation) {
  // Independent oracle: evaluate the query per decoded key component.
  Random rng(909);
  std::vector<std::string> keys;
  auto it = index_->btree().NewIterator();
  for (it.SeekToFirst(); it.Valid(); it.Next()) {
    keys.push_back(it.key().ToString());
  }

  for (int rep = 0; rep < 40; ++rep) {
    const Query q = RandomQuery(rng);
    const CompiledQuery cq = std::move(CompiledQuery::Compile(
                                           q, index_->key_encoder(),
                                           db_.ids.schema))
                                 .value();
    for (size_t ki = 0; ki < keys.size(); ki += 13) {
      const Slice key(keys[ki]);
      const DecodedKey dk =
          std::move(index_->key_encoder().Decode(key)).value();

      // Oracle evaluation.
      bool expected = true;
      const int64_t age = static_cast<int64_t>(
          DecodeBigEndian64(dk.attr_bytes.data()) ^ 0x8000000000000000ull);
      if (!q.values.empty()) {
        bool any = false;
        for (const Value& v : q.values) any = any || v.AsInt() == age;
        expected = any;
      } else {
        expected = age >= q.lo.AsInt() && age <= q.hi.AsInt();
      }
      for (size_t i = 0; expected && i < q.components.size(); ++i) {
        const ClassId cls =
            db_.coder->ClassOf(Slice(dk.components[i].code)).value();
        const QueryComponent& comp = q.components[i];
        if (!comp.selector.include.empty()) {
          bool any = false;
          for (const auto& term : comp.selector.include) {
            any = any ||
                  (term.with_subclasses
                       ? db_.ids.schema.IsSubclassOf(cls, term.cls)
                       : cls == term.cls);
          }
          expected = expected && any;
        }
        for (const auto& term : comp.selector.exclude) {
          const bool hit = term.with_subclasses
                               ? db_.ids.schema.IsSubclassOf(cls, term.cls)
                               : cls == term.cls;
          expected = expected && !hit;
        }
        if (comp.slot.kind == ValueSlot::Kind::kBound) {
          bool any = false;
          for (const Oid oid : comp.slot.oids) {
            any = any || oid == dk.components[i].oid;
          }
          expected = expected && any;
        }
      }
      EXPECT_EQ(cq.Matches(key, nullptr), expected)
          << "rep " << rep << " key " << ki;
    }
  }
}

}  // namespace
}  // namespace uindex
