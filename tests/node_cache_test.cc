#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <memory>
#include <shared_mutex>
#include <string>
#include <thread>
#include <vector>

#include "btree/btree.h"
#include "btree/node_cache.h"
#include "util/random.h"

namespace uindex {
namespace {

std::string Key(int i) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "key%06d", i);
  return buf;
}

class NodeCacheTest : public ::testing::Test {
 protected:
  NodeCacheTest() : pager_(512), buffers_(&pager_) {}

  // The whole fixture exercises the cache; under UINDEX_NODE_CACHE=off
  // (CI's cache-off leg) trees are built without one, so skip.
  void SetUp() override {
    if (!NodeCache::EnvEnabled()) {
      GTEST_SKIP() << "decoded-node cache disabled via UINDEX_NODE_CACHE";
    }
  }

  Pager pager_;
  BufferManager buffers_;
};

TEST_F(NodeCacheTest, FetchNodeSharesOneDecodedImage) {
  BTree tree(&buffers_);
  ASSERT_NE(tree.node_cache(), nullptr);
  for (int i = 0; i < 500; ++i) {
    ASSERT_TRUE(tree.Insert(Slice(Key(i)), Slice("v")).ok());
  }
  const uint64_t parses_before =
      buffers_.stats().nodes_parsed.load(std::memory_order_relaxed);
  Result<std::shared_ptr<const Node>> a = tree.FetchNode(tree.root());
  Result<std::shared_ptr<const Node>> b = tree.FetchNode(tree.root());
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  // Second fetch is the same decoded object, and only the first parsed.
  EXPECT_EQ(a.value().get(), b.value().get());
  EXPECT_EQ(
      buffers_.stats().nodes_parsed.load(std::memory_order_relaxed),
      parses_before + 1);
  EXPECT_GE(
      buffers_.stats().node_cache_hits.load(std::memory_order_relaxed), 1u);
}

TEST_F(NodeCacheTest, PageReadsIdenticalWithCacheOnAndOff) {
  Pager pager_off(512);
  BufferManager buffers_off(&pager_off);
  BTreeOptions opts_off;
  opts_off.node_cache_bytes = 0;

  BTree on(&buffers_);
  BTree off(&buffers_off, opts_off);
  ASSERT_NE(on.node_cache(), nullptr);
  ASSERT_EQ(off.node_cache(), nullptr);

  for (int i = 0; i < 800; ++i) {
    ASSERT_TRUE(on.Insert(Slice(Key(i)), Slice("v")).ok());
    ASSERT_TRUE(off.Insert(Slice(Key(i)), Slice("v")).ok());
  }
  auto run_queries = [](const BTree& tree, BufferManager* buffers) {
    std::vector<std::string> rows;
    uint64_t pages = 0;
    for (int q = 0; q < 50; ++q) {
      QueryCost cost(buffers);
      Result<std::string> got = tree.Get(Slice(Key(q * 13)));
      rows.push_back(got.ok() ? got.value() : "miss");
      auto it = tree.NewIterator();
      for (it.Seek(Slice(Key(q * 7))); it.Valid() && rows.size() % 97 != 0;
           it.Next()) {
        rows.push_back(it.key().ToString());
      }
      pages += cost.PagesRead();
    }
    return std::make_pair(rows, pages);
  };
  const auto [rows_on, pages_on] = run_queries(on, &buffers_);
  const auto [rows_off, pages_off] = run_queries(off, &buffers_off);
  EXPECT_EQ(rows_on, rows_off);
  EXPECT_EQ(pages_on, pages_off);  // The cache never touches pages_read.
  EXPECT_LT(buffers_.stats().nodes_parsed.load(std::memory_order_relaxed),
            buffers_off.stats().nodes_parsed.load(std::memory_order_relaxed));
}

// Interleaved Insert/Remove/range-scan against a reference map: a stale
// decoded node would surface as a wrong row, a missing row, or a deleted
// row coming back.
TEST_F(NodeCacheTest, NeverServesStaleNodesAcrossMutations) {
  BTreeOptions opts;
  opts.node_cache_bytes = 64 << 10;  // Small enough to also exercise eviction.
  BTree tree(&buffers_, opts);
  ASSERT_NE(tree.node_cache(), nullptr);
  std::map<std::string, std::string> reference;
  Random rng(42);

  auto check_scan = [&] {
    auto it = tree.NewIterator();
    auto ref = reference.begin();
    for (it.SeekToFirst(); it.Valid(); it.Next(), ++ref) {
      ASSERT_NE(ref, reference.end());
      ASSERT_EQ(it.key().ToString(), ref->first);
      ASSERT_EQ(it.value().ToString(), ref->second);
    }
    ASSERT_EQ(ref, reference.end());
  };

  for (int op = 0; op < 6000; ++op) {
    const int k = static_cast<int>(rng.Next() % 700);
    const std::string key = Key(k);
    switch (rng.Next() % 3) {
      case 0: {
        std::string value = std::to_string(op);
        value.insert(value.begin(), 'v');
        ASSERT_TRUE(tree.Put(Slice(key), Slice(value)).ok());
        reference[key] = value;
        break;
      }
      case 1: {
        const Status s = tree.Delete(Slice(key));
        ASSERT_EQ(s.ok(), reference.erase(key) == 1) << s.ToString();
        break;
      }
      default: {
        Result<std::string> got = tree.Get(Slice(key));
        auto ref = reference.find(key);
        if (ref == reference.end()) {
          ASSERT_TRUE(got.status().IsNotFound());
        } else {
          ASSERT_TRUE(got.ok());
          ASSERT_EQ(got.value(), ref->second);
        }
        break;
      }
    }
    if (op % 500 == 499) check_scan();
  }
  check_scan();
  ASSERT_TRUE(tree.Validate().ok());
}

TEST_F(NodeCacheTest, SetCapacityInvalidatesEverything) {
  BTree tree(&buffers_);
  ASSERT_NE(tree.node_cache(), nullptr);
  for (int i = 0; i < 300; ++i) {
    ASSERT_TRUE(tree.Insert(Slice(Key(i)), Slice("v")).ok());
  }
  ASSERT_TRUE(tree.FetchNode(tree.root()).ok());
  ASSERT_NE(tree.node_cache()->Lookup(tree.root()), nullptr);
  buffers_.SetCapacity(8);  // Epoch bump: every cached version is stale.
  EXPECT_EQ(tree.node_cache()->Lookup(tree.root()), nullptr);
  buffers_.SetCapacity(0);
  EXPECT_EQ(tree.node_cache()->Lookup(tree.root()), nullptr);
  // And the tree still answers correctly afterwards.
  EXPECT_EQ(tree.Get(Slice(Key(123))).value(), "v");
}

TEST_F(NodeCacheTest, FreeInvalidatesRecycledPage) {
  BTree tree(&buffers_);
  ASSERT_NE(tree.node_cache(), nullptr);
  // Grow past one page, cache every node, then shrink until merges free
  // pages; a recycled page must never be served from its old decoded image.
  for (int i = 0; i < 400; ++i) {
    ASSERT_TRUE(tree.Insert(Slice(Key(i)), Slice("v1")).ok());
  }
  auto it = tree.NewIterator();
  for (it.SeekToFirst(); it.Valid(); it.Next()) {
  }
  for (int i = 0; i < 390; ++i) {
    ASSERT_TRUE(tree.Delete(Slice(Key(i))).ok());
  }
  for (int i = 0; i < 390; ++i) {
    ASSERT_TRUE(tree.Insert(Slice(Key(i)), Slice("v2")).ok());
  }
  for (int i = 0; i < 390; ++i) {
    ASSERT_EQ(tree.Get(Slice(Key(i))).value(), "v2") << i;
  }
  ASSERT_TRUE(tree.Validate().ok());
}

TEST_F(NodeCacheTest, EvictionRespectsByteBudget) {
  BTreeOptions opts;
  opts.node_cache_bytes = 16 << 10;
  BTree tree(&buffers_, opts);
  ASSERT_NE(tree.node_cache(), nullptr);
  for (int i = 0; i < 3000; ++i) {
    ASSERT_TRUE(tree.Insert(Slice(Key(i)), Slice("value")).ok());
  }
  auto it = tree.NewIterator();
  for (it.SeekToFirst(); it.Valid(); it.Next()) {
  }
  EXPECT_GT(tree.node_cache()->entry_count(), 0u);
  EXPECT_LE(tree.node_cache()->bytes_cached(),
            tree.node_cache()->byte_budget());
}

TEST_F(NodeCacheTest, RuntimeDisableClearsAndBypasses) {
  BTree tree(&buffers_);
  ASSERT_NE(tree.node_cache(), nullptr);
  for (int i = 0; i < 300; ++i) {
    ASSERT_TRUE(tree.Insert(Slice(Key(i)), Slice("v")).ok());
  }
  ASSERT_TRUE(tree.FetchNode(tree.root()).ok());
  tree.node_cache()->set_enabled(false);
  EXPECT_EQ(tree.node_cache()->entry_count(), 0u);
  EXPECT_EQ(tree.node_cache()->Lookup(tree.root()), nullptr);
  const uint64_t hits_before =
      buffers_.stats().node_cache_hits.load(std::memory_order_relaxed);
  ASSERT_TRUE(tree.FetchNode(tree.root()).ok());
  ASSERT_TRUE(tree.FetchNode(tree.root()).ok());
  EXPECT_EQ(buffers_.stats().node_cache_hits.load(std::memory_order_relaxed),
            hits_before);
  EXPECT_EQ(tree.Get(Slice(Key(7))).value(), "v");
  tree.node_cache()->set_enabled(true);
  EXPECT_EQ(tree.Get(Slice(Key(7))).value(), "v");
}

// Concurrent readers against an excluded writer, the contract the parallel
// executor runs under (database latch). Readers hammer point lookups and
// leaf-chain scans through the cache while the writer, under the exclusive
// side of a shared_mutex, keeps mutating — TSan must see no race on the
// cache, the versions, or the shared decoded nodes.
TEST_F(NodeCacheTest, ConcurrentReadersWithExcludedWriter) {
  BTree tree(&buffers_);
  ASSERT_NE(tree.node_cache(), nullptr);
  constexpr int kKeys = 600;
  for (int i = 0; i < kKeys; ++i) {
    ASSERT_TRUE(tree.Insert(Slice(Key(i)), Slice("stable")).ok());
  }

  std::shared_mutex latch;
  std::atomic<bool> stop{false};
  std::atomic<int> errors{0};

  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&, t] {
      Random rng(1000 + t);
      for (int iter = 0; iter < 250; ++iter) {
        // Glibc's rwlock prefers readers; briefly drop off the lock so the
        // writer actually interleaves instead of starving.
        if (iter % 8 == 7) std::this_thread::yield();
        std::shared_lock<std::shared_mutex> lock(latch);
        // Stable keys (never mutated by the writer) must always be present
        // and exact; churn keys may come and go but never corrupt a scan.
        const int k = static_cast<int>(rng.Next() % (kKeys / 2));
        Result<std::string> got = tree.Get(Slice(Key(k)));
        if (!got.ok() || got.value() != "stable") {
          errors.fetch_add(1, std::memory_order_relaxed);
        }
        auto it = tree.NewIterator();
        std::string prev;
        int seen = 0;
        for (it.Seek(Slice(Key(k))); it.Valid() && seen < 40; it.Next()) {
          if (!prev.empty() && !(Slice(prev) < it.key())) {
            errors.fetch_add(1, std::memory_order_relaxed);
          }
          prev = it.key().ToString();
          ++seen;
        }
      }
    });
  }

  std::thread writer([&] {
    Random rng(9);
    while (!stop.load(std::memory_order_relaxed)) {
      std::unique_lock<std::shared_mutex> lock(latch);
      // Churn only the upper half of the key space.
      const int k = kKeys / 2 + static_cast<int>(rng.Next() % (kKeys / 2));
      if (rng.Next() % 2 == 0) {
        (void)tree.Put(Slice(Key(k)), Slice("churn"));
      } else {
        (void)tree.Delete(Slice(Key(k)));
      }
    }
  });

  for (std::thread& r : readers) r.join();
  stop.store(true, std::memory_order_relaxed);
  writer.join();
  EXPECT_EQ(errors.load(), 0);
  ASSERT_TRUE(tree.Validate().ok());
}

TEST(NodeCacheUnitTest, InsertLookupClear) {
  Pager pager(512);
  BufferManager buffers(&pager);
  const PageId id = buffers.Allocate();
  NodeCache cache(&buffers, 1 << 20);

  auto node = std::make_shared<const Node>(Node::MakeLeaf());
  const BufferManager::PageVersion v = buffers.page_version(id);
  cache.Insert(id, v, node);
  EXPECT_EQ(cache.Lookup(id).get(), node.get());

  // A write bump makes the entry stale even though the bytes were cached.
  ASSERT_NE(buffers.FetchForWrite(id), nullptr);
  EXPECT_EQ(cache.Lookup(id), nullptr);
  EXPECT_EQ(cache.entry_count(), 0u);

  // An Insert tagged with a version read before the write is dead on
  // arrival — the self-invalidation that closes the read/write race.
  cache.Insert(id, v, node);
  EXPECT_EQ(cache.Lookup(id), nullptr);

  cache.Insert(id, buffers.page_version(id), node);
  EXPECT_NE(cache.Lookup(id), nullptr);
  cache.Clear();
  EXPECT_EQ(cache.Lookup(id), nullptr);
  EXPECT_EQ(cache.bytes_cached(), 0u);
}

}  // namespace
}  // namespace uindex
