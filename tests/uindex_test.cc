#include <gtest/gtest.h>

#include "core/uindex.h"
#include "tests/example_database.h"

namespace uindex {
namespace {

class UIndexTest : public ::testing::Test {
 protected:
  UIndexTest()
      : pager_(1024), buffers_(&pager_) {}

  std::unique_ptr<UIndex> MakeColorIndex() {
    auto index = std::make_unique<UIndex>(&buffers_, &db_.ids.schema,
                                          db_.coder.get(), db_.ColorSpec());
    Status s = index->BuildFrom(*db_.store);
    EXPECT_TRUE(s.ok()) << s.ToString();
    return index;
  }

  std::unique_ptr<UIndex> MakeAgeIndex() {
    auto index = std::make_unique<UIndex>(&buffers_, &db_.ids.schema,
                                          db_.coder.get(), db_.AgePathSpec());
    Status s = index->BuildFrom(*db_.store);
    EXPECT_TRUE(s.ok()) << s.ToString();
    return index;
  }

  ExampleDatabase db_;
  Pager pager_;
  BufferManager buffers_;
};

TEST_F(UIndexTest, BuildsOneEntryPerVehicle) {
  auto index = MakeColorIndex();
  EXPECT_EQ(index->entry_count(), 6u);
  EXPECT_TRUE(index->btree().Validate().ok());
  EXPECT_TRUE(index->BuildFrom(*db_.store).IsInvalidArgument());
}

TEST_F(UIndexTest, Query1AllRedVehicles) {
  // §3.3 query 1: find all vehicles (of all types) with red color.
  auto index = MakeColorIndex();
  Query q = Query::ExactValue(Value::Str("Red"));
  q.With(ClassSelector::Subtree(db_.ids.vehicle), ValueSlot::Wanted());
  const QueryResult r = std::move(index->Parscan(q)).value();
  const std::vector<Oid> got = r.Distinct(0);
  EXPECT_EQ(got, (std::vector<Oid>{db_.v3, db_.v4}));
}

TEST_F(UIndexTest, Query2RedAutomobilesOnly) {
  // §3.3 query 2: find all automobiles (exact class) with red color.
  auto index = MakeColorIndex();
  Query q = Query::ExactValue(Value::Str("Red"));
  q.With(ClassSelector::Exactly(db_.ids.automobile), ValueSlot::Wanted());
  const QueryResult r = std::move(index->Parscan(q)).value();
  EXPECT_EQ(r.Distinct(0), (std::vector<Oid>{db_.v3}));
}

TEST_F(UIndexTest, Query3AutomobileSubtree) {
  // §3.3 query 3: automobiles and their sub-classes with red color.
  auto index = MakeColorIndex();
  Query q = Query::ExactValue(Value::Str("Red"));
  q.With(ClassSelector::Subtree(db_.ids.automobile), ValueSlot::Wanted());
  const QueryResult r = std::move(index->Parscan(q)).value();
  EXPECT_EQ(r.Distinct(0), (std::vector<Oid>{db_.v3, db_.v4}));
}

TEST_F(UIndexTest, Query4VehiclesExceptCompacts) {
  // §3.3 query 4: vehicles that are NOT compact automobiles, red color.
  auto index = MakeColorIndex();
  Query q = Query::ExactValue(Value::Str("Red"));
  ClassSelector sel = ClassSelector::Subtree(db_.ids.vehicle);
  sel.exclude.push_back({db_.ids.compact_automobile, true});
  q.With(sel, ValueSlot::Wanted());
  const QueryResult r = std::move(index->Parscan(q)).value();
  EXPECT_EQ(r.Distinct(0), (std::vector<Oid>{db_.v3}));
}

TEST_F(UIndexTest, Query5AutomobilesOrTrucks) {
  // §3.3 query 5: automobiles or trucks (with sub-classes), red color.
  auto index = MakeColorIndex();
  Query q = Query::ExactValue(Value::Str("Red"));
  ClassSelector sel;
  sel.include.push_back({db_.ids.automobile, true});
  sel.include.push_back({db_.ids.truck, true});
  q.With(sel, ValueSlot::Wanted());
  const QueryResult r = std::move(index->Parscan(q)).value();
  EXPECT_EQ(r.Distinct(0), (std::vector<Oid>{db_.v3, db_.v4}));
}

TEST_F(UIndexTest, ColorRangeQuery) {
  // §3.3: "all Trucks with colors Blue to Red" — here compacts, Blue..Red.
  auto index = MakeColorIndex();
  Query q = Query::Range(Value::Str("Blue"), Value::Str("Red"));
  q.With(ClassSelector::Exactly(db_.ids.compact_automobile),
         ValueSlot::Wanted());
  const QueryResult r = std::move(index->Parscan(q)).value();
  EXPECT_EQ(r.Distinct(0), (std::vector<Oid>{db_.v4, db_.v5}));
}

TEST_F(UIndexTest, PathIndexBuildsAllInstantiations) {
  auto index = MakeAgeIndex();
  EXPECT_EQ(index->entry_count(), 6u);  // One per vehicle.
  EXPECT_TRUE(index->btree().Validate().ok());
}

TEST_F(UIndexTest, PathQueryVehiclesByPresidentAge) {
  // §3.3 path query 1: vehicles made by a company whose president is 50.
  auto index = MakeAgeIndex();
  Query q = Query::ExactValue(Value::Int(50));
  q.With(ClassSelector::Exactly(db_.ids.employee))
      .With(ClassSelector::Subtree(db_.ids.company))
      .With(ClassSelector::Subtree(db_.ids.vehicle), ValueSlot::Wanted());
  const QueryResult r = std::move(index->Parscan(q)).value();
  EXPECT_EQ(r.Distinct(2), (std::vector<Oid>{db_.v2, db_.v3, db_.v6}));
}

TEST_F(UIndexTest, PathQueryWithBoundCompany) {
  // §3.3 path query 2: same, "for a particular company".
  auto index = MakeAgeIndex();
  Query q = Query::ExactValue(Value::Int(50));
  q.With(ClassSelector::Exactly(db_.ids.employee))
      .With(ClassSelector::Subtree(db_.ids.company),
            ValueSlot::Bound({db_.c2}))
      .With(ClassSelector::Subtree(db_.ids.vehicle), ValueSlot::Wanted());
  const QueryResult r = std::move(index->Parscan(q)).value();
  EXPECT_EQ(r.Distinct(2), (std::vector<Oid>{db_.v2, db_.v3, db_.v6}));

  // Binding a different company yields nothing (president isn't 50).
  Query q2 = Query::ExactValue(Value::Int(50));
  q2.With(ClassSelector::Exactly(db_.ids.employee))
      .With(ClassSelector::Subtree(db_.ids.company),
            ValueSlot::Bound({db_.c1}))
      .With(ClassSelector::Subtree(db_.ids.vehicle), ValueSlot::Wanted());
  EXPECT_TRUE(std::move(index->Parscan(q2)).value().rows.empty());
}

TEST_F(UIndexTest, PathQueryWithPreselectedCompanies) {
  // §3.3 path query 3: companies pre-restricted by a select, then joined.
  auto index = MakeAgeIndex();
  Query q = Query::ExactValue(Value::Int(60));
  q.With(ClassSelector::Exactly(db_.ids.employee))
      .With(ClassSelector::Subtree(db_.ids.company),
            ValueSlot::Bound({db_.c2, db_.c3}))
      .With(ClassSelector::Subtree(db_.ids.vehicle), ValueSlot::Wanted());
  const QueryResult r = std::move(index->Parscan(q)).value();
  EXPECT_EQ(r.Distinct(2), (std::vector<Oid>{db_.v4}));
}

TEST_F(UIndexTest, PartialPathQueryCompaniesOnly) {
  // §3.3 path query 4: companies whose president's age is 50, answered
  // from the vehicle path index.
  auto index = MakeAgeIndex();
  Query q = Query::ExactValue(Value::Int(50));
  q.With(ClassSelector::Exactly(db_.ids.employee))
      .With(ClassSelector::Subtree(db_.ids.company), ValueSlot::Wanted());
  const QueryResult r = std::move(index->Parscan(q)).value();
  EXPECT_EQ(r.Distinct(1), (std::vector<Oid>{db_.c2}));
}

TEST_F(UIndexTest, CombinedQueryJapaneseAutoCompanies) {
  // §3.3 combined index: vehicles made by Japanese auto companies whose
  // president's age is 45.
  auto index = MakeAgeIndex();
  Query q = Query::ExactValue(Value::Int(45));
  q.With(ClassSelector::Any())
      .With(ClassSelector::Subtree(db_.ids.japanese_auto_company))
      .With(ClassSelector::Subtree(db_.ids.vehicle), ValueSlot::Wanted());
  const QueryResult r = std::move(index->Parscan(q)).value();
  EXPECT_EQ(r.Distinct(2), (std::vector<Oid>{db_.v1, db_.v5}));
}

TEST_F(UIndexTest, AgeRangeQuery) {
  // "President's age above 50": range [51, 200].
  auto index = MakeAgeIndex();
  Query q = Query::Range(Value::Int(51), Value::Int(200));
  q.With(ClassSelector::Exactly(db_.ids.employee))
      .With(ClassSelector::Subtree(db_.ids.company))
      .With(ClassSelector::Subtree(db_.ids.vehicle), ValueSlot::Wanted());
  const QueryResult r = std::move(index->Parscan(q)).value();
  EXPECT_EQ(r.Distinct(2), (std::vector<Oid>{db_.v4}));  // c3/e2 is 60.
}

TEST_F(UIndexTest, ForwardScanAgreesWithParscan) {
  auto color = MakeColorIndex();
  auto age = MakeAgeIndex();
  std::vector<Query> color_queries;
  {
    Query q = Query::ExactValue(Value::Str("White"));
    q.With(ClassSelector::Subtree(db_.ids.vehicle), ValueSlot::Wanted());
    color_queries.push_back(q);
    Query q2 = Query::Range(Value::Str("Blue"), Value::Str("White"));
    q2.With(ClassSelector::Subtree(db_.ids.automobile), ValueSlot::Wanted());
    color_queries.push_back(q2);
  }
  for (const Query& q : color_queries) {
    const QueryResult a = std::move(color->Parscan(q)).value();
    const QueryResult b = std::move(color->ForwardScan(q)).value();
    EXPECT_EQ(a.rows, b.rows);
  }
  Query q = Query::Range(Value::Int(45), Value::Int(60));
  q.With(ClassSelector::Exactly(db_.ids.employee))
      .With(ClassSelector::Subtree(db_.ids.auto_company))
      .With(ClassSelector::Subtree(db_.ids.vehicle), ValueSlot::Wanted());
  EXPECT_EQ(std::move(age->Parscan(q)).value().rows,
            std::move(age->ForwardScan(q)).value().rows);
}

TEST_F(UIndexTest, EntriesThroughEnumeratesAffectedPaths) {
  auto index = MakeAgeIndex();
  // Through company c2: one entry per vehicle made by c2.
  const auto through_c2 =
      std::move(index->EntriesThrough(*db_.store, db_.c2)).value();
  EXPECT_EQ(through_c2.size(), 3u);
  // Through employee e1 (president of c2): same three.
  const auto through_e1 =
      std::move(index->EntriesThrough(*db_.store, db_.e1)).value();
  EXPECT_EQ(through_e1.size(), 3u);
  // Through a single vehicle: exactly one.
  const auto through_v1 =
      std::move(index->EntriesThrough(*db_.store, db_.v1)).value();
  EXPECT_EQ(through_v1.size(), 1u);
}

TEST_F(UIndexTest, ExactClassPathIndexIgnoresSubclassInstances) {
  // include_subclasses = false: the plain Kim/Bertino path semantics.
  PathSpec spec = db_.AgePathSpec();
  spec.include_subclasses = false;
  UIndex index(&buffers_, &db_.ids.schema, db_.coder.get(), spec);
  ASSERT_TRUE(index.BuildFrom(*db_.store).ok());
  // Only v1 is an exact Vehicle, but c1 is a strict subclass of Company,
  // so no complete exact-class instantiation exists at all.
  EXPECT_EQ(index.entry_count(), 0u);
}

TEST_F(UIndexTest, IntValueRangeReflectsIndexedValues) {
  auto index = MakeAgeIndex();
  const auto range = std::move(index->IntValueRange()).value();
  EXPECT_EQ(range.first, 45);   // Subaru's president.
  EXPECT_EQ(range.second, 60);  // Renault's president.
  // String index refuses.
  auto color = MakeColorIndex();
  EXPECT_TRUE(color->IntValueRange().status().IsNotSupported());
  // Empty index reports NotFound.
  Pager pager(1024);
  BufferManager buffers(&pager);
  UIndex empty(&buffers, &db_.ids.schema, db_.coder.get(),
               db_.AgePathSpec());
  EXPECT_TRUE(empty.IntValueRange().status().IsNotFound());
}

TEST_F(UIndexTest, RebuildMatchesFreshBuild) {
  auto index = MakeAgeIndex();
  const uint64_t entries = index->entry_count();
  // Mutate the store directly (index now stale), then rebuild.
  ASSERT_TRUE(
      db_.store->SetAttr(db_.e1, "Age", Value::Int(51)).ok());
  ASSERT_TRUE(index->Rebuild(*db_.store).ok());
  EXPECT_EQ(index->entry_count(), entries);
  Query q = Query::ExactValue(Value::Int(51));
  q.With(ClassSelector::Exactly(db_.ids.employee))
      .With(ClassSelector::Subtree(db_.ids.company))
      .With(ClassSelector::Subtree(db_.ids.vehicle), ValueSlot::Wanted());
  EXPECT_EQ(std::move(index->Parscan(q)).value().Distinct(2),
            (std::vector<Oid>{db_.v2, db_.v3, db_.v6}));
  EXPECT_TRUE(index->btree().Validate().ok());
}

TEST_F(UIndexTest, MultiValuedReferenceFansOut) {
  // A vehicle made by two companies indexes once per manufacturer (§4.3).
  ASSERT_TRUE(db_.store
                  ->SetAttr(db_.v1, "manufactured-by",
                            Value::RefSet({db_.c1, db_.c2}))
                  .ok());
  auto index = MakeAgeIndex();
  EXPECT_EQ(index->entry_count(), 7u);
  Query q = Query::ExactValue(Value::Int(50));
  q.With(ClassSelector::Exactly(db_.ids.employee))
      .With(ClassSelector::Subtree(db_.ids.company))
      .With(ClassSelector::Subtree(db_.ids.vehicle), ValueSlot::Wanted());
  const QueryResult r = std::move(index->Parscan(q)).value();
  EXPECT_EQ(r.Distinct(2),
            (std::vector<Oid>{db_.v1, db_.v2, db_.v3, db_.v6}));
}

}  // namespace
}  // namespace uindex
