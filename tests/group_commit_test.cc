#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "db/commit_queue.h"
#include "db/database.h"
#include "db/journal.h"
#include "storage/env/fault_env.h"

namespace uindex {
namespace {

using OpKind = FaultInjectingEnv::OpKind;

uint64_t CountSyncs(const FaultInjectingEnv& env) {
  uint64_t n = 0;
  for (const FaultInjectingEnv::OpRecord& op : env.trace()) {
    if (op.kind == OpKind::kSync) ++n;
  }
  return n;
}

JournalRecord SetAttrRecord(Oid oid, int64_t v) {
  JournalRecord record;
  record.op = JournalRecord::Op::kSetAttr;
  record.oid = oid;
  record.name = "price";
  record.value = Value::Int(v);
  return record;
}

class CommitPipelineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    JournalOptions jopts;
    jopts.sync_on_append = false;  // Group commit: the pipeline syncs.
    journal_ = std::move(
        Journal::OpenForAppend(&env_, "/journal", 0, jopts)).value();
    pipeline_.Attach(journal_.get());
    base_syncs_ = CountSyncs(env_);
  }

  /// Appends one record under the writer serialization and returns its
  /// commit ticket.
  uint64_t Append(int64_t v) {
    std::lock_guard<std::mutex> lock(writer_mu_);
    EXPECT_TRUE(journal_->Append(SetAttrRecord(1, v)).ok());
    return pipeline_.OnAppended();
  }

  uint64_t SyncsSinceSetup() { return CountSyncs(env_) - base_syncs_; }

  FaultInjectingEnv env_;
  std::unique_ptr<Journal> journal_;
  CommitPipeline pipeline_;
  std::mutex writer_mu_;
  uint64_t base_syncs_ = 0;
};

TEST_F(CommitPipelineTest, OneSyncCoversAWholeBatch) {
  for (int i = 0; i < 5; ++i) Append(i);
  EXPECT_EQ(pipeline_.appended_seq(), 5u);
  EXPECT_EQ(pipeline_.synced_seq(), 0u);
  EXPECT_EQ(SyncsSinceSetup(), 0u);  // Appends write+flush, never sync.

  // The first waiter leads: one fdatasync makes all five durable.
  ASSERT_TRUE(pipeline_.WaitDurable(5).ok());
  EXPECT_EQ(pipeline_.synced_seq(), 5u);
  EXPECT_EQ(SyncsSinceSetup(), 1u);

  // Already-covered tickets return without touching the file.
  ASSERT_TRUE(pipeline_.WaitDurable(3).ok());
  EXPECT_EQ(SyncsSinceSetup(), 1u);

  // Everything acked really is on the (simulated) durable media.
  env_.Reboot();
  Journal::Replay replay =
      std::move(Journal::ReadAll(&env_, "/journal")).value();
  EXPECT_EQ(replay.records.size(), 5u);
}

TEST_F(CommitPipelineTest, ZeroTicketIsANoOp) {
  ASSERT_TRUE(pipeline_.WaitDurable(0).ok());
  EXPECT_EQ(SyncsSinceSetup(), 0u);
}

TEST_F(CommitPipelineTest, DetachedPipelineHandsOutZeroTickets) {
  pipeline_.Attach(nullptr);
  EXPECT_EQ(pipeline_.OnAppended(), 0u);
  ASSERT_TRUE(pipeline_.WaitDurable(0).ok());
}

TEST_F(CommitPipelineTest, ConcurrentCommittersBatchTheirSyncs) {
  constexpr int kWriters = 8;
  constexpr int kCommitsPerWriter = 25;
  std::atomic<int> failures{0};
  std::vector<std::thread> writers;
  writers.reserve(kWriters);
  for (int t = 0; t < kWriters; ++t) {
    writers.emplace_back([&, t] {
      for (int i = 0; i < kCommitsPerWriter; ++i) {
        const uint64_t seq = Append(t * kCommitsPerWriter + i);
        if (!pipeline_.WaitDurable(seq).ok()) failures.fetch_add(1);
      }
    });
  }
  for (std::thread& w : writers) w.join();

  constexpr uint64_t kTotal = kWriters * kCommitsPerWriter;
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(pipeline_.appended_seq(), kTotal);
  EXPECT_EQ(pipeline_.synced_seq(), kTotal);
  // Never more syncs than commits; batching can only reduce the count.
  EXPECT_GE(SyncsSinceSetup(), 1u);
  EXPECT_LE(SyncsSinceSetup(), kTotal);

  env_.Reboot();
  Journal::Replay replay =
      std::move(Journal::ReadAll(&env_, "/journal")).value();
  EXPECT_EQ(replay.records.size(), kTotal);
}

TEST_F(CommitPipelineTest, LeaderSyncFailurePoisonsTheWholeBatch) {
  for (int i = 0; i < 3; ++i) Append(i);
  env_.FailKthOpOfKind(OpKind::kSync, 1);

  // The leader's sync fails: its own ticket and every ticket the batch
  // covered get the same sticky error — fail-stop, no partial acks.
  EXPECT_FALSE(pipeline_.WaitDurable(2).ok());
  EXPECT_FALSE(pipeline_.WaitDurable(1).ok());
  EXPECT_FALSE(pipeline_.WaitDurable(3).ok());
  EXPECT_TRUE(journal_->poisoned());

  // Later committers cannot even append — the journal is poisoned.
  EXPECT_FALSE(journal_->Append(SetAttrRecord(1, 99)).ok());
  EXPECT_FALSE(pipeline_.SyncAll().ok());
}

TEST_F(CommitPipelineTest, AttachAfterDrainKeepsTicketsValid) {
  const uint64_t seq = Append(7);
  ASSERT_TRUE(pipeline_.SyncAll().ok());

  // Checkpoint-style rotation: drain, then point at a fresh journal.
  JournalOptions jopts;
  jopts.sync_on_append = false;
  std::unique_ptr<Journal> fresh = std::move(
      Journal::OpenForAppend(&env_, "/journal2", 1, jopts)).value();
  pipeline_.Attach(fresh.get());

  // A committer that appended before the rotation but waits after it must
  // not block (its record was covered by the drain) and must not sync the
  // new journal.
  const uint64_t syncs = CountSyncs(env_);
  ASSERT_TRUE(pipeline_.WaitDurable(seq).ok());
  EXPECT_EQ(CountSyncs(env_), syncs);
}

// ------------------------------------------------------- database level

class GroupCommitDatabaseTest : public ::testing::Test {
 protected:
  std::unique_ptr<Database> MakeDb(bool group_commit) {
    DatabaseOptions options;
    options.env = &env_;
    options.group_commit = group_commit;
    auto db = std::make_unique<Database>(options);
    // Journal first: recovery starts from an empty snapshot, so the DDL
    // must be in the log too.
    EXPECT_TRUE(db->EnableJournal("/journal").ok());
    cls_ = db->CreateClass("Item").value();
    EXPECT_TRUE(db->CreateIndex(PathSpec::ClassHierarchy(
                                    cls_, "price", Value::Kind::kInt))
                    .ok());
    return db;
  }

  size_t CountItems(Database& db) {
    Database::Selection sel;
    sel.cls = cls_;
    sel.attr = "price";
    sel.lo = Value::Int(0);
    sel.hi = Value::Int(1u << 20);
    return std::move(db.Select(sel)).value().oids.size();
  }

  FaultInjectingEnv env_;
  ClassId cls_ = kInvalidClassId;
};

TEST_F(GroupCommitDatabaseTest, ConcurrentDmlBatchesAndRecoversExactly) {
  constexpr int kWriters = 8;
  constexpr int kItemsPerWriter = 10;
  std::unique_ptr<Database> db = MakeDb(/*group_commit=*/true);

  const uint64_t syncs_before = CountSyncs(env_);
  const uint64_t records_before = db->buffers().stats().commit_records.load();
  const uint64_t batches_before = db->buffers().stats().commit_batches.load();
  const uint64_t seq_before = db->commit_pipeline().appended_seq();
  std::atomic<int> failures{0};
  std::vector<std::thread> writers;
  writers.reserve(kWriters);
  for (int t = 0; t < kWriters; ++t) {
    writers.emplace_back([&] {
      for (int i = 0; i < kItemsPerWriter; ++i) {
        Result<Oid> oid = db->CreateObject(cls_);
        if (!oid.ok() ||
            !db->SetAttr(oid.value(), "price", Value::Int(i)).ok()) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& w : writers) w.join();
  ASSERT_EQ(failures.load(), 0);

  // Two journal records per item; each acked commit is covered by exactly
  // one leader sync, and every sync since EnableJournal was a leader sync.
  constexpr uint64_t kRecords = 2ull * kWriters * kItemsPerWriter;
  const IoStats& stats = db->buffers().stats();
  const uint64_t batches = stats.commit_batches.load() - batches_before;
  EXPECT_EQ(stats.commit_records.load() - records_before, kRecords);
  EXPECT_GE(batches, 1u);
  EXPECT_LE(batches, kRecords);
  EXPECT_EQ(CountSyncs(env_) - syncs_before, batches);
  EXPECT_EQ(db->commit_pipeline().appended_seq(), seq_before + kRecords);
  EXPECT_EQ(db->commit_pipeline().synced_seq(), seq_before + kRecords);

  // Every acked mutation is durable: a power cut now loses nothing.
  db.reset();
  env_.Reboot();
  Result<std::unique_ptr<Database>> reopened = Database::OpenDurable(
      "/snapshot", "/journal", [this] {
        DatabaseOptions options;
        options.env = &env_;
        return options;
      }());
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ(CountItems(*reopened.value()),
            static_cast<size_t>(kWriters * kItemsPerWriter));
}

TEST_F(GroupCommitDatabaseTest, SyncEachModeLeavesThePipelineInert) {
  std::unique_ptr<Database> db = MakeDb(/*group_commit=*/false);
  const uint64_t syncs_before = CountSyncs(env_);
  const Oid oid = db->CreateObject(cls_).value();
  ASSERT_TRUE(db->SetAttr(oid, "price", Value::Int(5)).ok());
  // Classic journal: one fdatasync per append, none from the pipeline.
  EXPECT_EQ(CountSyncs(env_) - syncs_before, 2u);
  EXPECT_EQ(db->buffers().stats().commit_batches.load(), 0u);
  EXPECT_EQ(db->commit_pipeline().appended_seq(), 0u);
}

TEST_F(GroupCommitDatabaseTest, FailedLeaderSyncFailsEveryLaterCommit) {
  std::unique_ptr<Database> db = MakeDb(/*group_commit=*/true);
  const Oid oid = db->CreateObject(cls_).value();

  env_.FailKthOpOfKind(OpKind::kSync, 1);
  // The commit whose leader sync failed is rejected...
  EXPECT_FALSE(db->SetAttr(oid, "price", Value::Int(1)).ok());
  // ...and the journal is poisoned, so no later DML can ack either
  // (fail-stop: the file may end in a frame recovery would replay even
  // though its committer was told "failed").
  EXPECT_FALSE(db->SetAttr(oid, "price", Value::Int(2)).ok());
  EXPECT_FALSE(db->CreateObject(cls_).ok());
}

}  // namespace
}  // namespace uindex
