#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "db/database.h"
#include "db/session.h"
#include "exec/execution_context.h"
#include "storage/prefetch.h"

namespace uindex {
namespace {

// Stress over the Database façade with the prefetch pipeline live: reader
// sessions drive iterator readahead and Parscan child prefetch while a
// writer mutates, so every DDL/DML entry point exercises the writers-drain
// contract (QuiescePrefetch under the exclusive latch). Build with
// -DUINDEX_SANITIZE=thread to run under TSan (the CI matrix does).
class PrefetchStressTest : public ::testing::Test {
 protected:
  void SetUp() override {
    DatabaseOptions opts;
    opts.prefetch_threads = 4;
    db_ = std::make_unique<Database>(opts);
    root_ = db_->CreateClass("Part").value();
    for (int i = 0; i < 4; ++i) {
      subs_.push_back(
          db_->CreateSubclass("Part" + std::to_string(i), root_).value());
    }
    ASSERT_TRUE(db_->CreateIndex(PathSpec::ClassHierarchy(
                                     root_, "weight", Value::Kind::kInt))
                    .ok());
    for (int i = 0; i < kObjects; ++i) {
      const Oid oid = db_->CreateObject(subs_[i % subs_.size()]).value();
      ASSERT_TRUE(
          db_->SetAttr(oid, "weight", Value::Int(i % kWeights)).ok());
    }
    if (db_->prefetcher() == nullptr) {
      GTEST_SKIP() << "UINDEX_PREFETCH=off: pipeline disabled";
    }
    // A bounded pool smaller than the working set: in the default unbounded
    // epoch everything loaded above stays resident and no read — demand or
    // background — would ever happen again. With eviction, queries miss and
    // readahead/child prefetch have real work.
    db_->buffers().SetCapacity(64);
  }

  Database::Selection WeightRange(int64_t lo, int64_t hi) const {
    Database::Selection sel;
    sel.cls = root_;
    sel.with_subclasses = true;
    sel.attr = "weight";
    sel.lo = Value::Int(lo);
    sel.hi = Value::Int(hi);
    return sel;
  }

  static constexpr int kObjects = 3000;
  static constexpr int kWeights = 89;
  std::unique_ptr<Database> db_;
  ClassId root_ = kInvalidClassId;
  std::vector<ClassId> subs_;
};

TEST_F(PrefetchStressTest, ReadersWithPrefetchRacingOneWriter) {
  constexpr int kReaders = 4;
  constexpr int kWrites = 250;
  constexpr int kQueriesPerReader = 50;

  std::atomic<int> failures{0};
  exec::ExecutionContext ctx(static_cast<size_t>(3));

  // The writer hits CreateObject/SetAttr/DeleteObject: each takes the
  // exclusive latch and drains the scheduler, so background reads from the
  // racing readers never overlap a page mutation.
  std::thread writer([&] {
    for (int i = 0; i < kWrites; ++i) {
      Result<Oid> oid = db_->CreateObject(subs_[i % subs_.size()]);
      if (!oid.ok() ||
          !db_->SetAttr(oid.value(), "weight", Value::Int(i % kWeights))
               .ok()) {
        failures.fetch_add(1);
        continue;
      }
      if (i % 3 == 0 && !db_->DeleteObject(oid.value()).ok()) {
        failures.fetch_add(1);
      }
    }
  });

  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int t = 0; t < kReaders; ++t) {
    readers.emplace_back([&, t] {
      // Odd readers additionally run the parallel Parscan so worker shards
      // and the I/O pool share the scheduler's dedup'd flights.
      Session session(db_.get(), t % 2 == 1 ? &ctx : nullptr);
      for (int q = 0; q < kQueriesPerReader; ++q) {
        const int64_t lo = q % kWeights;
        // Wide ranges: long leaf chains, so readahead stays armed across
        // many leaves while the writer keeps splitting them.
        Result<Database::SelectResult> r =
            session.Select(WeightRange(lo, lo + kWeights / 2));
        if (!r.ok()) failures.fetch_add(1);
      }
    });
  }
  for (std::thread& t : readers) t.join();
  writer.join();
  EXPECT_EQ(failures.load(), 0);

  // Quiesced: counters balance once nothing is in flight and the answer
  // matches a fresh serial read.
  db_->prefetcher()->Drain();
  Result<Database::SelectResult> final_read =
      db_->Select(WeightRange(0, kWeights));
  ASSERT_TRUE(final_read.ok());
  EXPECT_TRUE(final_read.value().used_index);
}

TEST_F(PrefetchStressTest, TeardownWithInFlightReadsIsClean) {
  // Queue a burst of reads through real queries, then destroy the Database
  // immediately: ~Database must drain the scheduler before the pool,
  // buffers, and pager die (the satellite-6 ordering contract).
  Session session(db_.get());
  for (int q = 0; q < 8; ++q) {
    ASSERT_TRUE(session.Select(WeightRange(0, kWeights)).ok());
  }
  db_.reset();  // Leak/UAF here would trip ASan/TSan legs.
}

TEST_F(PrefetchStressTest, CountersBalanceAfterQuiesce) {
  Session session(db_.get());
  for (int q = 0; q < 20; ++q) {
    const int64_t lo = (q * 7) % kWeights;
    ASSERT_TRUE(session.Select(WeightRange(lo, lo + 20)).ok());
  }
  db_->prefetcher()->Drain();
  // SetCapacity resets the epoch in every mode, reclassifying any staged-
  // but-unconsumed reads as wasted so the ledger can balance.
  db_->buffers().SetCapacity(64);
  const IoStats& stats = db_->buffers().stats();
  const uint64_t issued =
      stats.prefetch_issued.load(std::memory_order_relaxed);
  const uint64_t hits = stats.prefetch_hits.load(std::memory_order_relaxed);
  const uint64_t wasted =
      stats.prefetch_wasted.load(std::memory_order_relaxed);
  EXPECT_EQ(issued, hits + wasted);
  EXPECT_GT(issued, 0u);
}

}  // namespace
}  // namespace uindex
