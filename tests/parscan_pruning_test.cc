#include <gtest/gtest.h>

#include "core/uindex.h"
#include "tests/example_database.h"
#include "workload/database_generator.h"

namespace uindex {
namespace {

// Tests for the advanced Algorithm-1 behaviours: parent-node prefix
// pruning (paper §3.3 "lookup the uncompressed part of the key in the
// parent node"), distinct-prefix skipping for partial-path queries, and
// explicit value sets.

class PrefixExcludesTest : public ::testing::Test {
 protected:
  PrefixExcludesTest() {
    spec_.classes = {db_.ids.vehicle, db_.ids.company, db_.ids.employee};
    spec_.ref_attrs = {"manufactured-by", "president"};
    spec_.indexed_attr = "Age";
    spec_.value_kind = Value::Kind::kInt;
    encoder_ = std::make_unique<KeyEncoder>(&spec_, db_.coder.get());
  }

  CompiledQuery Compile(const Query& q) {
    return std::move(
        CompiledQuery::Compile(q, *encoder_, db_.ids.schema)).value();
  }

  std::string Enc(int64_t v) {
    return encoder_->EncodeAttrValue(Value::Int(v));
  }

  ExampleDatabase db_;
  PathSpec spec_;
  std::unique_ptr<KeyEncoder> encoder_;
};

TEST_F(PrefixExcludesTest, AttributePartialPrefix) {
  Query q = Query::Range(Value::Int(50), Value::Int(60));
  const CompiledQuery cq = Compile(q);
  // A prefix that is a strict prefix of enc(55): undecided (not excluded).
  const std::string e55 = Enc(55);
  EXPECT_FALSE(cq.PrefixExcludes(Slice(e55.data(), 5)));
  // enc(200)'s prefix bytes differ above the range: excluded.
  const std::string e200 = Enc(200);
  EXPECT_TRUE(cq.PrefixExcludes(Slice(e200)));
  // Full in-range image passes.
  EXPECT_FALSE(cq.PrefixExcludes(Slice(e55)));
  // Full out-of-range image is excluded.
  EXPECT_TRUE(cq.PrefixExcludes(Slice(Enc(49))));
  EXPECT_TRUE(cq.PrefixExcludes(Slice(Enc(61))));
}

TEST_F(PrefixExcludesTest, ValueSetPrefixes) {
  Query q = Query::AnyOf({Value::Int(50), Value::Int(60)});
  const CompiledQuery cq = Compile(q);
  EXPECT_FALSE(cq.PrefixExcludes(Slice(Enc(50))));
  EXPECT_FALSE(cq.PrefixExcludes(Slice(Enc(60))));
  EXPECT_TRUE(cq.PrefixExcludes(Slice(Enc(55))));
}

TEST_F(PrefixExcludesTest, CompleteComponentChecks) {
  Query q = Query::ExactValue(Value::Int(50));
  q.With(ClassSelector::Exactly(db_.ids.employee))
      .With(ClassSelector::Subtree(db_.ids.auto_company));
  const CompiledQuery cq = Compile(q);

  auto prefix_with = [&](ClassId mid_cls) {
    std::string p = Enc(50);
    p += db_.coder->CodeOf(db_.ids.employee);
    p.push_back('$');
    p += std::string("\x00\x00\x00\x01", 4);
    p += db_.coder->CodeOf(mid_cls);
    p.push_back('$');
    p += std::string("\x00\x00\x00\x02", 4);
    return p;
  };
  // A company component inside the AutoCompany subtree: allowed.
  EXPECT_FALSE(cq.PrefixExcludes(Slice(prefix_with(db_.ids.auto_company))));
  EXPECT_FALSE(cq.PrefixExcludes(
      Slice(prefix_with(db_.ids.japanese_auto_company))));
  // TruckCompany is outside the subtree: the whole gap is pruned.
  EXPECT_TRUE(cq.PrefixExcludes(Slice(prefix_with(db_.ids.truck_company))));
  // Plain Company (the superclass) is not in the AutoCompany subtree.
  EXPECT_TRUE(cq.PrefixExcludes(Slice(prefix_with(db_.ids.company))));
}

TEST_F(PrefixExcludesTest, PartialComponentIntervalCheck) {
  Query q = Query::ExactValue(Value::Int(50));
  q.With(ClassSelector::Exactly(db_.ids.employee));
  const CompiledQuery cq = Compile(q);

  // Prefix ending inside the first component's code bytes.
  std::string good = Enc(50);
  good += "C1";  // Employee's code, no separator yet: undecided.
  EXPECT_FALSE(cq.PrefixExcludes(Slice(good)));

  std::string bad = Enc(50);
  bad += "C2";  // Company's code: cannot extend into Employee exact.
  EXPECT_TRUE(cq.PrefixExcludes(Slice(bad)));
}

TEST_F(PrefixExcludesTest, BoundOidCheck) {
  Query q = Query::ExactValue(Value::Int(50));
  q.With(ClassSelector::Exactly(db_.ids.employee), ValueSlot::Bound({7}));
  const CompiledQuery cq = Compile(q);
  auto prefix_for = [&](Oid oid) {
    std::string p = Enc(50);
    p += "C1";
    p.push_back('$');
    char buf[4] = {0, 0, 0, static_cast<char>(oid)};
    p.append(buf, 4);
    return p;
  };
  EXPECT_FALSE(cq.PrefixExcludes(Slice(prefix_for(7))));
  EXPECT_TRUE(cq.PrefixExcludes(Slice(prefix_for(8))));
}

TEST_F(PrefixExcludesTest, QueriedPrefixLength) {
  Query q = Query::ExactValue(Value::Int(50));
  q.With(ClassSelector::Exactly(db_.ids.employee))
      .With(ClassSelector::Subtree(db_.ids.company), ValueSlot::Wanted());
  const CompiledQuery cq = Compile(q);
  EXPECT_TRUE(cq.is_partial());

  const std::string key = encoder_->EncodeEntry(
      Value::Int(50), {{db_.ids.employee, 1},
                       {db_.ids.auto_company, 2},
                       {db_.ids.automobile, 3}});
  const size_t len = std::move(cq.QueriedPrefixLength(Slice(key))).value();
  // 8 attr + "C1"+$+oid (7) + "C2A"+$+oid (8).
  EXPECT_EQ(len, 8u + 7 + 8);

  Query full = Query::ExactValue(Value::Int(50));
  full.With(ClassSelector::Any())
      .With(ClassSelector::Any())
      .With(ClassSelector::Any());
  EXPECT_FALSE(Compile(full).is_partial());
}

// ---------------------------------------------------------------------------
// Behavioural tests on a sizeable database.
// ---------------------------------------------------------------------------

class PruningBehaviourTest : public ::testing::Test {
 protected:
  PruningBehaviourTest() : pager_(1024), buffers_(&pager_) {
    PaperDatabaseConfig cfg;
    cfg.num_vehicles = 6000;
    Status s = GeneratePaperDatabase(cfg, &db_);
    EXPECT_TRUE(s.ok());
    PathSpec spec;
    spec.classes = {db_.ids.vehicle, db_.ids.company, db_.ids.employee};
    spec.ref_attrs = {"manufactured-by", "president"};
    spec.indexed_attr = "Age";
    spec.value_kind = Value::Kind::kInt;
    // The paper's Table-1 node size: small nodes make clusters span many
    // pages, which is what the parent-node pruning exploits.
    BTreeOptions options;
    options.max_entries_per_node = 10;
    index_ = std::make_unique<UIndex>(&buffers_, &db_.ids.schema,
                                      db_.coder.get(), spec, options);
    s = index_->BuildFrom(*db_.store);
    EXPECT_TRUE(s.ok());
  }

  PaperDatabase db_;
  Pager pager_;
  BufferManager buffers_;
  std::unique_ptr<UIndex> index_;
};

TEST_F(PruningBehaviourTest, PartialPathQueryIsFarCheaperThanForward) {
  // "Companies whose president's age is 50" — Parscan skips each
  // company's vehicle cluster; the forward sweep reads it all.
  Query q = Query::ExactValue(Value::Int(50));
  q.With(ClassSelector::Exactly(db_.ids.employee))
      .With(ClassSelector::Subtree(db_.ids.company), ValueSlot::Wanted());

  QueryCost parscan_cost(&buffers_);
  const QueryResult parscan = std::move(index_->Parscan(q)).value();
  const uint64_t parscan_pages = parscan_cost.PagesRead();
  QueryCost forward_cost(&buffers_);
  const QueryResult forward = std::move(index_->ForwardScan(q)).value();
  const uint64_t forward_pages = forward_cost.PagesRead();

  EXPECT_EQ(parscan.rows, forward.rows);
  EXPECT_FALSE(parscan.rows.empty());
  // Each row has only the queried positions.
  EXPECT_EQ(parscan.rows[0].size(), 2u);
  // The vehicle clusters dominate the forward cost.
  EXPECT_LT(parscan_pages * 2, forward_pages);
}

TEST_F(PruningBehaviourTest, MidPathClassRestrictionPrunesSubtrees) {
  // Combined query: trucks made by truck companies. The (age, employee)
  // clusters contain mostly other company/vehicle classes, which prefix
  // pruning skips.
  Query q = Query::Range(Value::Int(20), Value::Int(70));
  q.With(ClassSelector::Exactly(db_.ids.employee))
      .With(ClassSelector::Exactly(db_.ids.truck_company))
      .With(ClassSelector::Subtree(db_.ids.truck), ValueSlot::Wanted());

  QueryCost parscan_cost(&buffers_);
  const QueryResult parscan = std::move(index_->Parscan(q)).value();
  const uint64_t parscan_pages = parscan_cost.PagesRead();
  QueryCost forward_cost(&buffers_);
  const QueryResult forward = std::move(index_->ForwardScan(q)).value();
  const uint64_t forward_pages = forward_cost.PagesRead();

  EXPECT_EQ(parscan.rows, forward.rows);
  EXPECT_LT(parscan_pages * 2, forward_pages);
}

TEST_F(PruningBehaviourTest, ValueSetQueriesMatchRangeSemantics) {
  // AnyOf{40,45} must equal the union of two exact queries.
  Query set_query = Query::AnyOf({Value::Int(40), Value::Int(45)});
  set_query.With(ClassSelector::Exactly(db_.ids.employee))
      .With(ClassSelector::Subtree(db_.ids.company))
      .With(ClassSelector::Subtree(db_.ids.vehicle), ValueSlot::Wanted());
  const QueryResult both = std::move(index_->Parscan(set_query)).value();

  size_t total = 0;
  for (const int64_t v : {40, 45}) {
    Query q = Query::ExactValue(Value::Int(v));
    q.With(ClassSelector::Exactly(db_.ids.employee))
        .With(ClassSelector::Subtree(db_.ids.company))
        .With(ClassSelector::Subtree(db_.ids.vehicle), ValueSlot::Wanted());
    total += std::move(index_->Parscan(q)).value().rows.size();
  }
  EXPECT_EQ(both.rows.size(), total);
  EXPECT_EQ(std::move(index_->ForwardScan(set_query)).value().rows.size(),
            total);
}

}  // namespace
}  // namespace uindex
