#include <gtest/gtest.h>

#include "core/key_encoding.h"
#include "util/random.h"
#include "workload/paper_schema.h"

namespace uindex {
namespace {

class KeyEncodingTest : public ::testing::Test {
 protected:
  KeyEncodingTest()
      : p_(PaperSchema::Build()),
        coder_(std::move(ClassCoder::Assign(p_.schema)).value()) {}

  PathSpec PathVehicleCompanyEmployee() const {
    PathSpec spec;
    spec.classes = {p_.vehicle, p_.company, p_.employee};
    spec.ref_attrs = {"manufactured-by", "president"};
    spec.indexed_attr = "Age";
    spec.value_kind = Value::Kind::kInt;
    return spec;
  }

  PaperSchema p_;
  ClassCoder coder_;
};

TEST_F(KeyEncodingTest, RoundTripsPathEntries) {
  const PathSpec spec = PathVehicleCompanyEmployee();
  const KeyEncoder enc(&spec, &coder_);
  // The paper's example entry: (Age,50) C1$e1 C2$c1 C5A$v2.
  const std::string key = enc.EncodeEntry(
      Value::Int(50),
      {{p_.employee, 11}, {p_.company, 22}, {p_.automobile, 33}});
  Result<DecodedKey> dk = enc.Decode(Slice(key));
  ASSERT_TRUE(dk.ok());
  ASSERT_EQ(dk.value().components.size(), 3u);
  EXPECT_EQ(dk.value().components[0].code, "C1");
  EXPECT_EQ(dk.value().components[0].oid, 11u);
  EXPECT_EQ(dk.value().components[1].code, "C2");
  EXPECT_EQ(dk.value().components[1].oid, 22u);
  EXPECT_EQ(dk.value().components[2].code, "C5A");
  EXPECT_EQ(dk.value().components[2].oid, 33u);
  EXPECT_EQ(dk.value().attr_bytes, enc.EncodeAttrValue(Value::Int(50)));
}

TEST_F(KeyEncodingTest, ValueOrderDominates) {
  const PathSpec spec = PathVehicleCompanyEmployee();
  const KeyEncoder enc(&spec, &coder_);
  const std::string k50 = enc.EncodeEntry(
      Value::Int(50), {{p_.employee, 1}, {p_.company, 1}, {p_.vehicle, 1}});
  const std::string k60 = enc.EncodeEntry(
      Value::Int(60), {{p_.employee, 1}, {p_.company, 1}, {p_.vehicle, 1}});
  EXPECT_TRUE(Slice(k50) < Slice(k60));
}

TEST_F(KeyEncodingTest, ClassHierarchyEntriesClusterInPreorder) {
  // §3.2.1: entries for a value sort by class code, clustering sub-trees.
  PathSpec spec = PathSpec::ClassHierarchy(p_.vehicle, "Color",
                                           Value::Kind::kString);
  const KeyEncoder enc(&spec, &coder_);
  const Value red = Value::Str("Red");
  const std::string k_vehicle = enc.EncodeEntry(red, {{p_.vehicle, 1}});
  const std::string k_auto = enc.EncodeEntry(red, {{p_.automobile, 1}});
  const std::string k_compact =
      enc.EncodeEntry(red, {{p_.compact_automobile, 1}});
  const std::string k_truck = enc.EncodeEntry(red, {{p_.truck, 1}});
  // Preorder: Vehicle < Automobile < CompactAutomobile < ... < Truck.
  EXPECT_TRUE(Slice(k_vehicle) < Slice(k_auto));
  EXPECT_TRUE(Slice(k_auto) < Slice(k_compact));
  EXPECT_TRUE(Slice(k_compact) < Slice(k_truck));
  // A class's own entries precede its first subclass's ('$' < 'A').
  const std::string k_auto_big_oid =
      enc.EncodeEntry(red, {{p_.automobile, 0xFFFFFFFE}});
  EXPECT_TRUE(Slice(k_auto_big_oid) < Slice(k_compact));
}

TEST_F(KeyEncodingTest, PathClusteringMatchesPaperExample) {
  // §3.3: "all entries for the same company are clustered, all entries for
  // the same president are clustered, and all entries for the same age are
  // clustered".
  const PathSpec spec = PathVehicleCompanyEmployee();
  const KeyEncoder enc(&spec, &coder_);
  auto key = [&](Oid e, Oid c, Oid v) {
    return enc.EncodeEntry(Value::Int(50), {{p_.employee, e},
                                            {p_.company, c},
                                            {p_.vehicle, v}});
  };
  // Same president e1, companies c1 < c2; within c1, vehicles cluster.
  EXPECT_TRUE(Slice(key(1, 1, 5)) < Slice(key(1, 1, 9)));
  EXPECT_TRUE(Slice(key(1, 1, 9)) < Slice(key(1, 2, 1)));
  EXPECT_TRUE(Slice(key(1, 2, 7)) < Slice(key(2, 1, 1)));
}

TEST_F(KeyEncodingTest, StringValuesUseTerminator) {
  PathSpec spec = PathSpec::ClassHierarchy(p_.vehicle, "Color",
                                           Value::Kind::kString);
  const KeyEncoder enc(&spec, &coder_);
  // "Red" < "RedX" even though 'C' (code start) < 'X'.
  const std::string a = enc.EncodeEntry(Value::Str("Red"), {{p_.truck, 1}});
  const std::string b =
      enc.EncodeEntry(Value::Str("RedX"), {{p_.vehicle, 1}});
  EXPECT_TRUE(Slice(a) < Slice(b));
  Result<DecodedKey> dk = enc.Decode(Slice(a));
  ASSERT_TRUE(dk.ok());
  EXPECT_EQ(dk.value().components[0].code, "C5B");
}

TEST_F(KeyEncodingTest, DecodeRejectsMalformedKeys) {
  const PathSpec spec = PathVehicleCompanyEmployee();
  const KeyEncoder enc(&spec, &coder_);
  EXPECT_TRUE(enc.Decode(Slice("abc")).status().IsCorruption());
  std::string key = enc.EncodeAttrValue(Value::Int(5));
  key += "C1";  // No separator / oid.
  EXPECT_TRUE(enc.Decode(Slice(key)).status().IsCorruption());
  key += "$XY";  // Truncated oid.
  EXPECT_TRUE(enc.Decode(Slice(key)).status().IsCorruption());
}

TEST_F(KeyEncodingTest, MultiplePathsShareTheTreePrefix) {
  // §3.3 "Multiple Paths": Division/Company/Employee entries interleave
  // with Vehicle/Company/Employee entries, clustered by shared prefix.
  PathSpec vspec = PathVehicleCompanyEmployee();
  PathSpec dspec;
  dspec.classes = {p_.division, p_.company, p_.employee};
  dspec.ref_attrs = {"belongs", "president"};
  dspec.indexed_attr = "Age";
  const KeyEncoder venc(&vspec, &coder_);
  const KeyEncoder denc(&dspec, &coder_);
  const std::string vkey = venc.EncodeEntry(
      Value::Int(50), {{p_.employee, 1}, {p_.company, 2}, {p_.vehicle, 3}});
  const std::string dkey = denc.EncodeEntry(
      Value::Int(50), {{p_.employee, 1}, {p_.company, 2}, {p_.division, 4}});
  // Shared (age, employee, company) prefix; Division C4 < Vehicle C5.
  const size_t shared = Slice(vkey).CommonPrefixLength(Slice(dkey));
  EXPECT_GE(shared, 8u + 2 + 1 + 4 + 2 + 1 + 4);  // attr + C1$oid + C2$oid.
  EXPECT_TRUE(Slice(dkey) < Slice(vkey));
}

TEST_F(KeyEncodingTest, AttrImageLengthForBothKinds) {
  const PathSpec ispec = PathVehicleCompanyEmployee();
  const KeyEncoder ienc(&ispec, &coder_);
  EXPECT_EQ(ienc.AttrImageLength(
                    Slice(ienc.EncodeEntry(Value::Int(1),
                                           {{p_.employee, 1},
                                            {p_.company, 1},
                                            {p_.vehicle, 1}})))
                .value(),
            8u);
  PathSpec sspec = PathSpec::ClassHierarchy(p_.vehicle, "Color",
                                            Value::Kind::kString);
  const KeyEncoder senc(&sspec, &coder_);
  const std::string skey =
      senc.EncodeEntry(Value::Str("Blue"), {{p_.vehicle, 1}});
  EXPECT_EQ(senc.AttrImageLength(Slice(skey)).value(), 5u);  // "Blue\0".
}

}  // namespace
}  // namespace uindex
