// Quickstart: declare a schema, store a few objects, build a U-index on a
// class hierarchy, and run class-hierarchy queries with the parallel
// retrieval algorithm.
//
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdio>

#include "core/uindex.h"
#include "objects/object_store.h"
#include "schema/encoder.h"

using namespace uindex;

int main() {
  // 1. Schema: a small "is-a" hierarchy.  Vehicle <- Car <- SportsCar,
  //    Vehicle <- Truck.
  Schema schema;
  const ClassId vehicle = schema.AddClass("Vehicle").value();
  const ClassId car = schema.AddSubclass("Car", vehicle).value();
  const ClassId sports_car = schema.AddSubclass("SportsCar", car).value();
  const ClassId truck = schema.AddSubclass("Truck", vehicle).value();

  // 2. Class codes (the paper's COD relation): lexicographic order of the
  //    codes equals the preorder of the hierarchy.
  const ClassCoder coder = std::move(ClassCoder::Assign(schema)).value();
  std::printf("codes: Vehicle=%s Car=%s SportsCar=%s Truck=%s\n",
              coder.CodeOf(vehicle).c_str(), coder.CodeOf(car).c_str(),
              coder.CodeOf(sports_car).c_str(), coder.CodeOf(truck).c_str());

  // 3. Objects.
  ObjectStore store(&schema);
  struct Seed {
    ClassId cls;
    int64_t price;
  };
  const Seed seeds[] = {{vehicle, 10}, {car, 25},        {car, 30},
                        {sports_car, 90}, {sports_car, 120}, {truck, 55}};
  for (const Seed& seed : seeds) {
    const Oid oid = store.Create(seed.cls).value();
    Status s = store.SetAttr(oid, "Price", Value::Int(seed.price));
    if (!s.ok()) {
      std::fprintf(stderr, "SetAttr: %s\n", s.ToString().c_str());
      return 1;
    }
  }

  // 4. One U-index over the whole hierarchy, on attribute Price.
  Pager pager(1024);
  BufferManager buffers(&pager);
  UIndex index(&buffers, &schema, &coder,
               PathSpec::ClassHierarchy(vehicle, "Price", Value::Kind::kInt));
  Status s = index.BuildFrom(store);
  if (!s.ok()) {
    std::fprintf(stderr, "BuildFrom: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("indexed %llu objects in one B-tree\n",
              static_cast<unsigned long long>(index.entry_count()));

  // 5. Queries. (a) Every vehicle priced 20..60, whatever its class.
  Query q1 = Query::Range(Value::Int(20), Value::Int(60));
  q1.With(ClassSelector::Subtree(vehicle), ValueSlot::Wanted());
  const QueryResult r1 = std::move(index.Parscan(q1)).value();
  std::printf("vehicles priced 20..60: %zu\n", r1.rows.size());

  // (b) Only the Car sub-tree (cars + sports cars).
  Query q2 = Query::Range(Value::Int(0), Value::Int(1000));
  q2.With(ClassSelector::Subtree(car), ValueSlot::Wanted());
  std::printf("cars incl. subclasses: %zu\n",
              std::move(index.Parscan(q2)).value().rows.size());

  // (c) Cars but NOT sports cars — the paper's exclusion query.
  Query q3 = Query::Range(Value::Int(0), Value::Int(1000));
  ClassSelector sel = ClassSelector::Subtree(car);
  sel.exclude.push_back({sports_car, true});
  q3.With(sel, ValueSlot::Wanted());
  std::printf("plain cars only: %zu\n",
              std::move(index.Parscan(q3)).value().rows.size());

  // 6. Page-read accounting, the paper's metric.
  QueryCost cost(&buffers);
  (void)index.Parscan(q1);
  std::printf("that range query read %llu pages\n",
              static_cast<unsigned long long>(cost.PagesRead()));
  return 0;
}
