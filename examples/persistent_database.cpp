// Durable end-to-end usage of the Database façade: declare a schema, load
// data, build indexes, save everything to one file, reopen it in a second
// "process", and keep querying and mutating — no rebuilds.
//
//   ./build/examples/persistent_database /tmp/dealership.udb

#include <cstdio>

#include "db/database.h"

using namespace uindex;

namespace {

Status BuildAndSave(const std::string& path) {
  Database db;
  const ClassId employee = db.CreateClass("Employee").value();
  const ClassId company = db.CreateClass("Company").value();
  const ClassId vehicle = db.CreateClass("Vehicle").value();
  const ClassId car = db.CreateSubclass("Car", vehicle).value();
  const ClassId truck = db.CreateSubclass("Truck", vehicle).value();
  UINDEX_RETURN_IF_ERROR(
      db.CreateReference(vehicle, company, "made-by"));
  UINDEX_RETURN_IF_ERROR(
      db.CreateReference(company, employee, "president"));

  // A handful of dealership stock.
  const Oid prez = db.CreateObject(employee).value();
  UINDEX_RETURN_IF_ERROR(db.SetAttr(prez, "Age", Value::Int(52)));
  const Oid maker = db.CreateObject(company).value();
  UINDEX_RETURN_IF_ERROR(db.SetAttr(maker, "president", Value::Ref(prez)));
  const struct {
    ClassId cls;
    int64_t price;
  } stock[] = {{car, 18}, {car, 24}, {truck, 42}, {truck, 55}, {vehicle, 9}};
  for (const auto& item : stock) {
    const Oid oid = db.CreateObject(item.cls).value();
    UINDEX_RETURN_IF_ERROR(db.SetAttr(oid, "Price", Value::Int(item.price)));
    UINDEX_RETURN_IF_ERROR(db.SetAttr(oid, "made-by", Value::Ref(maker)));
  }

  // One class-hierarchy index and one path index, both persisted.
  Result<size_t> r = db.CreateIndex(
      PathSpec::ClassHierarchy(vehicle, "Price", Value::Kind::kInt));
  if (!r.ok()) return r.status();
  PathSpec age;
  age.classes = {vehicle, company, employee};
  age.ref_attrs = {"made-by", "president"};
  age.indexed_attr = "Age";
  age.value_kind = Value::Kind::kInt;
  r = db.CreateIndex(age);
  if (!r.ok()) return r.status();

  UINDEX_RETURN_IF_ERROR(db.Save(path));
  std::printf("saved %llu objects, %zu indexes, %llu pages -> %s\n",
              static_cast<unsigned long long>(db.store().size()),
              db.index_count(),
              static_cast<unsigned long long>(db.live_pages()),
              path.c_str());
  return Status::OK();
}

Status ReopenAndUse(const std::string& path) {
  Result<std::unique_ptr<Database>> opened = Database::Open(path);
  if (!opened.ok()) return opened.status();
  Database& db = *opened.value();
  std::printf("reopened: %llu objects, %zu indexes, catalog %s\n",
              static_cast<unsigned long long>(db.store().size()),
              db.index_count(),
              db.catalog() != nullptr ? "present" : "absent");

  Database::Selection sel;
  sel.cls = db.schema().FindClass("Car").value();
  sel.attr = "Price";
  sel.lo = Value::Int(10);
  sel.hi = Value::Int(30);
  QueryCost cost(&db.buffers());
  const Database::SelectResult cars = std::move(db.Select(sel)).value();
  std::printf("cars priced 10..30: %zu via %s (%llu pages)\n",
              cars.oids.size(), cars.index_description.c_str(),
              static_cast<unsigned long long>(cost.PagesRead()));

  // The restored database stays fully live.
  const Oid newcar = db.CreateObject(sel.cls).value();
  UINDEX_RETURN_IF_ERROR(db.SetAttr(newcar, "Price", Value::Int(21)));
  const Database::SelectResult again = std::move(db.Select(sel)).value();
  std::printf("after adding one more: %zu cars\n", again.oids.size());
  return Status::OK();
}

}  // namespace

int main(int argc, char** argv) {
  const std::string path =
      argc > 1 ? argv[1] : "/tmp/uindex_dealership.udb";
  if (Status s = BuildAndSave(path); !s.ok()) {
    std::fprintf(stderr, "build: %s\n", s.ToString().c_str());
    return 1;
  }
  if (Status s = ReopenAndUse(path); !s.ok()) {
    std::fprintf(stderr, "reopen: %s\n", s.ToString().c_str());
    return 1;
  }
  std::remove(path.c_str());
  return 0;
}
