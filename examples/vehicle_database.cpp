// The paper's running example end to end: the Fig. 1 schema, the Example 1
// instance database, and the §3.3 queries — class-hierarchy, path, and
// combined — including live index maintenance when a company replaces its
// president (§3.5).

#include <cstdio>

#include "core/query_parser.h"
#include "core/update.h"
#include "workload/paper_schema.h"

using namespace uindex;

namespace {

void PrintOids(const char* label, const std::vector<Oid>& oids) {
  std::printf("%-58s [", label);
  for (size_t i = 0; i < oids.size(); ++i) {
    std::printf("%s%u", i ? ", " : "", oids[i]);
  }
  std::printf("]\n");
}

}  // namespace

int main() {
  PaperSchema ids = PaperSchema::Build();
  const ClassCoder coder = std::move(ClassCoder::Assign(ids.schema)).value();
  std::printf("COD relation (matches the paper):\n");
  for (const char* name :
       {"Vehicle", "Division", "City", "Company", "Employee", "Automobile",
        "Truck", "CompactAutomobile", "AutoCompany", "TruckCompany",
        "JapaneseAutoCompany"}) {
    const ClassId cls = ids.schema.FindClass(name).value();
    std::printf("  %-22s COD %s\n", name, coder.CodeOf(cls).c_str());
  }

  // Example 1 database.
  ObjectStore store(&ids.schema);
  auto employee = [&](int64_t age) {
    const Oid oid = store.Create(ids.employee).value();
    (void)store.SetAttr(oid, "Age", Value::Int(age));
    return oid;
  };
  const Oid e1 = employee(50), e2 = employee(60), e3 = employee(45);
  auto company = [&](ClassId cls, const char* name, Oid president) {
    const Oid oid = store.Create(cls).value();
    (void)store.SetAttr(oid, "Name", Value::Str(name));
    (void)store.SetAttr(oid, "president", Value::Ref(president));
    return oid;
  };
  const Oid c1 = company(ids.japanese_auto_company, "Subaru", e3);
  const Oid c2 = company(ids.auto_company, "Fiat", e1);
  const Oid c3 = company(ids.auto_company, "Renault", e2);
  auto vehicle = [&](ClassId cls, const char* name, const char* color,
                     Oid maker) {
    const Oid oid = store.Create(cls).value();
    (void)store.SetAttr(oid, "Name", Value::Str(name));
    (void)store.SetAttr(oid, "Color", Value::Str(color));
    (void)store.SetAttr(oid, "manufactured-by", Value::Ref(maker));
    return oid;
  };
  vehicle(ids.vehicle, "Legacy", "White", c1);
  vehicle(ids.automobile, "Tipo", "White", c2);
  vehicle(ids.automobile, "Panda", "Red", c2);
  vehicle(ids.compact_automobile, "R5", "Red", c3);
  vehicle(ids.compact_automobile, "Justy", "Blue", c1);
  vehicle(ids.compact_automobile, "Uno", "White", c2);

  // Indexes: one CH index on Color, one combined path index on Age.
  Pager pager(1024);
  BufferManager buffers(&pager);
  UIndex color(&buffers, &ids.schema, &coder,
               PathSpec::ClassHierarchy(ids.vehicle, "Color",
                                        Value::Kind::kString));
  (void)color.BuildFrom(store);
  PathSpec age_spec;
  age_spec.classes = {ids.vehicle, ids.company, ids.employee};
  age_spec.ref_attrs = {"manufactured-by", "president"};
  age_spec.indexed_attr = "Age";
  age_spec.value_kind = Value::Kind::kInt;
  UIndex age(&buffers, &ids.schema, &coder, age_spec);
  (void)age.BuildFrom(store);

  std::printf("\n§3.3 queries (textual form, parsed and executed):\n");
  struct Demo {
    const char* text;
    const UIndex* index;
    const PathSpec* spec;
    size_t wanted_position;
  };
  const PathSpec color_spec = color.spec();
  const Demo demos[] = {
      {"(Color='Red', Vehicle*, ?)", &color, &color_spec, 0},
      {"(Color='Red', Automobile, ?)", &color, &color_spec, 0},
      {"(Color='Red', Automobile*, ?)", &color, &color_spec, 0},
      {"(Color='Red', Vehicle* !CompactAutomobile*, ?)", &color, &color_spec,
       0},
      {"(Color='Red'|'Blue', Automobile*|Truck*, ?)", &color, &color_spec, 0},
      {"(Age=50, Employee, _, Company*, _, Vehicle*, ?)", &age, &age_spec, 2},
      {"(Age=50, Employee, _, Company*, ?)", &age, &age_spec, 1},
      {"(Age=45, _, _, JapaneseAutoCompany*, _, Vehicle*, ?)", &age,
       &age_spec, 2},
      {"(Age=51..70, Employee, _, AutoCompany*, _, Automobile*, ?)", &age,
       &age_spec, 2},
  };
  for (const Demo& demo : demos) {
    Result<Query> q = ParseQuery(demo.text, *demo.spec, ids.schema);
    if (!q.ok()) {
      std::fprintf(stderr, "parse %s: %s\n", demo.text,
                   q.status().ToString().c_str());
      return 1;
    }
    QueryCost cost(&buffers);
    Result<QueryResult> r = demo.index->Parscan(q.value());
    if (!r.ok()) {
      std::fprintf(stderr, "run %s: %s\n", demo.text,
                   r.status().ToString().c_str());
      return 1;
    }
    char label[96];
    std::snprintf(label, sizeof(label), "%s (%llu pages)", demo.text,
                  static_cast<unsigned long long>(cost.PagesRead()));
    PrintOids(label, r.value().Distinct(demo.wanted_position));
  }

  // §3.5: Fiat replaces its president; the index re-batches its entries.
  std::printf("\nFiat's president e%u (age 50) is replaced by e%u (60):\n",
              e1, e2);
  IndexedDatabase db(&ids.schema, &store);
  db.RegisterIndex(&color);
  db.RegisterIndex(&age);
  if (Status s = db.SetAttr(c2, "president", Value::Ref(e2)); !s.ok()) {
    std::fprintf(stderr, "update: %s\n", s.ToString().c_str());
    return 1;
  }
  const Query q50 = std::move(ParseQuery(
                                  "(Age=50, Employee, _, Company*, _, "
                                  "Vehicle*, ?)",
                                  age_spec, ids.schema))
                        .value();
  const Query q60 = std::move(ParseQuery(
                                  "(Age=60, Employee, _, Company*, _, "
                                  "Vehicle*, ?)",
                                  age_spec, ids.schema))
                        .value();
  PrintOids("vehicles via president aged 50 (now none)",
            std::move(age.Parscan(q50)).value().Distinct(2));
  PrintOids("vehicles via president aged 60",
            std::move(age.Parscan(q60)).value().Distinct(2));
  return 0;
}
