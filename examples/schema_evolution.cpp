// Schema evolution (paper §4.3, Fig. 4): adding classes to a live, indexed
// database — a new subclass inside an existing hierarchy, a whole new
// hierarchy — plus REF-cycle detection and breaking (the OWN/USE example).

#include <cstdio>

#include "core/update.h"
#include "workload/paper_schema.h"

using namespace uindex;

int main() {
  PaperSchema ids = PaperSchema::Build();
  ClassCoder coder = std::move(ClassCoder::Assign(ids.schema)).value();
  ObjectStore store(&ids.schema);

  // A live color index over the vehicle hierarchy.
  Pager pager(1024);
  BufferManager buffers(&pager);
  UIndex color(&buffers, &ids.schema, &coder,
               PathSpec::ClassHierarchy(ids.vehicle, "Color",
                                        Value::Kind::kString));
  (void)color.BuildFrom(store);
  IndexedDatabase db(&ids.schema, &store);
  db.RegisterIndex(&color);

  const Oid car = db.CreateObject(ids.automobile).value();
  (void)db.SetAttr(car, "Color", Value::Str("Red"));

  // --- Fig. 4a: a new class within an existing hierarchy. ---
  std::printf("Fig 4a: adding ElectricScooter under Vehicle\n");
  const ClassId scooter =
      ids.schema.AddSubclass("ElectricScooter", ids.vehicle).value();
  if (Status s = coder.AssignNewClass(ids.schema, scooter); !s.ok()) {
    std::fprintf(stderr, "assign: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("  ElectricScooter COD %s (after Automobile=C5A, Truck=C5B, "
              "Bus=C5C)\n",
              coder.CodeOf(scooter).c_str());

  const Oid zippy = db.CreateObject(scooter).value();
  (void)db.SetAttr(zippy, "Color", Value::Str("Red"));

  Query red = Query::ExactValue(Value::Str("Red"));
  red.With(ClassSelector::Subtree(ids.vehicle), ValueSlot::Wanted());
  std::printf("  red vehicles now: %zu (old automobile + new scooter)\n",
              std::move(color.Parscan(red)).value().rows.size());

  // --- Fig. 4b: a brand-new hierarchy. ---
  std::printf("\nFig 4b: adding a Dealer hierarchy\n");
  const ClassId dealer = ids.schema.AddClass("Dealer").value();
  const ClassId franchise =
      ids.schema.AddSubclass("FranchiseDealer", dealer).value();
  (void)coder.AssignNewClass(ids.schema, dealer);
  (void)coder.AssignNewClass(ids.schema, franchise);
  std::printf("  Dealer COD %s, FranchiseDealer COD %s\n",
              coder.CodeOf(dealer).c_str(), coder.CodeOf(franchise).c_str());

  // New REF edges keep the encoding valid as long as they point "down" the
  // code order...
  (void)ids.schema.AddReference(dealer, ids.company, "franchise-of");
  std::printf("  Dealer REF Company: Verify() -> %s\n",
              coder.Verify(ids.schema).ToString().c_str());
  // ...but an edge that inverts the order demands a re-encode.
  (void)ids.schema.AddReference(ids.employee, dealer, "works-at");
  std::printf("  Employee REF Dealer: Verify() -> %s\n",
              coder.Verify(ids.schema).ToString().c_str());
  std::printf("  -> re-encode: assign fresh codes and rebuild indexes.\n");

  // --- §4.3: REF cycles (the OWN/USE example) and how to break them. ---
  std::printf("\nREF cycle handling (Employee OWN Vehicle, Vehicle USE "
              "Employee):\n");
  Schema cyclic;
  const ClassId employee = cyclic.AddClass("Employee").value();
  const ClassId vehicle = cyclic.AddClass("Vehicle").value();
  (void)cyclic.AddReference(employee, vehicle, "OWN");
  (void)cyclic.AddReference(vehicle, employee, "USE");
  Result<ClassCoder> direct = ClassCoder::Assign(cyclic);
  std::printf("  direct encoding: %s\n",
              direct.status().ToString().c_str());
  const std::vector<size_t> dropped = cyclic.FindCycleBreakingEdges();
  std::printf("  cycle-breaking edges found: %zu\n", dropped.size());
  for (const size_t e : dropped) {
    const RefEdge& edge = cyclic.references()[e];
    std::printf("    duplicate-encode around %s.%s\n",
                cyclic.NameOf(edge.source).c_str(), edge.attribute.c_str());
  }
  Result<ClassCoder> broken = ClassCoder::Assign(cyclic, dropped);
  std::printf("  encoding with the cycle broken: %s\n",
              broken.status().ToString().c_str());
  std::printf(
      "  (each dropped REF edge gets its own index graph where the\n"
      "   offending class is encoded under a duplicate name, paper §4.3)\n");
  return 0;
}
