// Path and combined-index scenarios at a realistic scale: a generated
// dealership database, multiple path indexes sharing one attribute, and a
// side-by-side with the Kim/Bertino nested and path index baselines —
// including the combined class-hierarchy/path query that only the U-index
// (and NIX) can answer from one structure.

#include <algorithm>
#include <cstdio>

#include "baselines/pathindex/nested_index.h"
#include "baselines/pathindex/path_index.h"
#include "core/uindex.h"
#include "workload/database_generator.h"

using namespace uindex;

int main() {
  PaperDatabaseConfig cfg;
  cfg.num_vehicles = 5000;
  cfg.num_companies = 50;
  cfg.num_employees = 60;
  PaperDatabase db;
  if (Status s = GeneratePaperDatabase(cfg, &db); !s.ok()) {
    std::fprintf(stderr, "generate: %s\n", s.ToString().c_str());
    return 1;
  }
  const PaperSchema& ids = db.ids;

  PathSpec spec;
  spec.classes = {ids.vehicle, ids.company, ids.employee};
  spec.ref_attrs = {"manufactured-by", "president"};
  spec.indexed_attr = "Age";
  spec.value_kind = Value::Kind::kInt;

  Pager pager(1024);
  BufferManager buffers(&pager);

  UIndex uidx(&buffers, &ids.schema, db.coder.get(), spec);
  if (Status s = uidx.BuildFrom(*db.store); !s.ok()) {
    std::fprintf(stderr, "build: %s\n", s.ToString().c_str());
    return 1;
  }
  NestedIndex nested(&buffers, spec);
  (void)nested.BuildFrom(*db.store);
  PathIndex path(&buffers, spec);
  (void)path.BuildFrom(*db.store);

  std::printf("database: %u vehicles, U-index entries: %llu\n\n",
              cfg.num_vehicles,
              static_cast<unsigned long long>(uidx.entry_count()));

  // --- Query A: vehicles whose president is aged 60..65 (head-only). All
  // three indexes can answer; compare page reads. ---
  Query qa = Query::Range(Value::Int(60), Value::Int(65));
  qa.With(ClassSelector::Exactly(ids.employee))
      .With(ClassSelector::Subtree(ids.company))
      .With(ClassSelector::Subtree(ids.vehicle), ValueSlot::Wanted());

  QueryCost u_cost(&buffers);
  const std::vector<Oid> u_heads =
      std::move(uidx.Parscan(qa)).value().Distinct(2);
  const uint64_t u_pages = u_cost.PagesRead();

  QueryCost n_cost(&buffers);
  std::vector<Oid> n_heads =
      std::move(nested.Lookup(Value::Int(60), Value::Int(65))).value();
  std::sort(n_heads.begin(), n_heads.end());
  n_heads.erase(std::unique(n_heads.begin(), n_heads.end()), n_heads.end());
  const uint64_t n_pages = n_cost.PagesRead();

  QueryCost p_cost(&buffers);
  const auto p_tuples =
      std::move(path.Lookup(Value::Int(60), Value::Int(65))).value();
  const uint64_t p_pages = p_cost.PagesRead();

  std::printf("A) vehicles with president aged 60..65:\n");
  std::printf("   U-index      : %4zu vehicles, %3llu pages\n",
              u_heads.size(), static_cast<unsigned long long>(u_pages));
  std::printf("   nested index : %4zu vehicles, %3llu pages\n",
              n_heads.size(), static_cast<unsigned long long>(n_pages));
  std::printf("   path index   : %4zu tuples,   %3llu pages\n",
              p_tuples.size(), static_cast<unsigned long long>(p_pages));
  if (u_heads != n_heads) {
    std::fprintf(stderr, "index disagreement!\n");
    return 1;
  }

  // --- Query B: the combined query — *trucks* made by *auto companies*
  // with president aged 60..65. The U-index answers in one scan; the
  // nested index cannot express it; the path index needs post-filtering
  // through the object store. ---
  Query qb = Query::Range(Value::Int(60), Value::Int(65));
  qb.With(ClassSelector::Exactly(ids.employee))
      .With(ClassSelector::Subtree(ids.auto_company))
      .With(ClassSelector::Subtree(ids.truck), ValueSlot::Wanted());
  QueryCost ub_cost(&buffers);
  const std::vector<Oid> trucks =
      std::move(uidx.Parscan(qb)).value().Distinct(2);
  std::printf(
      "\nB) trucks made by auto companies, president aged 60..65:\n"
      "   U-index      : %4zu trucks,   %3llu pages (single index scan)\n",
      trucks.size(), static_cast<unsigned long long>(ub_cost.PagesRead()));

  QueryCost pb_cost(&buffers);
  size_t filtered = 0;
  const std::vector<std::vector<Oid>> pb_tuples =
      std::move(path.Lookup(Value::Int(60), Value::Int(65))).value();
  for (const auto& tuple : pb_tuples) {
    // tuple = (vehicle, company, employee): class checks hit the store.
    const Object* v = db.store->Get(tuple[0]).value();
    const Object* c = db.store->Get(tuple[1]).value();
    if (ids.schema.IsSubclassOf(v->cls, ids.truck) &&
        ids.schema.IsSubclassOf(c->cls, ids.auto_company)) {
      ++filtered;
    }
  }
  std::printf(
      "   path index   : %4zu trucks,   %3llu pages + %zu object fetches\n",
      filtered, static_cast<unsigned long long>(pb_cost.PagesRead()),
      p_tuples.size() * 2);

  // --- Query C: partial-path — companies only, from the same U-index. ---
  Query qc = Query::Range(Value::Int(60), Value::Int(65));
  qc.With(ClassSelector::Exactly(ids.employee))
      .With(ClassSelector::Subtree(ids.company), ValueSlot::Wanted());
  QueryCost uc_cost(&buffers);
  const std::vector<Oid> companies =
      std::move(uidx.Parscan(qc)).value().Distinct(1);
  std::printf(
      "\nC) companies with president aged 60..65 (same U-index, partial "
      "path):\n   U-index      : %4zu companies, %3llu pages\n",
      companies.size(), static_cast<unsigned long long>(uc_cost.PagesRead()));

  // --- Multiple paths sharing a prefix (§3.3): add Division/Company/
  // Employee entries into the same key space via a second U-index and show
  // both cluster under the shared (employee, company) prefix. ---
  std::printf(
      "\nD) multiple paths: Division/Company/Employee entries share the\n"
      "   (employee, company) key prefix with Vehicle/Company/Employee\n"
      "   entries, so the front compression stores those prefixes once\n"
      "   (see tests/key_encoding_test.cc, MultiplePathsShareTheTreePrefix).\n");
  return 0;
}
