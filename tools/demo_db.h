// The paper's Example-1 database (the same content tools/demo_script.txt
// builds interactively), shared by the server and router binaries so a
// sharded demo topology and its planning replica agree on every class
// code: vehicles made by companies with presidents, a class-hierarchy
// index on Color and a path index on Age.
#ifndef UINDEX_TOOLS_DEMO_DB_H_
#define UINDEX_TOOLS_DEMO_DB_H_

#include <utility>

#include "db/database.h"

namespace uindex {

inline Status BuildDemoDatabase(Database* db) {
#define DEMO_ASSIGN(var, expr)              \
  auto var##_r = (expr);                    \
  if (!var##_r.ok()) return var##_r.status(); \
  auto var = std::move(var##_r).value()
  DEMO_ASSIGN(employee, db->CreateClass("Employee"));
  DEMO_ASSIGN(company, db->CreateClass("Company"));
  DEMO_ASSIGN(auto_co, db->CreateSubclass("AutoCompany", company));
  DEMO_ASSIGN(jp_auto, db->CreateSubclass("JapaneseAutoCompany", auto_co));
  DEMO_ASSIGN(vehicle, db->CreateClass("Vehicle"));
  DEMO_ASSIGN(automobile, db->CreateSubclass("Automobile", vehicle));
  DEMO_ASSIGN(compact, db->CreateSubclass("CompactAutomobile", automobile));
  UINDEX_RETURN_IF_ERROR(
      db->CreateReference(vehicle, company, "made-by", false));
  UINDEX_RETURN_IF_ERROR(
      db->CreateReference(company, employee, "president", false));

  const int64_t ages[] = {50, 60, 45};
  Oid e[3];
  for (int i = 0; i < 3; ++i) {
    DEMO_ASSIGN(oid, db->CreateObject(employee));
    e[i] = oid;
    UINDEX_RETURN_IF_ERROR(db->SetAttr(e[i], "Age", Value::Int(ages[i])));
  }
  const struct { ClassId cls; const char* name; int president; } cos[] = {
      {jp_auto, "Subaru", 2}, {auto_co, "Fiat", 0}, {auto_co, "Renault", 1}};
  Oid c[3];
  for (int i = 0; i < 3; ++i) {
    DEMO_ASSIGN(oid, db->CreateObject(cos[i].cls));
    c[i] = oid;
    UINDEX_RETURN_IF_ERROR(
        db->SetAttr(c[i], "name", Value::Str(cos[i].name)));
    UINDEX_RETURN_IF_ERROR(
        db->SetAttr(c[i], "president", Value::Ref(e[cos[i].president])));
  }
  const struct { ClassId cls; const char* color; int maker; } vs[] = {
      {vehicle, "White", 0},    {automobile, "White", 1},
      {automobile, "Red", 1},   {compact, "Red", 2},
      {compact, "Blue", 0},     {compact, "White", 1}};
  for (const auto& v : vs) {
    DEMO_ASSIGN(oid, db->CreateObject(v.cls));
    UINDEX_RETURN_IF_ERROR(db->SetAttr(oid, "Color", Value::Str(v.color)));
    UINDEX_RETURN_IF_ERROR(
        db->SetAttr(oid, "made-by", Value::Ref(c[v.maker])));
  }

  UINDEX_RETURN_IF_ERROR(
      db->CreateIndex(
            PathSpec::ClassHierarchy(vehicle, "Color", Value::Kind::kString))
          .status());
  PathSpec age_path;
  age_path.indexed_attr = "Age";
  age_path.value_kind = Value::Kind::kInt;
  age_path.classes = {vehicle, company, employee};
  age_path.ref_attrs = {"made-by", "president"};
  UINDEX_RETURN_IF_ERROR(db->CreateIndex(age_path).status());
#undef DEMO_ASSIGN
  return Status::OK();
}

}  // namespace uindex

#endif  // UINDEX_TOOLS_DEMO_DB_H_
