// uindex_router — the sharded topology's front end and map tooling.
//
// Serve mode (default): scatter-gather queries across the shards of a map,
// speaking the standard protocol so uindex_shell works unchanged:
//
//   ./build/tools/uindex_router --map cluster.map --demo --port 0
//
// Map authoring: write a CRC-framed ShardMap file. The spec is a comma
// list of LO@host:port entries; the first LO must be empty, and with a
// planning database (--demo / --snapshot) a LO may be a class *name*,
// which resolves to that class's code (its subtree then starts the range):
//
//   ./build/tools/uindex_router --demo --map-version 1 --out cluster.map
//       --write-map '@127.0.0.1:5001,Vehicle@127.0.0.1:5002'   (one line)
//
// Map rollout: push an authored map to every shard in it (kInstallShard);
// used for splits/rebalances while a topology is live:
//
//   ./build/tools/uindex_router --map cluster.map --install
//
// Code listing (--codes, with --demo/--snapshot): prints every class's
// name, code, and subtree upper bound — the raw material for boundaries.
//
// Flags:
//   --map PATH        ShardMap file: the serve-mode map (and refresh
//                     source) or the --install input
//   --demo            Example-1 planning replica (must match the shards)
//   --snapshot PATH   planning replica from a saved database
//   --host H          serve bind address      (default 127.0.0.1)
//   --port N          serve TCP port, 0=ephemeral (default 4667)
//   --timeout-ms N    per-sub-query timeout   (default 5000)
//   --retries N       stale-map retries       (default 3)
//   --write-map SPEC  author mode (see above; needs --out, --map-version)
//   --map-version N   version stamped into the authored map
//   --out PATH        where the authored map is written
//   --install         rollout mode (see above; needs --map)
//   --codes           print class codes and exit
//   --http-port N     also serve the HTTP/JSON gateway in serve mode
//                     (0=ephemeral; off when absent). Queries scatter-
//                     gather through the router under the router server's
//                     admission gate; /v1/dml answers 501.

#include <signal.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "db/database.h"
#include "demo_db.h"
#include "http/gateway.h"
#include "net/client.h"
#include "net/router.h"
#include "net/router_server.h"
#include "net/shard_map.h"
#include "schema/class_code.h"
#include "util/hex.h"

namespace uindex {
namespace {

std::atomic<bool> g_stop{false};

void HandleSignal(int /*sig*/) { g_stop.store(true); }

// Parses one 'LO@host:port' token. LO may be empty; '@' and ':' split at
// their last occurrence so codes stay free to contain either.
Status ParseEntry(const std::string& token, net::ShardMap::Entry* out) {
  const size_t at = token.rfind('@');
  if (at == std::string::npos) {
    return Status::InvalidArgument("map entry '" + token + "' has no '@'");
  }
  const std::string endpoint = token.substr(at + 1);
  const size_t colon = endpoint.rfind(':');
  if (colon == std::string::npos || colon + 1 >= endpoint.size()) {
    return Status::InvalidArgument("map entry '" + token +
                                   "' needs host:port after '@'");
  }
  out->lo = token.substr(0, at);
  out->host = endpoint.substr(0, colon);
  const unsigned long port = std::strtoul(endpoint.c_str() + colon + 1,
                                          nullptr, 10);
  if (port == 0 || port > 65535) {
    return Status::InvalidArgument("map entry '" + token + "' has bad port");
  }
  out->port = static_cast<uint16_t>(port);
  return Status::OK();
}

// A non-empty boundary that names a class in the planning database becomes
// that class's code; anything else is taken as a raw code string.
std::string ResolveBoundary(const Database* db, const std::string& lo) {
  if (db == nullptr || lo.empty()) return lo;
  Result<ClassId> cls = db->schema().FindClass(lo);
  if (!cls.ok()) return lo;
  return db->coder().CodeOf(cls.value());
}

int WriteMapMode(const Database* db, const std::string& spec,
                 uint64_t version, const std::string& out_path) {
  net::ShardMap map;
  map.version = version;
  size_t start = 0;
  while (start <= spec.size()) {
    const size_t comma = spec.find(',', start);
    const std::string token =
        spec.substr(start, comma == std::string::npos ? std::string::npos
                                                      : comma - start);
    net::ShardMap::Entry entry;
    const Status parsed = ParseEntry(token, &entry);
    if (!parsed.ok()) {
      std::fprintf(stderr, "%s\n", parsed.ToString().c_str());
      return 1;
    }
    entry.lo = ResolveBoundary(db, entry.lo);
    map.entries.push_back(std::move(entry));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  const Status saved = map.Save(out_path);
  if (!saved.ok()) {
    std::fprintf(stderr, "cannot write %s: %s\n", out_path.c_str(),
                 saved.ToString().c_str());
    return 1;
  }
  std::printf("wrote %s: v%llu, %zu shards\n", out_path.c_str(),
              static_cast<unsigned long long>(map.version),
              map.entries.size());
  return 0;
}

int InstallMode(const std::string& map_path) {
  Result<net::ShardMap> map = net::ShardMap::Load(map_path);
  if (!map.ok()) {
    std::fprintf(stderr, "cannot load %s: %s\n", map_path.c_str(),
                 map.status().ToString().c_str());
    return 1;
  }
  int failures = 0;
  for (size_t i = 0; i < map.value().entries.size(); ++i) {
    const net::ShardMap::Entry& entry = map.value().entries[i];
    Result<std::unique_ptr<net::Client>> client =
        net::Client::Connect(entry.host, entry.port);
    Status installed = client.status();
    if (client.ok()) {
      installed = client.value()
                      ->InstallShard(map.value(), static_cast<uint32_t>(i))
                      .status();
    }
    if (installed.ok()) {
      std::printf("shard %zu %s:%u: installed v%llu\n", i,
                  entry.host.c_str(), entry.port,
                  static_cast<unsigned long long>(map.value().version));
    } else {
      std::fprintf(stderr, "shard %zu %s:%u: %s\n", i, entry.host.c_str(),
                   entry.port, installed.ToString().c_str());
      ++failures;
    }
  }
  return failures == 0 ? 0 : 1;
}

int CodesMode(const Database& db) {
  const Schema& schema = db.schema();
  for (ClassId cls = 0; schema.IsValidClass(cls); ++cls) {
    const std::string& code = db.coder().CodeOf(cls);
    std::printf("%-24s code=%s subtree_hi=%s\n",
                schema.NameOf(cls).c_str(), ToHex(Slice(code)).c_str(),
                ToHex(Slice(SubtreeUpperBound(Slice(code)))).c_str());
  }
  return 0;
}

int Run(int argc, char** argv) {
  net::RouterServerOptions serve_options;
  serve_options.port = 4667;
  net::RouterOptions router_options;
  std::string map_path, snapshot, write_spec, out_path;
  uint64_t map_version = 0;
  bool demo = false, install = false, codes = false;
  bool http_enabled = false;
  uint16_t http_port = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--demo") {
      demo = true;
    } else if (arg == "--install") {
      install = true;
    } else if (arg == "--codes") {
      codes = true;
    } else if (arg == "--map" && next() != nullptr) {
      map_path = argv[i];
    } else if (arg == "--snapshot" && next() != nullptr) {
      snapshot = argv[i];
    } else if (arg == "--host" && next() != nullptr) {
      serve_options.host = argv[i];
    } else if (arg == "--port" && next() != nullptr) {
      serve_options.port =
          static_cast<uint16_t>(std::strtoul(argv[i], nullptr, 10));
    } else if (arg == "--timeout-ms" && next() != nullptr) {
      router_options.subquery_timeout_ms =
          static_cast<int>(std::strtol(argv[i], nullptr, 10));
    } else if (arg == "--retries" && next() != nullptr) {
      router_options.max_stale_retries =
          static_cast<int>(std::strtol(argv[i], nullptr, 10));
    } else if (arg == "--write-map" && next() != nullptr) {
      write_spec = argv[i];
    } else if (arg == "--map-version" && next() != nullptr) {
      map_version = std::strtoull(argv[i], nullptr, 10);
    } else if (arg == "--out" && next() != nullptr) {
      out_path = argv[i];
    } else if (arg == "--http-port" && next() != nullptr) {
      http_enabled = true;
      http_port =
          static_cast<uint16_t>(std::strtoul(argv[i], nullptr, 10));
    } else {
      std::fprintf(stderr, "unknown flag %s\n", arg.c_str());
      return 2;
    }
  }

  if (install) return InstallMode(map_path);

  // Every remaining mode wants the planning database.
  std::unique_ptr<Database> planner;
  if (!snapshot.empty()) {
    Result<std::unique_ptr<Database>> opened = Database::Open(snapshot);
    if (!opened.ok()) {
      std::fprintf(stderr, "cannot open %s: %s\n", snapshot.c_str(),
                   opened.status().ToString().c_str());
      return 1;
    }
    planner = std::move(opened).value();
  } else if (demo) {
    planner = std::make_unique<Database>();
    const Status built = BuildDemoDatabase(planner.get());
    if (!built.ok()) {
      std::fprintf(stderr, "demo build failed: %s\n",
                   built.ToString().c_str());
      return 1;
    }
  }

  if (!write_spec.empty()) {
    if (out_path.empty() || map_version == 0) {
      std::fprintf(stderr, "--write-map needs --out and --map-version\n");
      return 2;
    }
    return WriteMapMode(planner.get(), write_spec, map_version, out_path);
  }
  if (codes) {
    if (planner == nullptr) {
      std::fprintf(stderr, "--codes needs --demo or --snapshot\n");
      return 2;
    }
    return CodesMode(*planner);
  }

  // Serve mode.
  if (planner == nullptr || map_path.empty()) {
    std::fprintf(stderr,
                 "serve mode needs --map and a planning replica "
                 "(--demo or --snapshot)\n");
    return 2;
  }
  Result<net::ShardMap> map = net::ShardMap::Load(map_path);
  if (!map.ok()) {
    std::fprintf(stderr, "cannot load %s: %s\n", map_path.c_str(),
                 map.status().ToString().c_str());
    return 1;
  }
  router_options.map_path = map_path;
  Result<std::unique_ptr<net::Router>> router = net::Router::Create(
      std::move(map).value(), planner.get(), router_options);
  if (!router.ok()) {
    std::fprintf(stderr, "cannot create router: %s\n",
                 router.status().ToString().c_str());
    return 1;
  }

  struct sigaction sa;
  std::memset(&sa, 0, sizeof(sa));
  sa.sa_handler = HandleSignal;
  ::sigaction(SIGTERM, &sa, nullptr);
  ::sigaction(SIGINT, &sa, nullptr);

  Result<std::unique_ptr<net::RouterServer>> server =
      net::RouterServer::Start(router.value().get(), serve_options);
  if (!server.ok()) {
    std::fprintf(stderr, "cannot start router server: %s\n",
                 server.status().ToString().c_str());
    return 1;
  }
  std::printf("routing %zu shards (map v%llu)\n",
              router.value()->CurrentMap().entries.size(),
              static_cast<unsigned long long>(
                  router.value()->CurrentMap().version));
  std::printf("listening on %s:%u\n", serve_options.host.c_str(),
              server.value()->port());

  http::RouterBackend backend(server.value().get());
  std::unique_ptr<http::HttpGateway> gateway;
  if (http_enabled) {
    http::GatewayOptions gw_options;
    gw_options.host = serve_options.host;
    gw_options.port = http_port;
    Result<std::unique_ptr<http::HttpGateway>> started =
        http::HttpGateway::Start(&backend, gw_options);
    if (!started.ok()) {
      std::fprintf(stderr, "cannot start http gateway: %s\n",
                   started.status().ToString().c_str());
      return 1;
    }
    gateway = std::move(started).value();
    std::printf("http listening on %s:%u\n", serve_options.host.c_str(),
                gateway->port());
  }
  std::fflush(stdout);

  while (!g_stop.load()) {
    ::usleep(100 * 1000);
  }

  if (gateway != nullptr) gateway->Shutdown();
  server.value()->Shutdown();
  const auto& rc = router.value()->counters();
  std::printf("shutdown: %llu ok, %llu failed, %llu subqueries, "
              "%llu pruned, %llu stale retries\n",
              static_cast<unsigned long long>(rc.queries_ok.load()),
              static_cast<unsigned long long>(rc.queries_failed.load()),
              static_cast<unsigned long long>(rc.subqueries_sent.load()),
              static_cast<unsigned long long>(rc.shards_pruned.load()),
              static_cast<unsigned long long>(rc.stale_retries.load()));
  return 0;
}

}  // namespace
}  // namespace uindex

int main(int argc, char** argv) { return uindex::Run(argc, argv); }
