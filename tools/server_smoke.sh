#!/bin/sh
# End-to-end smoke of the wire protocol: start uindex_server on an
# ephemeral port, run N scripted shell clients against it, then SIGTERM it
# and require a clean (exit 0) drain. Run from anywhere:
#
#   tools/server_smoke.sh <path-to-uindex_server> <path-to-uindex_shell>
#
# Exits non-zero if the server fails to start, any client errors, or the
# server does not shut down cleanly. Under ASan/TSan a report fails the
# server's exit code, so sanitizer legs get leak/race coverage for free.
set -eu

SERVER="$1"
SHELL_BIN="$2"
CLIENTS="${3:-4}"

. "$(dirname "$0")/smoke_lib.sh"

WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT

"$SERVER" --demo --port 0 >"$WORK/server.out" 2>"$WORK/server.err" &
SERVER_PID=$!
PORT="$(wait_port "$WORK/server.out" "$SERVER_PID")"

cat >"$WORK/client_script.txt" <<EOF
connect 127.0.0.1 $PORT
ping
oql SELECT v FROM Vehicle* v WHERE v.Color = 'Red'
oql SELECT v FROM Vehicle* v WHERE v.made-by.president.Age = 50
oql SELECT v FROM Vehicle* v WHERE v.made-by.president.Age BETWEEN 40 AND 49 AND v.made-by IS JapaneseAutoCompany*
oql SELECT COUNT(v) FROM Vehicle* v WHERE v.Color = 'White'
stats
disconnect
quit
EOF

i=1
while [ "$i" -le "$CLIENTS" ]; do
  "$SHELL_BIN" <"$WORK/client_script.txt" >"$WORK/client_$i.out" 2>&1 &
  eval "CLIENT_$i=\$!"
  i=$((i + 1))
done

FAIL=0
i=1
while [ "$i" -le "$CLIENTS" ]; do
  eval "pid=\$CLIENT_$i"
  if ! wait "$pid"; then
    echo "client $i failed:" >&2
    cat "$WORK/client_$i.out" >&2
    FAIL=1
  fi
  i=$((i + 1))
done

# Every client must have seen the Example-1 answer for the Red query
# (oids 9, 10) through the socket.
i=1
while [ "$i" -le "$CLIENTS" ]; do
  grep -q '\[9, 10\]' "$WORK/client_$i.out" || {
    echo "client $i missing expected rows:" >&2
    cat "$WORK/client_$i.out" >&2
    FAIL=1
  }
  i=$((i + 1))
done

kill -TERM "$SERVER_PID"
if ! wait "$SERVER_PID"; then
  echo "server exited non-zero after SIGTERM:" >&2
  cat "$WORK/server.err" >&2
  exit 1
fi
grep -q '^shutdown:' "$WORK/server.out" || {
  echo "server did not report a clean shutdown" >&2
  exit 1
}
exit "$FAIL"
