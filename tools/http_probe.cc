// http_probe — a minimal HTTP client CLI for the smoke scripts, so no
// smoke test depends on curl being installed.
//
//   ./build/tools/http_probe <host> <port> get  <path>
//   ./build/tools/http_probe <host> <port> post <path> <body>
//
// Prints "HTTP <status>" on the first line and the response body after
// it; exits 0 whenever a well-formed HTTP response arrived (scripts
// assert on the printed status), non-zero on transport/parse failure.

#include <cstdio>
#include <cstdlib>
#include <string>

#include "http/http_client.h"

namespace uindex {
namespace {

int Run(int argc, char** argv) {
  if (argc < 5) {
    std::fprintf(stderr,
                 "usage: %s <host> <port> get <path>\n"
                 "       %s <host> <port> post <path> <body>\n",
                 argv[0], argv[0]);
    return 2;
  }
  const std::string host = argv[1];
  const uint16_t port =
      static_cast<uint16_t>(std::strtoul(argv[2], nullptr, 10));
  const std::string verb = argv[3];
  const std::string path = argv[4];

  Result<std::unique_ptr<http::HttpClient>> client =
      http::HttpClient::Connect(host, port);
  if (!client.ok()) {
    std::fprintf(stderr, "connect: %s\n",
                 client.status().ToString().c_str());
    return 1;
  }

  Result<http::HttpClient::Response> response =
      Status::InvalidArgument("verb must be get or post");
  if (verb == "get") {
    response = client.value()->Get(path);
  } else if (verb == "post") {
    if (argc < 6) {
      std::fprintf(stderr, "post needs a body argument\n");
      return 2;
    }
    response = client.value()->Post(path, argv[5]);
  }
  if (!response.ok()) {
    std::fprintf(stderr, "%s %s: %s\n", verb.c_str(), path.c_str(),
                 response.status().ToString().c_str());
    return 1;
  }
  std::printf("HTTP %d\n%s", response.value().status,
              response.value().body.c_str());
  return 0;
}

}  // namespace
}  // namespace uindex

int main(int argc, char** argv) { return uindex::Run(argc, argv); }
