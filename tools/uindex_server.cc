// uindex_server — serves one Database over the wire protocol (src/net/).
//
//   ./build/tools/uindex_server --demo                # Example-1 database
//   ./build/tools/uindex_server --snapshot db.usnap   # a saved database
//   ./build/tools/uindex_server --demo --port 0       # ephemeral port
//
// Prints exactly one "listening on <host>:<port>" line once ready (scripts
// parse it — see tools/server_smoke.sh), then serves until SIGTERM/SIGINT,
// which triggers a graceful shutdown: in-flight queries drain and their
// responses are delivered, new work is refused, connections close, exit 0.
//
// Flags:
//   --host H          bind address          (default 127.0.0.1)
//   --port N          TCP port, 0=ephemeral (default 4666)
//   --demo            populate the paper's Example-1 database
//   --snapshot PATH   load a database saved with the shell's `save`
//   --workers N       query worker threads  (default 4)
//   --max-inflight N  concurrent queries    (default = workers)
//   --max-queue N     admission wait queue  (default 64)

#include <signal.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include "db/database.h"
#include "net/server.h"

namespace uindex {
namespace {

std::atomic<bool> g_stop{false};

void HandleSignal(int /*sig*/) { g_stop.store(true); }

// The paper's Example-1 database (the same content tools/demo_script.txt
// builds interactively): vehicles made by companies with presidents, a
// class-hierarchy index on Color and a path index on Age.
Status BuildDemoDatabase(Database* db) {
#define DEMO_ASSIGN(var, expr)              \
  auto var##_r = (expr);                    \
  if (!var##_r.ok()) return var##_r.status(); \
  auto var = std::move(var##_r).value()
  DEMO_ASSIGN(employee, db->CreateClass("Employee"));
  DEMO_ASSIGN(company, db->CreateClass("Company"));
  DEMO_ASSIGN(auto_co, db->CreateSubclass("AutoCompany", company));
  DEMO_ASSIGN(jp_auto, db->CreateSubclass("JapaneseAutoCompany", auto_co));
  DEMO_ASSIGN(vehicle, db->CreateClass("Vehicle"));
  DEMO_ASSIGN(automobile, db->CreateSubclass("Automobile", vehicle));
  DEMO_ASSIGN(compact, db->CreateSubclass("CompactAutomobile", automobile));
  UINDEX_RETURN_IF_ERROR(
      db->CreateReference(vehicle, company, "made-by", false));
  UINDEX_RETURN_IF_ERROR(
      db->CreateReference(company, employee, "president", false));

  const int64_t ages[] = {50, 60, 45};
  Oid e[3];
  for (int i = 0; i < 3; ++i) {
    DEMO_ASSIGN(oid, db->CreateObject(employee));
    e[i] = oid;
    UINDEX_RETURN_IF_ERROR(db->SetAttr(e[i], "Age", Value::Int(ages[i])));
  }
  const struct { ClassId cls; const char* name; int president; } cos[] = {
      {jp_auto, "Subaru", 2}, {auto_co, "Fiat", 0}, {auto_co, "Renault", 1}};
  Oid c[3];
  for (int i = 0; i < 3; ++i) {
    DEMO_ASSIGN(oid, db->CreateObject(cos[i].cls));
    c[i] = oid;
    UINDEX_RETURN_IF_ERROR(
        db->SetAttr(c[i], "name", Value::Str(cos[i].name)));
    UINDEX_RETURN_IF_ERROR(
        db->SetAttr(c[i], "president", Value::Ref(e[cos[i].president])));
  }
  const struct { ClassId cls; const char* color; int maker; } vs[] = {
      {vehicle, "White", 0},    {automobile, "White", 1},
      {automobile, "Red", 1},   {compact, "Red", 2},
      {compact, "Blue", 0},     {compact, "White", 1}};
  for (const auto& v : vs) {
    DEMO_ASSIGN(oid, db->CreateObject(v.cls));
    UINDEX_RETURN_IF_ERROR(db->SetAttr(oid, "Color", Value::Str(v.color)));
    UINDEX_RETURN_IF_ERROR(
        db->SetAttr(oid, "made-by", Value::Ref(c[v.maker])));
  }

  UINDEX_RETURN_IF_ERROR(
      db->CreateIndex(
            PathSpec::ClassHierarchy(vehicle, "Color", Value::Kind::kString))
          .status());
  PathSpec age_path;
  age_path.indexed_attr = "Age";
  age_path.value_kind = Value::Kind::kInt;
  age_path.classes = {vehicle, company, employee};
  age_path.ref_attrs = {"made-by", "president"};
  UINDEX_RETURN_IF_ERROR(db->CreateIndex(age_path).status());
#undef DEMO_ASSIGN
  return Status::OK();
}

int Run(int argc, char** argv) {
  net::ServerOptions options;
  options.port = 4666;
  bool demo = false;
  std::string snapshot;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--demo") {
      demo = true;
    } else if (arg == "--host" && next() != nullptr) {
      options.host = argv[i];
    } else if (arg == "--port" && next() != nullptr) {
      options.port = static_cast<uint16_t>(std::strtoul(argv[i], nullptr, 10));
    } else if (arg == "--snapshot" && next() != nullptr) {
      snapshot = argv[i];
    } else if (arg == "--workers" && next() != nullptr) {
      options.worker_threads = std::strtoul(argv[i], nullptr, 10);
    } else if (arg == "--max-inflight" && next() != nullptr) {
      options.max_inflight_queries = std::strtoul(argv[i], nullptr, 10);
    } else if (arg == "--max-queue" && next() != nullptr) {
      options.max_queued_queries = std::strtoul(argv[i], nullptr, 10);
    } else {
      std::fprintf(stderr, "unknown flag %s\n", arg.c_str());
      return 2;
    }
  }

  std::unique_ptr<Database> owned;
  if (!snapshot.empty()) {
    Result<std::unique_ptr<Database>> opened = Database::Open(snapshot);
    if (!opened.ok()) {
      std::fprintf(stderr, "cannot open %s: %s\n", snapshot.c_str(),
                   opened.status().ToString().c_str());
      return 1;
    }
    owned = std::move(opened).value();
  } else {
    owned = std::make_unique<Database>();
    if (demo) {
      const Status built = BuildDemoDatabase(owned.get());
      if (!built.ok()) {
        std::fprintf(stderr, "demo build failed: %s\n",
                     built.ToString().c_str());
        return 1;
      }
    }
  }

  struct sigaction sa;
  std::memset(&sa, 0, sizeof(sa));
  sa.sa_handler = HandleSignal;
  ::sigaction(SIGTERM, &sa, nullptr);
  ::sigaction(SIGINT, &sa, nullptr);

  Result<std::unique_ptr<net::Server>> server =
      net::Server::Start(owned.get(), options);
  if (!server.ok()) {
    std::fprintf(stderr, "cannot start server: %s\n",
                 server.status().ToString().c_str());
    return 1;
  }
  std::printf("listening on %s:%u\n", options.host.c_str(),
              server.value()->port());
  std::fflush(stdout);

  while (!g_stop.load()) {
    ::usleep(100 * 1000);
  }

  // Drain in-flight queries, refuse new frames, tear everything down; only
  // then is the database destroyed (it outlives the server by scope).
  server.value()->Shutdown();
  const auto& counters = server.value()->counters();
  std::printf("shutdown: %llu conns, %llu ok, %llu failed, %llu busy, "
              "%llu protocol errors\n",
              static_cast<unsigned long long>(counters.accepted.load()),
              static_cast<unsigned long long>(counters.queries_ok.load()),
              static_cast<unsigned long long>(counters.queries_failed.load()),
              static_cast<unsigned long long>(counters.busy_rejected.load()),
              static_cast<unsigned long long>(
                  counters.protocol_errors.load()));
  return 0;
}

}  // namespace
}  // namespace uindex

int main(int argc, char** argv) { return uindex::Run(argc, argv); }
