// uindex_server — serves one Database over the wire protocol (src/net/).
//
//   ./build/tools/uindex_server --demo                # Example-1 database
//   ./build/tools/uindex_server --snapshot db.usnap   # a saved database
//   ./build/tools/uindex_server --demo --port 0       # ephemeral port
//
// Prints exactly one "listening on <host>:<port>" line once ready (scripts
// parse it — see tools/server_smoke.sh), then serves until SIGTERM/SIGINT,
// which triggers a graceful shutdown: in-flight queries drain and their
// responses are delivered, new work is refused, connections close, exit 0.
//
// Flags:
//   --host H          bind address          (default 127.0.0.1)
//   --port N          TCP port, 0=ephemeral (default 4666)
//   --demo            populate the paper's Example-1 database
//   --snapshot PATH   load a database saved with the shell's `save`
//   --workers N       query worker threads  (default 4)
//   --max-inflight N  concurrent queries    (default = workers)
//   --max-queue N     admission wait queue  (default 64)
//   --shard-map PATH  adopt a ShardMap file at startup (sharded topology)
//   --shard-index N   this server's entry in that map (default 0)
//   --http-port N     also serve the HTTP/JSON gateway (0=ephemeral; off
//                     when the flag is absent). Prints one extra
//                     "http listening on <host>:<port>" line. The gateway
//                     shares the binary server's admission budget.

#include <signal.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include "db/database.h"
#include "demo_db.h"
#include "http/gateway.h"
#include "net/server.h"

namespace uindex {
namespace {

std::atomic<bool> g_stop{false};

void HandleSignal(int /*sig*/) { g_stop.store(true); }

int Run(int argc, char** argv) {
  net::ServerOptions options;
  options.port = 4666;
  bool demo = false;
  std::string snapshot;
  std::string shard_map_path;
  uint32_t shard_index = 0;
  bool http_enabled = false;
  uint16_t http_port = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--demo") {
      demo = true;
    } else if (arg == "--host" && next() != nullptr) {
      options.host = argv[i];
    } else if (arg == "--port" && next() != nullptr) {
      options.port = static_cast<uint16_t>(std::strtoul(argv[i], nullptr, 10));
    } else if (arg == "--snapshot" && next() != nullptr) {
      snapshot = argv[i];
    } else if (arg == "--workers" && next() != nullptr) {
      options.worker_threads = std::strtoul(argv[i], nullptr, 10);
    } else if (arg == "--max-inflight" && next() != nullptr) {
      options.max_inflight_queries = std::strtoul(argv[i], nullptr, 10);
    } else if (arg == "--max-queue" && next() != nullptr) {
      options.max_queued_queries = std::strtoul(argv[i], nullptr, 10);
    } else if (arg == "--shard-map" && next() != nullptr) {
      shard_map_path = argv[i];
    } else if (arg == "--shard-index" && next() != nullptr) {
      shard_index =
          static_cast<uint32_t>(std::strtoul(argv[i], nullptr, 10));
    } else if (arg == "--http-port" && next() != nullptr) {
      http_enabled = true;
      http_port =
          static_cast<uint16_t>(std::strtoul(argv[i], nullptr, 10));
    } else {
      std::fprintf(stderr, "unknown flag %s\n", arg.c_str());
      return 2;
    }
  }

  std::unique_ptr<Database> owned;
  if (!snapshot.empty()) {
    Result<std::unique_ptr<Database>> opened = Database::Open(snapshot);
    if (!opened.ok()) {
      std::fprintf(stderr, "cannot open %s: %s\n", snapshot.c_str(),
                   opened.status().ToString().c_str());
      return 1;
    }
    owned = std::move(opened).value();
  } else {
    owned = std::make_unique<Database>();
    if (demo) {
      const Status built = BuildDemoDatabase(owned.get());
      if (!built.ok()) {
        std::fprintf(stderr, "demo build failed: %s\n",
                     built.ToString().c_str());
        return 1;
      }
    }
  }

  struct sigaction sa;
  std::memset(&sa, 0, sizeof(sa));
  sa.sa_handler = HandleSignal;
  ::sigaction(SIGTERM, &sa, nullptr);
  ::sigaction(SIGINT, &sa, nullptr);

  Result<std::unique_ptr<net::Server>> server =
      net::Server::Start(owned.get(), options);
  if (!server.ok()) {
    std::fprintf(stderr, "cannot start server: %s\n",
                 server.status().ToString().c_str());
    return 1;
  }
  if (!shard_map_path.empty()) {
    Result<net::ShardMap> map = net::ShardMap::Load(shard_map_path);
    if (!map.ok()) {
      std::fprintf(stderr, "cannot load shard map %s: %s\n",
                   shard_map_path.c_str(),
                   map.status().ToString().c_str());
      return 1;
    }
    const Status installed =
        server.value()->InstallShard(map.value(), shard_index);
    if (!installed.ok()) {
      std::fprintf(stderr, "cannot install shard map: %s\n",
                   installed.ToString().c_str());
      return 1;
    }
    std::printf("shard %u of %zu, map v%llu\n", shard_index,
                map.value().entries.size(),
                static_cast<unsigned long long>(map.value().version));
  }
  std::printf("listening on %s:%u\n", options.host.c_str(),
              server.value()->port());

  // The optional HTTP/JSON front end executes through the binary server
  // (ExecuteExternal), so both protocols share one admission gate.
  http::ServerBackend backend(server.value().get());
  std::unique_ptr<http::HttpGateway> gateway;
  if (http_enabled) {
    http::GatewayOptions gw_options;
    gw_options.host = options.host;
    gw_options.port = http_port;
    Result<std::unique_ptr<http::HttpGateway>> started =
        http::HttpGateway::Start(&backend, gw_options);
    if (!started.ok()) {
      std::fprintf(stderr, "cannot start http gateway: %s\n",
                   started.status().ToString().c_str());
      return 1;
    }
    gateway = std::move(started).value();
    std::printf("http listening on %s:%u\n", options.host.c_str(),
                gateway->port());
  }
  std::fflush(stdout);

  while (!g_stop.load()) {
    ::usleep(100 * 1000);
  }

  // Gateway first (it executes through the server), then drain in-flight
  // queries, refuse new frames, tear everything down; only then is the
  // database destroyed (it outlives the server by scope).
  if (gateway != nullptr) gateway->Shutdown();
  server.value()->Shutdown();
  const auto& counters = server.value()->counters();
  std::printf("shutdown: %llu conns, %llu ok, %llu failed, %llu busy, "
              "%llu protocol errors\n",
              static_cast<unsigned long long>(counters.accepted.load()),
              static_cast<unsigned long long>(counters.queries_ok.load()),
              static_cast<unsigned long long>(counters.queries_failed.load()),
              static_cast<unsigned long long>(counters.busy_rejected.load()),
              static_cast<unsigned long long>(
                  counters.protocol_errors.load()));
  return 0;
}

}  // namespace
}  // namespace uindex

int main(int argc, char** argv) { return uindex::Run(argc, argv); }
