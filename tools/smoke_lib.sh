# Shared helpers for the smoke scripts (tools/*_smoke.sh). POSIX sh only;
# source it next to the caller:
#
#   . "$(dirname "$0")/smoke_lib.sh"
#
# Every server binary prints exactly one "listening on <host>:<port>" line
# once its socket is bound (and "http listening on ..." for the gateway).
# Parsing that line — rather than passing fixed ports — is what lets every
# smoke script bind ephemeral ports and run safely under parallel ctest.

# wait_port FILE PID [PREFIX]
# Waits up to ~10s for "<PREFIX> <host>:<port>" in FILE (default PREFIX
# "listening on"), echoing the port. Fails fast when PID exits first.
wait_port() {
  _wp_file="$1"
  _wp_pid="$2"
  _wp_prefix="${3:-listening on}"
  _wp_port=""
  _wp_i=0
  while [ "$_wp_i" -lt 100 ]; do
    _wp_port="$(sed -n "s/^$_wp_prefix .*:\([0-9][0-9]*\)\$/\1/p" \
        "$_wp_file" 2>/dev/null | head -n1)"
    [ -n "$_wp_port" ] && break
    kill -0 "$_wp_pid" 2>/dev/null || {
      echo "process died before listening: $_wp_file" >&2
      cat "$_wp_file" >&2
      return 1
    }
    sleep 0.1
    _wp_i=$((_wp_i + 1))
  done
  [ -n "$_wp_port" ] || { echo "never listened: $_wp_file" >&2; return 1; }
  echo "$_wp_port"
}
