#!/bin/sh
# End-to-end smoke of the HTTP/JSON gateway: start uindex_server with
# --http-port 0, drive every endpoint with http_probe (no curl
# dependency), mutate through /v1/dml and observe the mutation through
# /v1/query, check /metrics exposes the admission and IoStats counters,
# then SIGTERM and require a clean drain. Run from anywhere:
#
#   tools/http_smoke.sh <path-to-uindex_server> <path-to-http_probe>
#
# Ports are ephemeral and parsed from the server's "listening on" lines
# (tools/smoke_lib.sh), so parallel ctest runs never collide.
set -eu

SERVER="$1"
PROBE="$2"

. "$(dirname "$0")/smoke_lib.sh"

WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT

"$SERVER" --demo --port 0 --http-port 0 \
    >"$WORK/server.out" 2>"$WORK/server.err" &
SERVER_PID=$!
wait_port "$WORK/server.out" "$SERVER_PID" >/dev/null  # binary port
HTTP_PORT="$(wait_port "$WORK/server.out" "$SERVER_PID" "http listening on")"

probe() {  # probe <name> <args...>: runs http_probe, tees the transcript
  name="$1"; shift
  "$PROBE" 127.0.0.1 "$HTTP_PORT" "$@" >"$WORK/$name.out" 2>&1 || {
    echo "probe $name failed:" >&2
    cat "$WORK/$name.out" >&2
    exit 1
  }
}
expect() {  # expect <name> <grep-pattern>
  grep -q "$2" "$WORK/$1.out" || {
    echo "probe $1 missing '$2':" >&2
    cat "$WORK/$1.out" >&2
    exit 1
  }
}

# --- health ------------------------------------------------------------
probe healthz get /healthz
expect healthz '^HTTP 200$'
expect healthz '"status":"ok"'

# --- query: the Example-1 Red answer, byte-exact oids ------------------
probe red post /v1/query \
    '{"oql": "SELECT v FROM Vehicle* v WHERE v.Color = '"'"'Red'"'"'"}'
expect red '^HTTP 200$'
expect red '"oids":\[9,10\]'
expect red '"used_index":true'
expect red '"stats":{'

# --- query: COUNT shape ------------------------------------------------
probe count post /v1/query \
    '{"oql": "SELECT COUNT(v) FROM Vehicle* v WHERE v.Color = '"'"'White'"'"'"}'
expect count '^HTTP 200$'
expect count '"oids":\[\]'

# --- DML: create + set Color, then see it in the Red rows --------------
probe create post /v1/dml '{"op": "create_object", "class": "Vehicle"}'
expect create '^HTTP 200$'
expect create '"oid":'
NEW_OID="$(sed -n 's/.*"oid":\([0-9][0-9]*\).*/\1/p' "$WORK/create.out")"
[ -n "$NEW_OID" ] || { echo "no oid in create response" >&2; exit 1; }

probe setattr post /v1/dml \
    '{"op": "set_attr", "oid": '"$NEW_OID"', "attr": "Color", "value": "Red"}'
expect setattr '"ok":true'

probe red2 post /v1/query \
    '{"oql": "SELECT v FROM Vehicle* v WHERE v.Color = '"'"'Red'"'"'"}'
expect red2 '"oids":\[9,10,'"$NEW_OID"'\]'

# --- typed errors ------------------------------------------------------
probe badjson post /v1/query '{"oql" "no colon"}'
expect badjson '^HTTP 400$'
expect badjson '"error":'

probe badpath get /nope
expect badpath '^HTTP 404$'

# --- metrics: admission + IoStats + HTTP counters, end to end ----------
probe metrics get /metrics
expect metrics '^HTTP 200$'
expect metrics '^uindex_admission_shed_total '
expect metrics '^uindex_admission_admitted_total '
expect metrics '^uindex_io_pages_read_total '
expect metrics '^uindex_mvcc_epochs_published_total '
expect metrics '^uindex_http_requests_ok_total '
expect metrics '^uindex_shard_active 0$'

# --- clean drain -------------------------------------------------------
kill -TERM "$SERVER_PID"
if ! wait "$SERVER_PID"; then
  echo "server exited non-zero after SIGTERM:" >&2
  cat "$WORK/server.err" >&2
  exit 1
fi
grep -q '^shutdown:' "$WORK/server.out" || {
  echo "server did not report a clean shutdown" >&2
  exit 1
}
echo "http smoke ok (new oid: $NEW_OID)"
exit 0
