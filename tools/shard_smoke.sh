#!/bin/sh
# End-to-end smoke of the sharded topology: two uindex_server shards, a
# ShardMap authored and installed with uindex_router, a router front end
# serving uindex_shell clients, and one class-code split/rebalance while
# the topology is live. Run from anywhere:
#
#   tools/shard_smoke.sh <uindex_server> <uindex_router> <uindex_shell>
#
# Checks: every query answered through the router is row-identical to the
# single-node answer; a v2 map rollout (boundary moved) is picked up by
# the router via stale-rejection + refresh (the shutdown counters must
# show stale retries); all three processes drain cleanly on SIGTERM.
set -eu

SERVER="$1"
ROUTER="$2"
SHELL_BIN="$3"

. "$(dirname "$0")/smoke_lib.sh"

WORK="$(mktemp -d)"
PIDS=""
cleanup() {
  for pid in $PIDS; do kill -TERM "$pid" 2>/dev/null || true; done
  for pid in $PIDS; do wait "$pid" 2>/dev/null || true; done
  rm -rf "$WORK"
}
trap cleanup EXIT

# --- shards (replicas of the demo database; ranges arrive by install) ---
"$SERVER" --demo --port 0 >"$WORK/shard0.out" 2>&1 &
S0=$!; PIDS="$PIDS $S0"
"$SERVER" --demo --port 0 >"$WORK/shard1.out" 2>&1 &
S1=$!; PIDS="$PIDS $S1"
P0="$(wait_port "$WORK/shard0.out" "$S0")"
P1="$(wait_port "$WORK/shard1.out" "$S1")"

# A plain single-node server for the ground-truth answers.
"$SERVER" --demo --port 0 >"$WORK/single.out" 2>&1 &
SN=$!; PIDS="$PIDS $SN"
PN="$(wait_port "$WORK/single.out" "$SN")"

# --- map v1: split the Vehicle subtree at Automobile, install it -------
"$ROUTER" --demo --map-version 1 --out "$WORK/cluster.map" \
    --write-map "@127.0.0.1:$P0,Automobile@127.0.0.1:$P1"
"$ROUTER" --map "$WORK/cluster.map" --install

# --- router front end --------------------------------------------------
"$ROUTER" --map "$WORK/cluster.map" --demo --port 0 \
    >"$WORK/router.out" 2>&1 &
RT=$!; PIDS="$PIDS $RT"
PR="$(wait_port "$WORK/router.out" "$RT")"

make_script() {
  cat >"$1" <<EOF
connect 127.0.0.1 $2
oql SELECT v FROM Vehicle* v WHERE v.Color = 'Red'
oql SELECT v FROM Vehicle* v WHERE v.Color = 'White'
oql SELECT v FROM CompactAutomobile v WHERE v.Color = 'Red'
oql SELECT v FROM Vehicle* v WHERE v.made-by.president.Age = 50
oql SELECT v FROM Vehicle* v WHERE v.made-by.president.Age BETWEEN 40 AND 49 AND v.made-by IS JapaneseAutoCompany*
oql SELECT COUNT(v) FROM Vehicle* v WHERE v.Color = 'White'
disconnect
quit
EOF
}

# Normalizes a shell transcript to one "COUNT: [rows]" line per query
# (plans and page counts legitimately differ between topologies).
rows_of() {
  sed -n 's/^\([0-9][0-9]*\) oid(s)[^:]*\(.*\)$/\1\2/p' "$1"
}

make_script "$WORK/via_router.txt" "$PR"
make_script "$WORK/via_single.txt" "$PN"
"$SHELL_BIN" <"$WORK/via_single.txt" >"$WORK/single_client.out" 2>&1
"$SHELL_BIN" <"$WORK/via_router.txt" >"$WORK/router_client.out" 2>&1
rows_of "$WORK/single_client.out" >"$WORK/rows.single"
rows_of "$WORK/router_client.out" >"$WORK/rows.router"
[ -s "$WORK/rows.single" ] || {
  echo "single-node client produced no rows:" >&2
  cat "$WORK/single_client.out" >&2
  exit 1
}
diff -u "$WORK/rows.single" "$WORK/rows.router" || {
  echo "sharded rows differ from single-node rows" >&2
  cat "$WORK/router_client.out" >&2
  exit 1
}
grep -q '\[9, 10\]' "$WORK/router_client.out" || {
  echo "router client missing the Example-1 Red answer" >&2
  cat "$WORK/router_client.out" >&2
  exit 1
}

# --- rebalance: move the boundary to CompactAutomobile (v2) ------------
# File first, then the servers — a stale-rejected router can always find
# the new map.
"$ROUTER" --demo --map-version 2 --out "$WORK/cluster.map" \
    --write-map "@127.0.0.1:$P0,CompactAutomobile@127.0.0.1:$P1"
"$ROUTER" --map "$WORK/cluster.map" --install

"$SHELL_BIN" <"$WORK/via_router.txt" >"$WORK/router_client2.out" 2>&1
rows_of "$WORK/router_client2.out" >"$WORK/rows.router2"
diff -u "$WORK/rows.single" "$WORK/rows.router2" || {
  echo "rows differ after rebalance" >&2
  cat "$WORK/router_client2.out" >&2
  exit 1
}

# --- clean shutdown, and proof the rebalance exercised the fence -------
kill -TERM "$RT"
wait "$RT" || { echo "router exited non-zero" >&2; cat "$WORK/router.out" >&2; exit 1; }
STALE="$(sed -n 's/^shutdown:.* \([0-9][0-9]*\) stale retries$/\1/p' "$WORK/router.out")"
[ -n "$STALE" ] && [ "$STALE" -gt 0 ] || {
  echo "router never hit the stale-map fence (stale retries: ${STALE:-?})" >&2
  cat "$WORK/router.out" >&2
  exit 1
}

for pid in $S0 $S1 $SN; do
  kill -TERM "$pid"
  wait "$pid" || { echo "server $pid exited non-zero" >&2; exit 1; }
done
PIDS=""
echo "shard smoke ok (stale retries: $STALE)"
exit 0
