// uindex_shell — an interactive (or scripted) REPL over the Database
// façade: declare schema, create objects, build U-indexes, and run queries
// with live page-read accounting.
//
//   ./build/tools/uindex_shell            # interactive
//   ./build/tools/uindex_shell < script   # batch: exits non-zero on error
//   ./build/tools/uindex_shell --backend=file --cache-pages=64
//                                         # disk-backed, 64-frame pool
//
// Commands (see `help`):
//   class Vehicle            | class Car under Vehicle
//   ref Vehicle made-by -> Company [multi]
//   index hierarchy Vehicle Price int
//   index path Age int Vehicle made-by Company president Employee
//   new Car                  -> prints the oid
//   set 3 Price = 25         | set 3 name = 'Uno' | set 3 made-by = @2
//   del 3
//   select Car* Price 10 30  ('*' = with subclasses; one bound = exact)
//   query 0 (Age=50, Employee, _, Company*, ?)
//   parallel 8               (run `query` via exec::ParallelParscan)
//   connect 127.0.0.1 4666   (oql/stats/ping go to a uindex_server)
//   disconnect | ping
//   codes | schema | stats | help | quit

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/query_parser.h"
#include "db/database.h"
#include "exec/execution_context.h"
#include "net/client.h"
#include "workload/path_generator.h"
#include "workload/rollup_generator.h"

namespace uindex {
namespace {

class Shell {
 public:
  explicit Shell(bool interactive,
                 DatabaseOptions options = DatabaseOptions())
      : db_(options), interactive_(interactive) {
    if (!db_.backend_status().ok()) {
      std::fprintf(stderr, "warning: file backend unavailable (%s); using memory\n",
                   db_.backend_status().ToString().c_str());
    }
  }

  /// Preloads a generated workload family so `select`/`query`/`stats` have
  /// something real to chew on: "rollup" (day⊑month⊑year + city⊑state⊑
  /// country ontologies, roots Time/Geo, attr Value) or "paths" (a 6-hop
  /// reference chain, hierarchy roots Hop0..Hop5, tail attr Value).
  Status PreloadWorkload(const std::string& name) {
    if (name == "rollup") {
      RollupConfig cfg = RollupConfig::Quick();
      cfg.months_per_year = 2;
      cfg.days_per_month = 2;
      cfg.cities_per_state = 2;
      cfg.num_events = 800;
      cfg.num_readings = 800;
      RollupDbInfo info;
      UINDEX_RETURN_IF_ERROR(LoadRollupIntoDatabase(cfg, &db_, &info));
      std::printf("workload rollup: %zu classes, %u+%u facts, 2 U-indexes "
                  "(try: select Time* Value 0 10)\n",
                  db_.schema().class_count(), cfg.num_events,
                  cfg.num_readings);
      return Status::OK();
    }
    if (name == "paths") {
      DeepPathConfig cfg = DeepPathConfig::Quick();
      cfg.heads = 400;
      DeepPathDbInfo info;
      UINDEX_RETURN_IF_ERROR(LoadDeepPathsIntoDatabase(cfg, &db_, &info));
      std::printf("workload paths: %u hops, %zu classes, 1 U-index "
                  "(try: select Hop0* Value 0 20)\n",
                  cfg.hops, db_.schema().class_count());
      return Status::OK();
    }
    return Status::InvalidArgument("unknown workload '" + name +
                                   "' (rollup|paths)");
  }

  // Returns false once the shell should exit.
  bool HandleLine(const std::string& line) {
    std::istringstream in(line);
    std::string command;
    if (!(in >> command) || command[0] == '#') return true;  // Blank/comment.

    Status status = Status::OK();
    if (command == "quit" || command == "exit") return false;
    if (command == "help") {
      PrintHelp();
    } else if (command == "class") {
      status = HandleClass(in);
    } else if (command == "ref") {
      status = HandleRef(in);
    } else if (command == "index") {
      status = HandleIndex(in);
    } else if (command == "new") {
      status = HandleNew(in);
    } else if (command == "set") {
      status = HandleSet(in);
    } else if (command == "del") {
      status = HandleDel(in);
    } else if (command == "select") {
      status = HandleSelect(in);
    } else if (command == "query") {
      status = HandleQuery(in, line);
    } else if (command == "parallel" || command == ".parallel") {
      status = HandleParallel(in);
    } else if (command == "oql") {
      status = HandleOql(line.substr(line.find("oql") + 3));
    } else if (command == "connect") {
      status = HandleConnect(in);
    } else if (command == "disconnect") {
      status = HandleDisconnect();
    } else if (command == "ping") {
      status = remote_ ? remote_->Ping()
                       : Status::InvalidArgument("not connected");
      if (status.ok() && remote_) std::printf("pong\n");
    } else if (command == "explain") {
      status = HandleExplain(in);
    } else if (command == "save") {
      std::string path;
      if (!(in >> path)) {
        status = Status::InvalidArgument("save <path>");
      } else {
        status = db_.Save(path);
        if (status.ok()) std::printf("saved to %s\n", path.c_str());
      }
    } else if (command == "codes") {
      PrintCodes();
    } else if (command == "schema") {
      PrintSchema();
    } else if (command == "stats") {
      PrintStats();
    } else {
      status = Status::InvalidArgument("unknown command '" + command +
                                       "' (try: help)");
    }
    if (!status.ok()) {
      std::printf("error: %s\n", status.ToString().c_str());
      ++errors_;
      if (!interactive_) return false;
    }
    return true;
  }

  int errors() const { return errors_; }

 private:
  Result<ClassId> FindClass(const std::string& name) {
    return db_.schema().FindClass(name);
  }

  Status HandleClass(std::istringstream& in) {
    std::string name, under, parent;
    if (!(in >> name)) return Status::InvalidArgument("class <Name>");
    if (in >> under) {
      if (under != "under" || !(in >> parent)) {
        return Status::InvalidArgument("class <Name> [under <Parent>]");
      }
      Result<ClassId> parent_id = FindClass(parent);
      if (!parent_id.ok()) return parent_id.status();
      Result<ClassId> cls = db_.CreateSubclass(name, parent_id.value());
      if (!cls.ok()) return cls.status();
      std::printf("class %s = %s (under %s)\n", name.c_str(),
                  db_.coder().CodeOf(cls.value()).c_str(), parent.c_str());
    } else {
      Result<ClassId> cls = db_.CreateClass(name);
      if (!cls.ok()) return cls.status();
      std::printf("class %s = %s\n", name.c_str(),
                  db_.coder().CodeOf(cls.value()).c_str());
    }
    return Status::OK();
  }

  Status HandleRef(std::istringstream& in) {
    std::string source, attr, arrow, target, multi;
    if (!(in >> source >> attr >> arrow >> target) || arrow != "->") {
      return Status::InvalidArgument(
          "ref <Source> <attr> -> <Target> [multi]");
    }
    const bool multi_valued = static_cast<bool>(in >> multi) &&
                              multi == "multi";
    Result<ClassId> s = FindClass(source);
    if (!s.ok()) return s.status();
    Result<ClassId> t = FindClass(target);
    if (!t.ok()) return t.status();
    UINDEX_RETURN_IF_ERROR(
        db_.CreateReference(s.value(), t.value(), attr, multi_valued));
    std::printf("ref %s.%s -> %s%s\n", source.c_str(), attr.c_str(),
                target.c_str(), multi_valued ? " (multi)" : "");
    return Status::OK();
  }

  static Result<Value::Kind> ParseKind(const std::string& text) {
    if (text == "int") return Value::Kind::kInt;
    if (text == "str" || text == "string") return Value::Kind::kString;
    return Status::InvalidArgument("value kind must be int|str");
  }

  Status HandleIndex(std::istringstream& in) {
    std::string mode;
    if (!(in >> mode)) {
      return Status::InvalidArgument("index hierarchy|path ...");
    }
    PathSpec spec;
    if (mode == "hierarchy") {
      std::string cls_name, attr, kind;
      if (!(in >> cls_name >> attr >> kind)) {
        return Status::InvalidArgument(
            "index hierarchy <Class> <attr> int|str");
      }
      Result<ClassId> cls = FindClass(cls_name);
      if (!cls.ok()) return cls.status();
      Result<Value::Kind> k = ParseKind(kind);
      if (!k.ok()) return k.status();
      spec = PathSpec::ClassHierarchy(cls.value(), attr, k.value());
    } else if (mode == "path") {
      std::string attr, kind;
      if (!(in >> attr >> kind)) {
        return Status::InvalidArgument(
            "index path <attr> int|str <Class> (<ref> <Class>)...");
      }
      Result<Value::Kind> k = ParseKind(kind);
      if (!k.ok()) return k.status();
      spec.indexed_attr = attr;
      spec.value_kind = k.value();
      std::string cls_name;
      if (!(in >> cls_name)) {
        return Status::InvalidArgument("missing head class");
      }
      Result<ClassId> cls = FindClass(cls_name);
      if (!cls.ok()) return cls.status();
      spec.classes.push_back(cls.value());
      std::string ref;
      while (in >> ref) {
        if (!(in >> cls_name)) {
          return Status::InvalidArgument("dangling ref " + ref);
        }
        cls = FindClass(cls_name);
        if (!cls.ok()) return cls.status();
        spec.ref_attrs.push_back(ref);
        spec.classes.push_back(cls.value());
      }
    } else {
      return Status::InvalidArgument("index hierarchy|path ...");
    }
    Result<size_t> pos = db_.CreateIndex(spec);
    if (!pos.ok()) return pos.status();
    std::printf("index #%zu created (%llu entries)\n", pos.value(),
                static_cast<unsigned long long>(
                    db_.index(pos.value()).entry_count()));
    return Status::OK();
  }

  Status HandleNew(std::istringstream& in) {
    std::string cls_name;
    if (!(in >> cls_name)) return Status::InvalidArgument("new <Class>");
    Result<ClassId> cls = FindClass(cls_name);
    if (!cls.ok()) return cls.status();
    Result<Oid> oid = db_.CreateObject(cls.value());
    if (!oid.ok()) return oid.status();
    std::printf("oid %u\n", oid.value());
    return Status::OK();
  }

  static Result<Value> ParseShellValue(const std::string& text) {
    if (text.empty()) return Status::InvalidArgument("empty value");
    if (text[0] == '\'') {
      if (text.size() < 2 || text.back() != '\'') {
        return Status::InvalidArgument("unterminated string");
      }
      return Value::Str(text.substr(1, text.size() - 2));
    }
    if (text[0] == '@') {
      // @3 single ref, @3,@4 set.
      std::vector<Oid> oids;
      std::istringstream refs(text);
      std::string part;
      while (std::getline(refs, part, ',')) {
        if (part.empty() || part[0] != '@') {
          return Status::InvalidArgument("bad reference " + part);
        }
        oids.push_back(static_cast<Oid>(std::strtoul(
            part.c_str() + 1, nullptr, 10)));
      }
      if (oids.size() == 1) return Value::Ref(oids[0]);
      return Value::RefSet(std::move(oids));
    }
    char* end = nullptr;
    const long long v = std::strtoll(text.c_str(), &end, 10);
    if (end == text.c_str() || *end != '\0') {
      return Status::InvalidArgument("bad value " + text);
    }
    return Value::Int(v);
  }

  Status HandleSet(std::istringstream& in) {
    std::string oid_text, attr, eq, value_text;
    if (!(in >> oid_text >> attr >> eq) || eq != "=" ||
        !std::getline(in, value_text)) {
      return Status::InvalidArgument("set <oid> <attr> = <value>");
    }
    // Trim the value.
    size_t b = value_text.find_first_not_of(' ');
    if (b == std::string::npos) {
      return Status::InvalidArgument("missing value");
    }
    value_text = value_text.substr(b);
    Result<Value> value = ParseShellValue(value_text);
    if (!value.ok()) return value.status();
    const Oid oid =
        static_cast<Oid>(std::strtoul(oid_text.c_str(), nullptr, 10));
    return db_.SetAttr(oid, attr, std::move(value).value());
  }

  Status HandleDel(std::istringstream& in) {
    std::string oid_text;
    if (!(in >> oid_text)) return Status::InvalidArgument("del <oid>");
    return db_.DeleteObject(
        static_cast<Oid>(std::strtoul(oid_text.c_str(), nullptr, 10)));
  }

  Status HandleSelect(std::istringstream& in) {
    std::string cls_name, attr, lo_text, hi_text;
    if (!(in >> cls_name >> attr >> lo_text)) {
      return Status::InvalidArgument(
          "select <Class>[*] <attr> <lo> [<hi>]");
    }
    Database::Selection sel;
    sel.with_subclasses = !cls_name.empty() && cls_name.back() == '*';
    if (sel.with_subclasses) cls_name.pop_back();
    Result<ClassId> cls = FindClass(cls_name);
    if (!cls.ok()) return cls.status();
    sel.cls = cls.value();
    sel.attr = attr;
    Result<Value> lo = ParseShellValue(lo_text);
    if (!lo.ok()) return lo.status();
    sel.lo = lo.value();
    if (in >> hi_text) {
      Result<Value> hi = ParseShellValue(hi_text);
      if (!hi.ok()) return hi.status();
      sel.hi = std::move(hi).value();
    } else {
      sel.hi = sel.lo;
    }

    QueryCost cost(&db_.buffers());
    Result<Database::SelectResult> r = db_.Select(sel);
    if (!r.ok()) return r.status();
    std::printf("%zu oid(s) via %s, %llu pages: [", r.value().oids.size(),
                r.value().index_description.c_str(),
                static_cast<unsigned long long>(cost.PagesRead()));
    for (size_t i = 0; i < r.value().oids.size(); ++i) {
      std::printf("%s%u", i ? ", " : "", r.value().oids[i]);
    }
    std::printf("]\n");
    return Status::OK();
  }

  Status HandleQuery(std::istringstream& in, const std::string& line) {
    size_t index_pos = 0;
    if (!(in >> index_pos) || index_pos >= db_.index_count()) {
      return Status::InvalidArgument("query <index#> (<query text>)");
    }
    const size_t paren = line.find('(');
    if (paren == std::string::npos) {
      return Status::InvalidArgument("missing query text");
    }
    const UIndex& index = db_.index(index_pos);
    Result<Query> q = ParseQuery(line.substr(paren), index.spec(),
                                 db_.schema());
    if (!q.ok()) return q.status();
    QueryCost cost(&db_.buffers());
    exec::ThreadPool* pool = ctx_ ? ctx_->pool() : nullptr;
    Result<QueryResult> r = db_.ExecuteParallel(index_pos, q.value(), pool);
    if (!r.ok()) return r.status();
    std::printf("%zu row(s), %llu pages%s\n", r.value().rows.size(),
                static_cast<unsigned long long>(cost.PagesRead()),
                pool ? " (parallel)" : "");
    const size_t shown = std::min<size_t>(r.value().rows.size(), 20);
    for (size_t i = 0; i < shown; ++i) {
      std::printf("  (");
      for (size_t j = 0; j < r.value().rows[i].size(); ++j) {
        std::printf("%s%u", j ? ", " : "", r.value().rows[i][j]);
      }
      std::printf(")\n");
    }
    if (shown < r.value().rows.size()) std::printf("  ...\n");
    return Status::OK();
  }

  Status HandleParallel(std::istringstream& in) {
    size_t threads = 0;
    if (!(in >> threads)) {
      std::printf("parallel execution: %zu thread(s)\n",
                  ctx_ ? ctx_->parallelism() : 1);
      return Status::OK();
    }
    constexpr size_t kMaxThreads = 64;
    if (threads > kMaxThreads) {
      return Status::InvalidArgument("parallel <N> with N <= 64");
    }
    if (threads <= 1) {
      ctx_.reset();
      std::printf("parallel execution off (serial Parscan)\n");
    } else {
      ctx_ = std::make_unique<exec::ExecutionContext>(threads);
      std::printf("parallel execution on: %zu worker threads\n", threads);
    }
    return Status::OK();
  }

  Status HandleExplain(std::istringstream& in) {
    std::string cls_name, attr, lo_text, hi_text;
    if (!(in >> cls_name >> attr >> lo_text)) {
      return Status::InvalidArgument(
          "explain <Class>[*] <attr> <lo> [<hi>]");
    }
    Database::Selection sel;
    sel.with_subclasses = !cls_name.empty() && cls_name.back() == '*';
    if (sel.with_subclasses) cls_name.pop_back();
    Result<ClassId> cls = FindClass(cls_name);
    if (!cls.ok()) return cls.status();
    sel.cls = cls.value();
    sel.attr = attr;
    Result<Value> lo = ParseShellValue(lo_text);
    if (!lo.ok()) return lo.status();
    sel.lo = lo.value();
    sel.hi = (in >> hi_text)
                 ? std::move(ParseShellValue(hi_text)).value()
                 : sel.lo;
    Result<Database::Explanation> plan = db_.Explain(sel);
    if (!plan.ok()) return plan.status();
    for (size_t i = 0; i < plan.value().candidates.size(); ++i) {
      const auto& c = plan.value().candidates[i];
      std::printf("  %s %-44s %s", i == plan.value().chosen ? "->" : "  ",
                  c.description.c_str(), c.usable ? "" : "unusable: ");
      if (c.usable) {
        std::printf("~%.1f pages", c.estimated_pages);
      } else {
        std::printf("%s", c.reason.c_str());
      }
      std::printf("\n");
    }
    return Status::OK();
  }

  // connect <host> <port>: route subsequent `oql` (and `stats`, `ping`)
  // to a uindex_server instead of the in-process database.
  Status HandleConnect(std::istringstream& in) {
    std::string host;
    uint16_t port = 0;
    if (!(in >> host >> port)) {
      return Status::InvalidArgument("connect <host> <port>");
    }
    Result<std::unique_ptr<net::Client>> client =
        net::Client::Connect(host, port);
    if (!client.ok()) return client.status();
    remote_ = std::move(client).value();
    std::printf("connected to %s:%u (oql/stats/ping now remote)\n",
                host.c_str(), port);
    return Status::OK();
  }

  Status HandleDisconnect() {
    if (!remote_) return Status::InvalidArgument("not connected");
    remote_.reset();
    std::printf("disconnected\n");
    return Status::OK();
  }

  Status HandleRemoteOql(const std::string& text) {
    Result<net::Client::QueryResult> r = remote_->Query(text);
    if (!r.ok()) return r.status();
    std::printf("%llu oid(s) via %s, %llu pages (remote)",
                static_cast<unsigned long long>(r.value().count),
                r.value().plan.c_str(),
                static_cast<unsigned long long>(r.value().stats.pages_read));
    if (!r.value().oids.empty()) {
      std::printf(": [");
      for (size_t i = 0; i < r.value().oids.size(); ++i) {
        std::printf("%s%u", i ? ", " : "", r.value().oids[i]);
      }
      std::printf("]");
    }
    std::printf("\n");
    return Status::OK();
  }

  Status HandleOql(const std::string& text) {
    if (remote_) return HandleRemoteOql(text);
    QueryCost cost(&db_.buffers());
    Result<Database::OqlResult> r = db_.ExecuteOql(text);
    if (!r.ok()) return r.status();
    std::printf("%llu oid(s) via %s, %llu pages",
                static_cast<unsigned long long>(r.value().count),
                r.value().plan.c_str(),
                static_cast<unsigned long long>(cost.PagesRead()));
    if (!r.value().oids.empty()) {
      std::printf(": [");
      for (size_t i = 0; i < r.value().oids.size(); ++i) {
        std::printf("%s%u", i ? ", " : "", r.value().oids[i]);
      }
      std::printf("]");
    }
    std::printf("\n");
    return Status::OK();
  }

  void PrintCodes() {
    for (ClassId cls = 0; cls < db_.schema().class_count(); ++cls) {
      std::printf("  %-24s COD %s\n", db_.schema().NameOf(cls).c_str(),
                  db_.coder().CodeOf(cls).c_str());
    }
  }

  void PrintSchema() {
    PrintCodes();
    for (const RefEdge& e : db_.schema().references()) {
      std::printf("  %s.%s -> %s%s\n",
                  db_.schema().NameOf(e.source).c_str(),
                  e.attribute.c_str(),
                  db_.schema().NameOf(e.target).c_str(),
                  e.multi_valued ? " (multi)" : "");
    }
  }

  void PrintStats() {
    if (remote_) {
      Result<Session::Stats> stats = remote_->SessionStats();
      if (!stats.ok()) {
        std::printf("error: %s\n", stats.status().ToString().c_str());
        return;
      }
      std::printf("remote session: %s\n", stats.value().ToString().c_str());
      return;
    }
    std::printf("classes=%zu objects=%llu indexes=%zu pages=%llu %s\n",
                db_.schema().class_count(),
                static_cast<unsigned long long>(db_.store().size()),
                db_.index_count(),
                static_cast<unsigned long long>(db_.live_pages()),
                db_.buffers().stats().ToString().c_str());
  }

  void PrintHelp() {
    std::printf(
        "commands:\n"
        "  class <Name> [under <Parent>]\n"
        "  ref <Source> <attr> -> <Target> [multi]\n"
        "  index hierarchy <Class> <attr> int|str\n"
        "  index path <attr> int|str <Head> (<ref> <Class>)...\n"
        "  new <Class> | set <oid> <attr> = <value> | del <oid>\n"
        "      values: 42, 'text', @3 (ref), @3,@4 (ref set)\n"
        "  select <Class>[*] <attr> <lo> [<hi>]\n"
        "  query <index#> (Age=50, Employee, _, Company*, ?)\n"
        "  parallel <N>  (N>1: run 'query' on N threads; 1: serial)\n"
        "  oql SELECT v FROM Vehicle* v WHERE v.made-by.president.Age = 50\n"
        "  explain <Class>[*] <attr> <lo> [<hi>]\n"
        "  save <path>\n"
        "  connect <host> <port>   (oql/stats/ping go to a uindex_server)\n"
        "  disconnect | ping\n"
        "  codes | schema | stats | help | quit\n");
  }

  Database db_;
  std::unique_ptr<exec::ExecutionContext> ctx_;
  std::unique_ptr<net::Client> remote_;
  bool interactive_;
  int errors_ = 0;
};

}  // namespace
}  // namespace uindex

int main(int argc, char** argv) {
  uindex::DatabaseOptions options;
  std::string workload;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--workload=", 0) == 0) {
      workload = arg.substr(11);
    } else if (arg == "--backend=file") {
      options.backend = uindex::DatabaseOptions::Backend::kFile;
    } else if (arg == "--backend=memory") {
      options.backend = uindex::DatabaseOptions::Backend::kMemory;
    } else if (arg.rfind("--cache-pages=", 0) == 0) {
      options.cache_pages =
          static_cast<size_t>(std::strtoul(arg.c_str() + 14, nullptr, 10));
    } else if (arg.rfind("--data=", 0) == 0) {
      options.data_path = arg.substr(7);
    } else if (arg == "--eviction=clock") {
      options.eviction = uindex::BufferPool::Eviction::kClock;
    } else if (arg == "--eviction=lru") {
      options.eviction = uindex::BufferPool::Eviction::kLru;
    } else {
      std::fprintf(stderr,
                   "usage: uindex_shell [--backend=memory|file]"
                   " [--cache-pages=N] [--data=PATH]"
                   " [--eviction=lru|clock]"
                   " [--workload=rollup|paths]\n");
      return 2;
    }
  }
  const bool interactive = isatty(0) != 0;
  uindex::Shell shell(interactive, options);
  if (!workload.empty()) {
    const uindex::Status s = shell.PreloadWorkload(workload);
    if (!s.ok()) {
      std::fprintf(stderr, "workload: %s\n", s.ToString().c_str());
      return 2;
    }
  }
  if (interactive) {
    std::printf("uindex shell — 'help' for commands, 'quit' to exit\n");
  }
  std::string line;
  while (true) {
    if (interactive) std::printf("uindex> ");
    if (!std::getline(std::cin, line)) break;
    if (!shell.HandleLine(line)) break;
  }
  return shell.errors() == 0 ? 0 : 1;
}
