// crash_torture: exhaustive crash-fault injection for the snapshot+journal
// durability layer.
//
// The idea: run a deterministic checkpoint+append+rotate workload once on
// FaultInjectingEnv with no faults, recording (a) every env op the library
// performs (create/write/flush/sync/close/rename/truncate/remove/syncdir)
// and (b) the logical-state fingerprint after every workload step. Then
// re-run the workload once per (op index x crash outcome) — every op, not
// a sample — powering the machine off at that op, rebooting, and reopening
// with Database::OpenDurable. Recovery must
//
//   1. succeed (a crash must never leave an unopenable database), and
//   2. land exactly on the fingerprint of the last *acked* step — or, when
//      the dying op's effect did reach the media (kFull/kPartial), at most
//      the next step's fingerprint. Anything else lost an acked mutation
//      or invented one. Fingerprints include query rows, so "recovered"
//      means byte-identical answers, not just a file that parses.
//   3. stay live: one more mutation after recovery must itself survive a
//      further reopen.
//
// Writes a per-crash-point coverage summary (default
// crash_torture_coverage.txt) and exits non-zero on any failure.
//
// Usage: crash_torture [--quick] [--backend=memory|file] [--out=FILE]
//
// --backend=file runs the same proof over the disk-backed pager: the data
// file's pwrite/sync ops join the enumerated op schedule, and the buffer
// pool's write-back path is crashed at every point like any other op.

#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "db/database.h"
#include "db/journal.h"
#include "storage/env/fault_env.h"

namespace uindex {
namespace {

using Outcome = FaultInjectingEnv::CrashOutcome;

// Different directories on purpose: the snapshot's and the journal's
// parent-directory syncs are then separate ops, so forgetting either one
// is a distinct, detectable crash state.
constexpr char kSnap[] = "/snap/db.udb";
constexpr char kWal[] = "/wal/db.journal";
constexpr char kData[] = "/data/db.pages";

DatabaseOptions OptionsFor(Env* env, bool file_backend) {
  DatabaseOptions options;
  options.env = env;
  options.prefetch_threads = 0;
  if (file_backend) {
    options.backend = DatabaseOptions::Backend::kFile;
    options.data_path = kData;
    // Big enough that no frame is ever evicted mid-step: data-file
    // write-backs then happen only inside Flush (checkpoint/save), keeping
    // the op schedule short and obviously deterministic.
    options.cache_pages = 4096;
  }
  return options;
}

// Serialized objects + schema/index counts + rows and access path of a
// fixed index query. No env ops, so computing it never shifts the op
// schedule.
std::string Fingerprint(Database& db) {
  std::string fp = db.store().Serialize();
  fp += '|';
  fp += std::to_string(db.schema().class_count());
  fp += '|';
  fp += std::to_string(db.index_count());
  Result<ClassId> thing = db.schema().FindClass("Thing");
  if (thing.ok()) {
    Database::Selection sel;
    sel.cls = thing.value();
    sel.attr = "x";
    sel.lo = Value::Int(-1);
    sel.hi = Value::Int(1 << 20);
    Result<Database::SelectResult> r = db.Select(sel);
    fp += "|q:";
    if (r.ok()) {
      for (Oid oid : r.value().oids) {
        fp += std::to_string(oid);
        fp += ',';
      }
      fp += r.value().used_index ? "#index" : "#scan";
    } else {
      fp += r.status().ToString();
    }
  }
  return fp;
}

// The workload: DDL, 2n object creations/updates, a checkpoint, an update
// wave, a delete, a second checkpoint (journal rotation on a non-empty
// journal), and a post-rotation tail. Step numbering must be identical in
// the twin and every crashed run; oids are recorded as they are created.
int StepCount(int n) { return 3 * n + 7; }

Status RunStep(Database& db, std::vector<Oid>& oids, int step, int n,
               const std::string& snap) {
  if (step == 0) return db.CreateClass("Thing").status();
  if (step == 1) {
    return db
        .CreateIndex(PathSpec::ClassHierarchy(
            db.schema().FindClass("Thing").value(), "x", Value::Kind::kInt))
        .status();
  }
  if (step < 2 + 2 * n) {
    const int j = step - 2;
    if (j % 2 == 0) {
      Result<Oid> oid =
          db.CreateObject(db.schema().FindClass("Thing").value());
      if (!oid.ok()) return oid.status();
      oids.push_back(oid.value());
      return Status::OK();
    }
    return db.SetAttr(oids[j / 2], "x", Value::Int(j / 2));
  }
  if (step == 2 + 2 * n) return db.Checkpoint(snap);
  if (step < 3 + 3 * n) {
    const int i = step - (3 + 2 * n);
    return db.SetAttr(oids[i], "x", Value::Int(100 + i));
  }
  if (step == 3 + 3 * n) return db.DeleteObject(oids[1]);
  if (step == 4 + 3 * n) return db.Checkpoint(snap);
  if (step == 5 + 3 * n) return db.SetAttr(oids[2], "x", Value::Int(777));
  if (step == 6 + 3 * n) return db.SetAttr(oids[3], "x", Value::Int(888));
  return Status::InvalidArgument("no such step");
}

struct Failure {
  uint64_t op;
  Outcome outcome;
  std::string what;
};

const char* OutcomeName(Outcome outcome) {
  switch (outcome) {
    case Outcome::kNone: return "none";
    case Outcome::kPartial: return "partial";
    case Outcome::kFull: return "full";
  }
  return "?";
}

// ------------------------------------------------- group-commit batches
//
// With group commit, several sessions' records are appended (write+flush
// each) before ONE fdatasync acks them all. A power cut anywhere in that
// window must lose the whole batch or apply a *frame prefix* of it —
// never a prefix of acked sessions, because nothing in the window was
// acked yet. The main enumeration above only ever produces one-record
// batches (the single-threaded driver's sole waiter leads its own sync
// immediately), so this phase lays the multi-record batch tail out
// explicitly with a batched-sync `Journal` handle — byte-identical to
// the file a crashed leader leaves behind — and crashes at every op of
// the append..sync..close window.

constexpr int kBatchRecords = 3;

Status ApplyBatchMutation(Database& db, Oid target, int j) {
  return db.SetAttr(target, "x", Value::Int(500 + j));
}

JournalRecord BatchRecord(Oid target, int j) {
  JournalRecord r;
  r.op = JournalRecord::Op::kSetAttr;
  r.oid = target;
  r.name = "x";
  r.value = Value::Int(500 + j);
  return r;
}

// Returns the number of failures; appends per-op lines to `coverage` and
// adds its crash-run count to `*runs`.
size_t RunBatchPhase(bool file_backend, std::ofstream& coverage,
                     uint64_t* runs) {
  const int n = 2;
  const int base_steps = 2 + 2 * n;  // DDL + creates/updates; no rotate.
  size_t failures = 0;
  auto fail = [&failures](const std::string& what) {
    std::fprintf(stderr, "FAIL (batch phase): %s\n", what.c_str());
    ++failures;
  };

  // Base workload + the dying batch window, shared by the twin and every
  // crashed run. `append_through`: how many batch ops to attempt (the
  // crash cuts execution short on its own; errors past it are expected).
  Oid target = kInvalidOid;
  auto run_workload = [&](FaultInjectingEnv& env, uint64_t* window_start) {
    std::vector<Oid> oids;
    {
      Result<std::unique_ptr<Database>> opened = Database::OpenDurable(
          kSnap, kWal, OptionsFor(&env, file_backend));
      if (!opened.ok()) return;
      std::unique_ptr<Database> db = std::move(opened).value();
      for (int step = 0; step < base_steps; ++step) {
        if (!RunStep(*db, oids, step, n, kSnap).ok()) return;
      }
      target = oids[0];
    }
    if (window_start != nullptr) *window_start = env.op_count();
    JournalOptions jopts;
    jopts.sync_on_append = false;  // The group-commit journal mode.
    Result<std::unique_ptr<Journal>> journal =
        Journal::OpenForAppend(&env, kWal, /*generation=*/0, jopts);
    if (!journal.ok()) return;
    for (int j = 0; j < kBatchRecords; ++j) {
      if (!journal.value()->Append(BatchRecord(target, j)).ok()) return;
    }
    (void)journal.value()->Sync();  // The leader's one batch fdatasync.
  };

  // Twin: op trace plus the batch window's start.
  uint64_t window_start = 0;
  std::vector<FaultInjectingEnv::OpRecord> trace;
  {
    FaultInjectingEnv env;
    run_workload(env, &window_start);
    trace = env.trace();
    if (window_start == 0 || window_start >= trace.size()) {
      fail("twin produced no batch window");
      return failures;
    }
  }

  // Fingerprints of "base + first j batch frames applied", j = 0..B,
  // computed through the ordinary DML entry points — exactly how replay
  // applies journal frames.
  std::vector<std::string> fps;
  for (int j = 0; j <= kBatchRecords; ++j) {
    FaultInjectingEnv env;
    Result<std::unique_ptr<Database>> opened =
        Database::OpenDurable(kSnap, kWal, OptionsFor(&env, file_backend));
    if (!opened.ok()) {
      fail("fingerprint open failed: " + opened.status().ToString());
      return failures;
    }
    std::unique_ptr<Database> db = std::move(opened).value();
    std::vector<Oid> oids;
    for (int step = 0; step < base_steps; ++step) {
      if (Status st = RunStep(*db, oids, step, n, kSnap); !st.ok()) {
        fail("fingerprint base step failed: " + st.ToString());
        return failures;
      }
    }
    for (int k = 0; k < j; ++k) {
      if (Status st = ApplyBatchMutation(*db, oids[0], k); !st.ok()) {
        fail("fingerprint batch mutation failed: " + st.ToString());
        return failures;
      }
    }
    fps.push_back(Fingerprint(*db));
  }

  for (uint64_t op = window_start; op < trace.size(); ++op) {
    std::vector<Outcome> outcomes = {Outcome::kNone, Outcome::kFull};
    if (trace[op].kind == FaultInjectingEnv::OpKind::kWrite ||
        trace[op].kind == FaultInjectingEnv::OpKind::kWriteAt) {
      outcomes.push_back(Outcome::kPartial);
    }
    bool op_ok = true;
    for (const Outcome outcome : outcomes) {
      ++*runs;
      FaultInjectingEnv env;
      env.ScheduleCrashAtOp(op, outcome);
      run_workload(env, nullptr);
      auto fail_op = [&](const std::string& what) {
        std::fprintf(stderr, "FAIL batch op %llu (%s %s %s): %s\n",
                     static_cast<unsigned long long>(op),
                     FaultInjectingEnv::OpKindName(trace[op].kind),
                     trace[op].path.c_str(), OutcomeName(outcome),
                     what.c_str());
        ++failures;
        op_ok = false;
      };
      if (!env.powered_off()) {
        fail_op("scheduled crash never fired");
        continue;
      }
      env.Reboot();

      Result<std::unique_ptr<Database>> re = Database::OpenDurable(
          kSnap, kWal, OptionsFor(&env, file_backend));
      if (!re.ok()) {
        fail_op("recovery failed: " + re.status().ToString());
        continue;
      }
      std::unique_ptr<Database> db = std::move(re).value();
      const std::string got = Fingerprint(*db);
      int matched = -1;
      for (int j = 0; j <= kBatchRecords; ++j) {
        if (got == fps[j]) {
          matched = j;
          break;
        }
      }
      if (matched < 0) {
        // The base steps were all acked, so anything below fps[0] lost an
        // acked session; anything else invented state or tore a frame.
        fail_op("recovered state is neither the acked base nor a frame "
                "prefix of the unacked batch");
        continue;
      }
      if (!db->CreateClass("Liveness").ok()) {
        fail_op("recovered database refused a new mutation");
        continue;
      }
      db.reset();
      Result<std::unique_ptr<Database>> re2 = Database::OpenDurable(
          kSnap, kWal, OptionsFor(&env, file_backend));
      if (!re2.ok() || !re2.value()->schema().FindClass("Liveness").ok()) {
        fail_op("post-recovery mutation did not survive a reopen");
      }
    }
    coverage << "batch:" << op << ' '
             << FaultInjectingEnv::OpKindName(trace[op].kind) << ' '
             << trace[op].path << ' ' << outcomes.size() << ' '
             << (op_ok ? "pass" : "FAIL") << '\n';
  }
  return failures;
}

int Run(bool quick, bool file_backend, const std::string& out_path) {
  const int n = quick ? 4 : 10;
  const int steps = StepCount(n);

  // Fault-free twin: op trace + per-step fingerprints.
  std::vector<std::string> fps;
  std::vector<FaultInjectingEnv::OpRecord> trace;
  {
    FaultInjectingEnv env;
    Result<std::unique_ptr<Database>> opened =
        Database::OpenDurable(kSnap, kWal, OptionsFor(&env, file_backend));
    if (!opened.ok()) {
      std::fprintf(stderr, "fault-free open failed: %s\n",
                   opened.status().ToString().c_str());
      return 1;
    }
    std::unique_ptr<Database> db = std::move(opened).value();
    std::vector<Oid> oids;
    fps.push_back(Fingerprint(*db));
    for (int step = 0; step < steps; ++step) {
      const Status st = RunStep(*db, oids, step, n, kSnap);
      if (!st.ok()) {
        std::fprintf(stderr, "fault-free step %d failed: %s\n", step,
                     st.ToString().c_str());
        return 1;
      }
      fps.push_back(Fingerprint(*db));
    }
    trace = env.trace();
  }

  std::fprintf(stderr,
               "workload: %d steps, %zu env ops to crash at (%s mode, %s "
               "backend)\n",
               steps, trace.size(), quick ? "quick" : "full",
               file_backend ? "file" : "memory");

  std::vector<Failure> failures;
  std::ofstream coverage(out_path);
  coverage << "# crash_torture coverage: one line per enumerated env op\n"
           << "# op kind path outcomes verdict\n";
  uint64_t runs = 0;

  for (uint64_t op = 0; op < trace.size(); ++op) {
    std::vector<Outcome> outcomes = {Outcome::kNone, Outcome::kFull};
    if (trace[op].kind == FaultInjectingEnv::OpKind::kWrite ||
        trace[op].kind == FaultInjectingEnv::OpKind::kWriteAt) {
      outcomes.push_back(Outcome::kPartial);
    }
    bool op_ok = true;
    for (const Outcome outcome : outcomes) {
      ++runs;
      FaultInjectingEnv env;
      env.ScheduleCrashAtOp(op, outcome);

      // The dying run. Steps acked before the power cut are the contract:
      // each must be recovered; the dying step may go either way.
      size_t acked = 0;
      {
        std::unique_ptr<Database> db;
        std::vector<Oid> oids;
        Result<std::unique_ptr<Database>> opened =
            Database::OpenDurable(kSnap, kWal, OptionsFor(&env, file_backend));
        if (opened.ok()) {
          db = std::move(opened).value();
          for (int step = 0; step < steps; ++step) {
            if (!RunStep(*db, oids, step, n, kSnap).ok()) break;
            ++acked;
          }
        }
      }
      auto fail = [&](std::string what) {
        failures.push_back({op, outcome, std::move(what)});
        op_ok = false;
      };
      if (!env.powered_off()) {
        fail("scheduled crash never fired");
        continue;
      }
      env.Reboot();

      Result<std::unique_ptr<Database>> re =
          Database::OpenDurable(kSnap, kWal, OptionsFor(&env, file_backend));
      if (!re.ok()) {
        fail("recovery failed: " + re.status().ToString());
        continue;
      }
      std::unique_ptr<Database> db = std::move(re).value();
      const std::string got = Fingerprint(*db);
      const bool pre = got == fps[acked];
      const bool post = acked + 1 < fps.size() && got == fps[acked + 1];
      if (!pre && !post) {
        fail("recovered state matches neither step " +
             std::to_string(acked) + " nor step " +
             std::to_string(acked + 1) + " after " +
             std::to_string(acked) + " acked steps");
        continue;
      }

      // Liveness: the recovered database must accept and persist new work.
      if (!db->CreateClass("Liveness").ok()) {
        fail("recovered database refused a new mutation");
        continue;
      }
      db.reset();
      Result<std::unique_ptr<Database>> re2 =
          Database::OpenDurable(kSnap, kWal, OptionsFor(&env, file_backend));
      if (!re2.ok() ||
          !re2.value()->schema().FindClass("Liveness").ok()) {
        fail("post-recovery mutation did not survive a reopen");
      }
    }
    coverage << op << ' ' << FaultInjectingEnv::OpKindName(trace[op].kind)
             << ' ' << trace[op].path << ' ' << outcomes.size() << ' '
             << (op_ok ? "pass" : "FAIL") << '\n';
  }

  // Multi-record group-commit batches never arise in the single-threaded
  // loop above, so they get their own enumeration.
  const size_t batch_failures = RunBatchPhase(file_backend, coverage, &runs);

  coverage << "# " << trace.size() << " crash points, " << runs
           << " crash runs, " << failures.size() + batch_failures
           << " failures\n";
  coverage.close();

  for (const Failure& f : failures) {
    std::fprintf(stderr, "FAIL op %llu (%s %s %s): %s\n",
                 static_cast<unsigned long long>(f.op),
                 FaultInjectingEnv::OpKindName(trace[f.op].kind),
                 trace[f.op].path.c_str(), OutcomeName(f.outcome),
                 f.what.c_str());
  }
  std::fprintf(stderr, "crash_torture: %zu points, %llu runs, %zu failures\n",
               trace.size(), static_cast<unsigned long long>(runs),
               failures.size() + batch_failures);
  return (failures.empty() && batch_failures == 0) ? 0 : 1;
}

}  // namespace
}  // namespace uindex

int main(int argc, char** argv) {
  bool quick = false;
  bool file_backend = false;
  std::string out = "crash_torture_coverage.txt";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--backend=file") == 0) {
      file_backend = true;
    } else if (std::strcmp(argv[i], "--backend=memory") == 0) {
      file_backend = false;
    } else if (std::strncmp(argv[i], "--out=", 6) == 0) {
      out = argv[i] + 6;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--quick] [--backend=memory|file] [--out=FILE]\n",
                   argv[0]);
      return 2;
    }
  }
  return uindex::Run(quick, file_backend, out);
}
