// crash_torture: exhaustive crash-fault injection for the snapshot+journal
// durability layer.
//
// The idea: run a deterministic checkpoint+append+rotate workload once on
// FaultInjectingEnv with no faults, recording (a) every env op the library
// performs (create/write/flush/sync/close/rename/truncate/remove/syncdir)
// and (b) the logical-state fingerprint after every workload step. Then
// re-run the workload once per (op index x crash outcome) — every op, not
// a sample — powering the machine off at that op, rebooting, and reopening
// with Database::OpenDurable. Recovery must
//
//   1. succeed (a crash must never leave an unopenable database), and
//   2. land exactly on the fingerprint of the last *acked* step — or, when
//      the dying op's effect did reach the media (kFull/kPartial), at most
//      the next step's fingerprint. Anything else lost an acked mutation
//      or invented one. Fingerprints include query rows, so "recovered"
//      means byte-identical answers, not just a file that parses.
//   3. stay live: one more mutation after recovery must itself survive a
//      further reopen.
//
// Writes a per-crash-point coverage summary (default
// crash_torture_coverage.txt) and exits non-zero on any failure.
//
// Usage: crash_torture [--quick] [--backend=memory|file] [--out=FILE]
//
// --backend=file runs the same proof over the disk-backed pager: the data
// file's pwrite/sync ops join the enumerated op schedule, and the buffer
// pool's write-back path is crashed at every point like any other op.

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "db/database.h"
#include "storage/env/fault_env.h"

namespace uindex {
namespace {

using Outcome = FaultInjectingEnv::CrashOutcome;

// Different directories on purpose: the snapshot's and the journal's
// parent-directory syncs are then separate ops, so forgetting either one
// is a distinct, detectable crash state.
constexpr char kSnap[] = "/snap/db.udb";
constexpr char kWal[] = "/wal/db.journal";
constexpr char kData[] = "/data/db.pages";

DatabaseOptions OptionsFor(Env* env, bool file_backend) {
  DatabaseOptions options;
  options.env = env;
  options.prefetch_threads = 0;
  if (file_backend) {
    options.backend = DatabaseOptions::Backend::kFile;
    options.data_path = kData;
    // Big enough that no frame is ever evicted mid-step: data-file
    // write-backs then happen only inside Flush (checkpoint/save), keeping
    // the op schedule short and obviously deterministic.
    options.cache_pages = 4096;
  }
  return options;
}

// Serialized objects + schema/index counts + rows and access path of a
// fixed index query. No env ops, so computing it never shifts the op
// schedule.
std::string Fingerprint(Database& db) {
  std::string fp = db.store().Serialize();
  fp += '|';
  fp += std::to_string(db.schema().class_count());
  fp += '|';
  fp += std::to_string(db.index_count());
  Result<ClassId> thing = db.schema().FindClass("Thing");
  if (thing.ok()) {
    Database::Selection sel;
    sel.cls = thing.value();
    sel.attr = "x";
    sel.lo = Value::Int(-1);
    sel.hi = Value::Int(1 << 20);
    Result<Database::SelectResult> r = db.Select(sel);
    fp += "|q:";
    if (r.ok()) {
      for (Oid oid : r.value().oids) {
        fp += std::to_string(oid);
        fp += ',';
      }
      fp += r.value().used_index ? "#index" : "#scan";
    } else {
      fp += r.status().ToString();
    }
  }
  return fp;
}

// The workload: DDL, 2n object creations/updates, a checkpoint, an update
// wave, a delete, a second checkpoint (journal rotation on a non-empty
// journal), and a post-rotation tail. Step numbering must be identical in
// the twin and every crashed run; oids are recorded as they are created.
int StepCount(int n) { return 3 * n + 7; }

Status RunStep(Database& db, std::vector<Oid>& oids, int step, int n,
               const std::string& snap) {
  if (step == 0) return db.CreateClass("Thing").status();
  if (step == 1) {
    return db
        .CreateIndex(PathSpec::ClassHierarchy(
            db.schema().FindClass("Thing").value(), "x", Value::Kind::kInt))
        .status();
  }
  if (step < 2 + 2 * n) {
    const int j = step - 2;
    if (j % 2 == 0) {
      Result<Oid> oid =
          db.CreateObject(db.schema().FindClass("Thing").value());
      if (!oid.ok()) return oid.status();
      oids.push_back(oid.value());
      return Status::OK();
    }
    return db.SetAttr(oids[j / 2], "x", Value::Int(j / 2));
  }
  if (step == 2 + 2 * n) return db.Checkpoint(snap);
  if (step < 3 + 3 * n) {
    const int i = step - (3 + 2 * n);
    return db.SetAttr(oids[i], "x", Value::Int(100 + i));
  }
  if (step == 3 + 3 * n) return db.DeleteObject(oids[1]);
  if (step == 4 + 3 * n) return db.Checkpoint(snap);
  if (step == 5 + 3 * n) return db.SetAttr(oids[2], "x", Value::Int(777));
  if (step == 6 + 3 * n) return db.SetAttr(oids[3], "x", Value::Int(888));
  return Status::InvalidArgument("no such step");
}

struct Failure {
  uint64_t op;
  Outcome outcome;
  std::string what;
};

const char* OutcomeName(Outcome outcome) {
  switch (outcome) {
    case Outcome::kNone: return "none";
    case Outcome::kPartial: return "partial";
    case Outcome::kFull: return "full";
  }
  return "?";
}

int Run(bool quick, bool file_backend, const std::string& out_path) {
  const int n = quick ? 4 : 10;
  const int steps = StepCount(n);

  // Fault-free twin: op trace + per-step fingerprints.
  std::vector<std::string> fps;
  std::vector<FaultInjectingEnv::OpRecord> trace;
  {
    FaultInjectingEnv env;
    Result<std::unique_ptr<Database>> opened =
        Database::OpenDurable(kSnap, kWal, OptionsFor(&env, file_backend));
    if (!opened.ok()) {
      std::fprintf(stderr, "fault-free open failed: %s\n",
                   opened.status().ToString().c_str());
      return 1;
    }
    std::unique_ptr<Database> db = std::move(opened).value();
    std::vector<Oid> oids;
    fps.push_back(Fingerprint(*db));
    for (int step = 0; step < steps; ++step) {
      const Status st = RunStep(*db, oids, step, n, kSnap);
      if (!st.ok()) {
        std::fprintf(stderr, "fault-free step %d failed: %s\n", step,
                     st.ToString().c_str());
        return 1;
      }
      fps.push_back(Fingerprint(*db));
    }
    trace = env.trace();
  }

  std::fprintf(stderr,
               "workload: %d steps, %zu env ops to crash at (%s mode, %s "
               "backend)\n",
               steps, trace.size(), quick ? "quick" : "full",
               file_backend ? "file" : "memory");

  std::vector<Failure> failures;
  std::ofstream coverage(out_path);
  coverage << "# crash_torture coverage: one line per enumerated env op\n"
           << "# op kind path outcomes verdict\n";
  uint64_t runs = 0;

  for (uint64_t op = 0; op < trace.size(); ++op) {
    std::vector<Outcome> outcomes = {Outcome::kNone, Outcome::kFull};
    if (trace[op].kind == FaultInjectingEnv::OpKind::kWrite ||
        trace[op].kind == FaultInjectingEnv::OpKind::kWriteAt) {
      outcomes.push_back(Outcome::kPartial);
    }
    bool op_ok = true;
    for (const Outcome outcome : outcomes) {
      ++runs;
      FaultInjectingEnv env;
      env.ScheduleCrashAtOp(op, outcome);

      // The dying run. Steps acked before the power cut are the contract:
      // each must be recovered; the dying step may go either way.
      size_t acked = 0;
      {
        std::unique_ptr<Database> db;
        std::vector<Oid> oids;
        Result<std::unique_ptr<Database>> opened =
            Database::OpenDurable(kSnap, kWal, OptionsFor(&env, file_backend));
        if (opened.ok()) {
          db = std::move(opened).value();
          for (int step = 0; step < steps; ++step) {
            if (!RunStep(*db, oids, step, n, kSnap).ok()) break;
            ++acked;
          }
        }
      }
      auto fail = [&](std::string what) {
        failures.push_back({op, outcome, std::move(what)});
        op_ok = false;
      };
      if (!env.powered_off()) {
        fail("scheduled crash never fired");
        continue;
      }
      env.Reboot();

      Result<std::unique_ptr<Database>> re =
          Database::OpenDurable(kSnap, kWal, OptionsFor(&env, file_backend));
      if (!re.ok()) {
        fail("recovery failed: " + re.status().ToString());
        continue;
      }
      std::unique_ptr<Database> db = std::move(re).value();
      const std::string got = Fingerprint(*db);
      const bool pre = got == fps[acked];
      const bool post = acked + 1 < fps.size() && got == fps[acked + 1];
      if (!pre && !post) {
        fail("recovered state matches neither step " +
             std::to_string(acked) + " nor step " +
             std::to_string(acked + 1) + " after " +
             std::to_string(acked) + " acked steps");
        continue;
      }

      // Liveness: the recovered database must accept and persist new work.
      if (!db->CreateClass("Liveness").ok()) {
        fail("recovered database refused a new mutation");
        continue;
      }
      db.reset();
      Result<std::unique_ptr<Database>> re2 =
          Database::OpenDurable(kSnap, kWal, OptionsFor(&env, file_backend));
      if (!re2.ok() ||
          !re2.value()->schema().FindClass("Liveness").ok()) {
        fail("post-recovery mutation did not survive a reopen");
      }
    }
    coverage << op << ' ' << FaultInjectingEnv::OpKindName(trace[op].kind)
             << ' ' << trace[op].path << ' ' << outcomes.size() << ' '
             << (op_ok ? "pass" : "FAIL") << '\n';
  }

  coverage << "# " << trace.size() << " crash points, " << runs
           << " crash runs, " << failures.size() << " failures\n";
  coverage.close();

  for (const Failure& f : failures) {
    std::fprintf(stderr, "FAIL op %llu (%s %s %s): %s\n",
                 static_cast<unsigned long long>(f.op),
                 FaultInjectingEnv::OpKindName(trace[f.op].kind),
                 trace[f.op].path.c_str(), OutcomeName(f.outcome),
                 f.what.c_str());
  }
  std::fprintf(stderr, "crash_torture: %zu points, %llu runs, %zu failures\n",
               trace.size(), static_cast<unsigned long long>(runs),
               failures.size());
  return failures.empty() ? 0 : 1;
}

}  // namespace
}  // namespace uindex

int main(int argc, char** argv) {
  bool quick = false;
  bool file_backend = false;
  std::string out = "crash_torture_coverage.txt";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--backend=file") == 0) {
      file_backend = true;
    } else if (std::strcmp(argv[i], "--backend=memory") == 0) {
      file_backend = false;
    } else if (std::strncmp(argv[i], "--out=", 6) == 0) {
      out = argv[i] + 6;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--quick] [--backend=memory|file] [--out=FILE]\n",
                   argv[0]);
      return 2;
    }
  }
  return uindex::Run(quick, file_backend, out);
}
